"""Static analysis of filters, aggregation pipelines and update documents.

The analyzer walks a query specification *without executing it* and returns
:class:`~repro.analysis.diagnostics.Diagnostic` records for everything that
would fail — or silently misbehave — at evaluation time:

* unknown operators, stages and accumulators (with did-you-mean hints,
  Damerau-Levenshtein over the supported-operator registries);
* operands of the wrong shape (``$in`` without a list, negative ``$size``,
  ``$regex`` patterns that do not compile, ``$group`` without ``_id``);
* vacuous predicates (``$in: []``, ``$or: []``) that can only mean a
  mistake;
* condition dicts mixing ``$``-operators with plain keys;
* unknown dotted field paths, validated against a
  :class:`~repro.analysis.schemas.SchemaPaths`;
* stage-order hazards: a ``$match``/``$sort`` touching a field an earlier
  ``$project``/``$group`` dropped, or a ``$sort`` after ``$limit``.

Diagnostic codes: ``Q0xx`` for filter problems, ``P1xx`` for pipeline
problems, ``U3xx`` for update documents.  ``error`` severity means the spec
would raise or silently match nothing it should match; ``warning`` flags
legal-but-suspicious constructs.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, List, Optional

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic, errors_only
from repro.analysis.registry import (
    ACCUMULATORS,
    EXPRESSION_OPERATORS,
    FILTER_OPERATORS,
    PIPELINE_STAGES,
    TOP_LEVEL_OPERATORS,
    UPDATE_OPERATORS,
    did_you_mean,
)
from repro.analysis.schemas import SchemaPaths, normalize_path
from repro.docstore.errors import QueryError


def _covers(paths: Iterable[str], norm: str) -> bool:
    """Whether ``norm`` equals, extends or prefixes any path in ``paths``."""
    for available in paths:
        if (
            norm == available
            or norm.startswith(available + ".")
            or available.startswith(norm + ".")
        ):
            return True
    return False


class _Scope:
    """What the analyzer knows about the document shape at a pipeline point.

    Starts as the collection schema; ``$project`` / ``$group`` / ``$count``
    narrow it to an explicit field set, ``$addFields`` extends it,
    ``$replaceRoot`` may make it opaque (no checks beyond that point).
    """

    def __init__(self, schema: Optional[SchemaPaths]) -> None:
        self.schema = schema
        #: Explicit output fields of the last reshaping stage (None = the
        #: original schema still applies).
        self.allowed: Optional[set] = None
        self.added: set = set()
        self.removed: set = set()
        self.opaque = schema is None

    def check(self, path: str, location: str) -> Optional[Diagnostic]:
        """Diagnostic for a field reference, or ``None`` when it is fine."""
        if self.opaque:
            return None
        norm = normalize_path(path)
        if not norm or norm.startswith("$"):  # $$variables are not checked
            return None
        if _covers(self.added, norm):
            return None
        if _covers(self.removed, norm):
            return Diagnostic(
                "P105",
                ERROR,
                location,
                f"field {path!r} was removed by an earlier $project stage",
            )
        if self.allowed is not None:
            if _covers(self.allowed, norm):
                return None
            produced = ", ".join(sorted(self.allowed)) or "<nothing>"
            return Diagnostic(
                "P105",
                ERROR,
                location,
                f"field {path!r} is not produced by the preceding "
                f"$group/$project stage",
                hint=f"available fields: {produced}",
            )
        if self.schema is not None and not self.schema.knows(norm):
            close = self.schema.suggest_path(norm)
            return Diagnostic(
                "Q007",
                ERROR,
                location,
                f"unknown field path {path!r} "
                f"(schema {self.schema.name!r})",
                hint=f"did you mean {close!r}?" if close else None,
            )
        return None

    def element_scope(self, path: str) -> "_Scope":
        """The scope of array elements at ``path`` (for ``$elemMatch``)."""
        if (
            self.schema is not None
            and not self.opaque
            and self.allowed is None
            and not _covers(self.added, normalize_path(path))
        ):
            return _Scope(self.schema.descend(path))
        return _Scope(None)

    def reshape(self, fields: Iterable[str]) -> None:
        """The document now has exactly ``fields`` (after $project/$group)."""
        self.allowed = {normalize_path(f) for f in fields}
        self.added = set()
        self.removed = set()
        self.opaque = False

    def make_opaque(self) -> None:
        self.allowed = None
        self.added = set()
        self.removed = set()
        self.opaque = True


class _Analyzer:
    """Shared walker state: collected diagnostics plus the current scope."""

    def __init__(self, schema: Optional[SchemaPaths]) -> None:
        self.scope = _Scope(schema)
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------- reporting

    def report(
        self,
        code: str,
        severity: str,
        location: str,
        message: str,
        hint: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(Diagnostic(code, severity, location, message, hint))

    def check_field(self, path: str, location: str) -> None:
        diagnostic = self.scope.check(path, location)
        if diagnostic is not None:
            self.diagnostics.append(diagnostic)

    # --------------------------------------------------------------- filters

    def filter(self, filter_doc: Any, location: str) -> None:
        if filter_doc is None:
            return
        if not isinstance(filter_doc, dict):
            self.report(
                "Q008",
                ERROR,
                location,
                f"filter must be a dict, got {type(filter_doc).__name__}",
            )
            return
        for key, condition in filter_doc.items():
            if key in TOP_LEVEL_OPERATORS:
                self._logical(key, condition, f"{location}.{key}")
            elif isinstance(key, str) and key.startswith("$"):
                self.report(
                    "Q002",
                    ERROR,
                    f"{location}.{key}",
                    f"unknown top-level operator {key!r}",
                    hint=did_you_mean(key, TOP_LEVEL_OPERATORS | FILTER_OPERATORS),
                )
            else:
                self.check_field(str(key), f"{location}.{key}")
                self._condition(str(key), condition, f"{location}.{key}")

    def _logical(self, op: str, condition: Any, location: str) -> None:
        if not isinstance(condition, (list, tuple)):
            self.report(
                "Q003",
                ERROR,
                location,
                f"{op} requires a list of filter documents, got "
                f"{type(condition).__name__}",
            )
            return
        if not condition:
            outcome = "matches no document" if op == "$or" else "matches every document"
            self.report(
                "Q005", WARNING, location, f"vacuous {op}: [] ({outcome})"
            )
            return
        for index, sub in enumerate(condition):
            if not isinstance(sub, dict):
                self.report(
                    "Q008",
                    ERROR,
                    f"{location}[{index}]",
                    f"{op} members must be filter documents, got "
                    f"{type(sub).__name__}",
                )
            else:
                self.filter(sub, f"{location}[{index}]")

    def _condition(self, field: str, condition: Any, location: str) -> None:
        if not isinstance(condition, dict) or not condition:
            return  # literal equality — any value is fine
        dollar_keys = [
            k for k in condition if isinstance(k, str) and k.startswith("$")
        ]
        if dollar_keys and len(dollar_keys) != len(condition):
            plain = sorted(set(condition) - set(dollar_keys))
            self.report(
                "Q006",
                ERROR,
                location,
                f"condition mixes $-operators {sorted(dollar_keys)} with "
                f"plain keys {plain}; it would silently degrade to literal "
                "equality",
                hint="wrap the literal document in {'$eq': ...} or split the "
                "condition",
            )
            return
        if not dollar_keys:
            return  # literal sub-document equality
        for op, operand in condition.items():
            self._operator(field, op, operand, f"{location}.{op}")

    def _operator(self, field: str, op: str, operand: Any, location: str) -> None:
        if op not in FILTER_OPERATORS:
            self.report(
                "Q001",
                ERROR,
                location,
                f"unknown operator {op!r}",
                hint=did_you_mean(op, FILTER_OPERATORS),
            )
            return
        if op in ("$in", "$nin", "$all"):
            if not isinstance(operand, (list, tuple, set)):
                self.report(
                    "Q003",
                    ERROR,
                    location,
                    f"{op} requires a list, got {type(operand).__name__}",
                )
            elif not operand:
                outcome = {
                    "$in": "matches no document",
                    "$nin": "matches every document",
                    "$all": "matches every document",
                }[op]
                self.report(
                    "Q005", WARNING, location, f"vacuous {op}: [] ({outcome})"
                )
        elif op == "$regex":
            if not isinstance(operand, str):
                self.report(
                    "Q004",
                    ERROR,
                    location,
                    f"$regex pattern must be a string, got "
                    f"{type(operand).__name__}",
                )
            else:
                try:
                    re.compile(operand)
                except re.error as exc:
                    self.report(
                        "Q004",
                        ERROR,
                        location,
                        f"invalid $regex pattern {operand!r}: {exc}",
                    )
        elif op == "$size":
            if isinstance(operand, bool) or not isinstance(operand, int):
                self.report(
                    "Q003",
                    ERROR,
                    location,
                    f"$size requires an integer, got {type(operand).__name__}",
                )
            elif operand < 0:
                self.report(
                    "Q003", ERROR, location, f"$size may not be negative, got {operand}"
                )
        elif op == "$elemMatch":
            if not isinstance(operand, dict):
                self.report(
                    "Q003",
                    ERROR,
                    location,
                    f"$elemMatch requires a filter document, got "
                    f"{type(operand).__name__}",
                )
            else:
                inner = _Analyzer(None)
                inner.scope = self.scope.element_scope(field)
                inner.filter(operand, location)
                self.diagnostics.extend(inner.diagnostics)
        elif op == "$not":
            self._condition(field, operand, location)

    # ------------------------------------------------------------- pipelines

    def pipeline(self, pipeline: Any) -> None:
        if not isinstance(pipeline, (list, tuple)):
            self.report(
                "P102",
                ERROR,
                "pipeline",
                f"pipeline must be a list of stages, got "
                f"{type(pipeline).__name__}",
            )
            return
        limit_seen = False
        for index, stage in enumerate(pipeline):
            location = f"stage[{index}]"
            if not isinstance(stage, dict) or len(stage) != 1:
                self.report(
                    "P102",
                    ERROR,
                    location,
                    f"each pipeline stage must be a single-key dict, got "
                    f"{stage!r}",
                )
                continue
            (name, spec), = stage.items()
            location = f"{location}.{name}"
            if name not in PIPELINE_STAGES:
                self.report(
                    "P101",
                    ERROR,
                    location,
                    f"unknown pipeline stage {name!r}",
                    hint=did_you_mean(name, PIPELINE_STAGES),
                )
                continue
            if name == "$sort" and limit_seen:
                self.report(
                    "P106",
                    WARNING,
                    location,
                    "$sort after $limit sorts only the truncated stream; "
                    "move the $sort before the $limit to sort the full input",
                )
            if name == "$limit":
                limit_seen = True
            self._stage(name, spec, location)

    def _stage(self, name: str, spec: Any, location: str) -> None:
        if name == "$match":
            self.filter(spec, location)
        elif name in ("$addFields", "$set"):
            if not isinstance(spec, dict) or not spec:
                self.report(
                    "P102",
                    ERROR,
                    location,
                    f"{name} requires a non-empty dict of field: expression",
                )
                return
            for field, expression in spec.items():
                self.expression(expression, f"{location}.{field}")
            self.scope.added.update(normalize_path(f) for f in spec)
        elif name == "$project":
            self._stage_project(spec, location)
        elif name == "$group":
            self._stage_group(spec, location)
        elif name == "$unwind":
            self._stage_unwind(spec, location)
        elif name == "$sort":
            self._stage_sort(spec, location)
        elif name in ("$skip", "$limit"):
            if isinstance(spec, bool) or not isinstance(spec, int):
                self.report(
                    "P102",
                    ERROR,
                    location,
                    f"{name} requires an integer, got {type(spec).__name__}",
                )
            elif spec < 0:
                self.report(
                    "P102", ERROR, location, f"{name} may not be negative, got {spec}"
                )
        elif name == "$count":
            if not isinstance(spec, str) or not spec:
                self.report(
                    "P102",
                    ERROR,
                    location,
                    f"$count requires a non-empty output field name, got "
                    f"{spec!r}",
                )
                return
            self.scope.reshape({spec})
        elif name == "$replaceRoot":
            self._stage_replace_root(spec, location)
        elif name == "$sortByCount":
            self.expression(spec, location)
            self.scope.reshape({"_id", "count"})

    def _stage_project(self, spec: Any, location: str) -> None:
        if not isinstance(spec, dict) or not spec:
            self.report(
                "P102", ERROR, location, "$project requires a non-empty dict"
            )
            return
        include_mode = any(
            rule in (1, True) or isinstance(rule, (str, dict))
            for field, rule in spec.items()
            if field != "_id"
        )
        for field, rule in spec.items():
            field_location = f"{location}.{field}"
            if rule in (0, False, 1, True):
                if field != "_id":
                    self.check_field(field, field_location)
            else:
                self.expression(rule, field_location)
        if include_mode:
            produced = {
                field
                for field, rule in spec.items()
                if field != "_id" and rule not in (0, False)
            }
            if spec.get("_id", 1) not in (0, False):
                produced.add("_id")
            self.scope.reshape(produced)
        else:
            self.scope.removed.update(
                normalize_path(field)
                for field, rule in spec.items()
                if rule in (0, False)
            )

    def _stage_group(self, spec: Any, location: str) -> None:
        if not isinstance(spec, dict):
            self.report(
                "P102",
                ERROR,
                location,
                f"$group requires a dict, got {type(spec).__name__}",
            )
            return
        if "_id" not in spec:
            self.report(
                "P102",
                ERROR,
                location,
                "$group requires an _id expression (use None for a single "
                "group over all documents)",
            )
        else:
            self.expression(spec["_id"], f"{location}._id")
        for field, accumulator in spec.items():
            if field == "_id":
                continue
            field_location = f"{location}.{field}"
            if not isinstance(accumulator, dict) or len(accumulator) != 1:
                self.report(
                    "P102",
                    ERROR,
                    field_location,
                    f"accumulator for {field!r} must be a single-op dict "
                    "like {'$sum': expr}",
                )
                continue
            (op, expression), = accumulator.items()
            if op not in ACCUMULATORS:
                self.report(
                    "P104",
                    ERROR,
                    f"{field_location}.{op}",
                    f"unknown accumulator {op!r}",
                    hint=did_you_mean(op, ACCUMULATORS),
                )
                continue
            self.expression(expression, f"{field_location}.{op}")
        fields = {f for f in spec if f != "_id"}
        fields.add("_id")
        self.scope.reshape(fields)

    def _stage_unwind(self, spec: Any, location: str) -> None:
        if isinstance(spec, dict):
            path = spec.get("path")
        else:
            path = spec
        if not isinstance(path, str) or not path.startswith("$"):
            self.report(
                "P102",
                ERROR,
                location,
                f"$unwind path must be a string starting with '$', got "
                f"{path!r}",
            )
            return
        self.check_field(path[1:], location)

    def _stage_sort(self, spec: Any, location: str) -> None:
        if not isinstance(spec, dict) or not spec:
            self.report(
                "P102",
                ERROR,
                location,
                "$sort requires a non-empty dict of field: direction",
            )
            return
        for field, direction in spec.items():
            field_location = f"{location}.{field}"
            if direction not in (1, -1) or isinstance(direction, bool):
                self.report(
                    "P102",
                    ERROR,
                    field_location,
                    f"sort direction must be 1 or -1, got {direction!r}",
                )
            self.check_field(field, field_location)

    def _stage_replace_root(self, spec: Any, location: str) -> None:
        if not isinstance(spec, dict) or "newRoot" not in spec:
            self.report(
                "P102",
                ERROR,
                location,
                "$replaceRoot requires {'newRoot': <expression>}",
            )
            return
        new_root = spec["newRoot"]
        self.expression(new_root, f"{location}.newRoot")
        if (
            isinstance(new_root, str)
            and new_root.startswith("$")
            and not new_root.startswith("$$")
            and self.scope.schema is not None
            and self.scope.allowed is None
            and not self.scope.opaque
        ):
            self.scope.schema = self.scope.schema.descend(new_root[1:])
            self.scope.added = set()
            self.scope.removed = set()
        else:
            self.scope.make_opaque()

    # ----------------------------------------------------------- expressions

    def expression(self, expression: Any, location: str) -> None:
        if isinstance(expression, str) and expression.startswith("$"):
            if not expression.startswith("$$"):
                self.check_field(expression[1:], location)
            return
        if isinstance(expression, dict):
            if len(expression) == 1:
                (op, operand), = expression.items()
                if isinstance(op, str) and op.startswith("$"):
                    self._expression_operator(op, operand, f"{location}.{op}")
                    return
            for key, value in expression.items():
                self.expression(value, f"{location}.{key}")
            return
        if isinstance(expression, (list, tuple)):
            for index, item in enumerate(expression):
                self.expression(item, f"{location}[{index}]")

    def _expression_operator(self, op: str, operand: Any, location: str) -> None:
        if op not in EXPRESSION_OPERATORS:
            self.report(
                "P103",
                ERROR,
                location,
                f"unknown expression operator {op!r}",
                hint=did_you_mean(op, EXPRESSION_OPERATORS),
            )
            return
        if op == "$literal":
            return
        if op in ("$subtract", "$divide", "$ifNull"):
            if not isinstance(operand, (list, tuple)) or len(operand) != 2:
                self.report(
                    "Q003",
                    ERROR,
                    location,
                    f"{op} requires a list of exactly 2 operands",
                )
                return
            self.expression(list(operand), location)
            return
        if op == "$cond":
            if isinstance(operand, dict):
                missing = {"if", "then", "else"} - set(operand)
                if missing:
                    self.report(
                        "Q003",
                        ERROR,
                        location,
                        f"$cond dict form is missing keys: {sorted(missing)}",
                    )
                    return
                for key in ("if", "then", "else"):
                    self.expression(operand[key], f"{location}.{key}")
                return
            if not isinstance(operand, (list, tuple)) or len(operand) != 3:
                self.report(
                    "Q003",
                    ERROR,
                    location,
                    "$cond requires [if, then, else] or "
                    "{'if': .., 'then': .., 'else': ..}",
                )
                return
            self.expression(list(operand), location)
            return
        if op in ("$add", "$multiply", "$concat", "$min", "$max", "$avg"):
            if not isinstance(operand, (list, tuple)):
                self.report(
                    "Q003",
                    ERROR,
                    location,
                    f"{op} requires a list of operands, got "
                    f"{type(operand).__name__}",
                )
                return
            self.expression(list(operand), location)
            return
        # $size takes a single expression operand.
        self.expression(operand, location)

    # --------------------------------------------------------------- updates

    def update(self, update: Any, location: str = "update") -> None:
        if not isinstance(update, dict) or not update:
            self.report(
                "U302",
                ERROR,
                location,
                "updates must be a non-empty dict of $-operators",
            )
            return
        for op, spec in update.items():
            op_location = f"{location}.{op}"
            if op not in UPDATE_OPERATORS:
                self.report(
                    "U301",
                    ERROR,
                    op_location,
                    f"unknown update operator {op!r}",
                    hint=did_you_mean(op, UPDATE_OPERATORS),
                )
                continue
            if not isinstance(spec, dict) or not spec:
                self.report(
                    "U302",
                    ERROR,
                    op_location,
                    f"{op} requires a non-empty dict of path: value",
                )
                continue
            for path in spec:
                self.check_field(str(path), f"{op_location}.{path}")


def analyze_filter(
    filter_doc: Any, schema: Optional[SchemaPaths] = None
) -> List[Diagnostic]:
    """Statically analyze a filter document; returns diagnostics in order."""
    analyzer = _Analyzer(schema)
    analyzer.filter(filter_doc, "$")
    return analyzer.diagnostics


def analyze_pipeline(
    pipeline: Any, schema: Optional[SchemaPaths] = None
) -> List[Diagnostic]:
    """Statically analyze an aggregation pipeline; returns diagnostics."""
    analyzer = _Analyzer(schema)
    analyzer.pipeline(pipeline)
    return analyzer.diagnostics


def analyze_update(
    update: Any, schema: Optional[SchemaPaths] = None
) -> List[Diagnostic]:
    """Statically analyze an update document; returns diagnostics."""
    analyzer = _Analyzer(schema)
    analyzer.update(update)
    return analyzer.diagnostics


def require_clean(
    diagnostics: List[Diagnostic], what: str = "specification"
) -> None:
    """Raise :class:`QueryError` when ``diagnostics`` contains errors."""
    errors = errors_only(diagnostics)
    if errors:
        rendered = "\n".join(f"  {d.render()}" for d in errors)
        raise QueryError(
            f"static analysis rejected the {what} "
            f"({len(errors)} error{'s' if len(errors) != 1 else ''}):\n"
            f"{rendered}"
        )
