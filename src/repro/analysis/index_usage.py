"""Index-usage hints: query shapes that can never use an existing index.

:func:`analyze_index_usage` inspects the *shape* of a filter / sort spec /
aggregation pipeline against a collection's index specs (as returned by
``Collection.index_specs()``) and emits ``I4xx`` warnings — never errors,
the query still runs — whenever an index that exists can never serve it:

* ``I401`` — a range operator on a path that only has a hash index;
* ``I402`` — a condition on an indexed path built entirely from operators
  no index kind can serve (``$ne``, ``$regex``, ``$exists``, …);
* ``I403`` — ``$or`` / ``$nor`` over indexed paths (only top-level
  conditions and ``$and`` branches are planned through indexes);
* ``I404`` — a sort that cannot stream in index order (multi-field, or a
  single field with only a hash index);
* ``I405`` — a pipeline ``$match`` over indexed paths positioned after a
  non-pushdown stage, so it can never reach the planner;
* ``I407`` — on a sharded collection, a query that scatters to every shard
  even though it *mentions* a shard-key equality — either buried under
  ``$or`` / ``$nor`` (only top-level and ``$and`` conjuncts route) or with
  a non-string operand (only string shard-key values hash to a shard).

``Collection.explain()`` surfaces these hints alongside the chosen plan;
the analyzer is also importable on its own for tooling (and through
``ncvoter-testdata check``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import WARNING, Diagnostic
from repro.analysis.registry import PUSHDOWN_STAGES
from repro.docstore.matching import _is_operator_doc

_EQ_OPS = frozenset({"$eq", "$in"})
_RANGE_OPS = frozenset({"$gt", "$gte", "$lt", "$lte"})
_LOGICAL = ("$and", "$or", "$nor")


def analyze_index_usage(
    filter_doc: Optional[dict] = None,
    *,
    sort: Optional[Any] = None,
    pipeline: Optional[Sequence[dict]] = None,
    indexes: Iterable[dict] = (),
    shard_key: Optional[str] = None,
    shards: int = 1,
) -> List[Diagnostic]:
    """Warnings for query/pipeline shapes that cannot use existing indexes.

    ``indexes`` is an iterable of ``{"path": ..., "kind": ...}`` specs.  A
    collection without indexes yields no index hints — there is nothing to
    miss.  Pass the collection's ``shard_key``/``shards`` to additionally
    get I407 scatter hints for sharded collections (these do not require
    any index: routing is a property of the partition layout).
    """
    kinds = _index_kinds(indexes)
    diagnostics: List[Diagnostic] = []
    if shard_key and shards > 1:
        routed_filter = filter_doc
        if routed_filter is None and pipeline:
            head = pipeline[0] if pipeline else None
            if isinstance(head, dict) and list(head) == ["$match"]:
                routed_filter = head["$match"]
        if isinstance(routed_filter, dict) and routed_filter:
            _shard_hints(routed_filter, shard_key, shards, diagnostics)
    if not kinds:
        return diagnostics
    if filter_doc:
        _filter_hints(filter_doc, kinds, "$", diagnostics)
    if sort:
        _sort_hints(sort, kinds, "sort", diagnostics)
    if pipeline:
        _pipeline_hints(pipeline, kinds, diagnostics)
    return diagnostics


def _index_kinds(indexes: Iterable[dict]) -> Dict[str, Set[str]]:
    kinds: Dict[str, Set[str]] = {}
    for spec in indexes or ():
        if isinstance(spec, dict) and "path" in spec and "kind" in spec:
            kinds.setdefault(str(spec["path"]), set()).add(str(spec["kind"]))
    return kinds


def _filter_hints(
    filter_doc: Any,
    kinds: Dict[str, Set[str]],
    where: str,
    out: List[Diagnostic],
) -> None:
    if not isinstance(filter_doc, dict):
        return
    for key, condition in filter_doc.items():
        if key == "$and" and isinstance(condition, list):
            for position, branch in enumerate(condition):
                _filter_hints(branch, kinds, f"{where}.$and[{position}]", out)
        elif key in ("$or", "$nor") and isinstance(condition, list):
            indexed = sorted(
                path
                for branch in condition
                for path in _referenced_paths(branch)
                if path in kinds
            )
            if indexed:
                out.append(
                    Diagnostic(
                        "I403",
                        WARNING,
                        f"{where}.{key}",
                        f"{key} disables index access for indexed "
                        f"path(s) {', '.join(repr(p) for p in indexed)}",
                        hint="only top-level conditions and $and branches "
                        "are planned through indexes",
                    )
                )
        elif not key.startswith("$"):
            _field_hints(key, condition, kinds, where, out)


def _field_hints(
    path: str,
    condition: Any,
    kinds: Dict[str, Set[str]],
    where: str,
    out: List[Diagnostic],
) -> None:
    index_kinds = kinds.get(path)
    if not index_kinds:
        return
    if not _is_operator_doc(condition):
        return  # plain equality: any index kind serves it
    ops = list(condition)
    servable = any(
        op in _EQ_OPS or (op in _RANGE_OPS and "sorted" in index_kinds)
        for op in ops
    )
    if servable:
        return
    ranges = [op for op in ops if op in _RANGE_OPS]
    if ranges:
        out.append(
            Diagnostic(
                "I401",
                WARNING,
                f"{where}.{path}",
                f"range operator(s) {', '.join(ranges)} cannot use the "
                f"hash index on {path!r}",
                hint=f"create a sorted index on {path!r} to serve range conditions",
            )
        )
        return
    out.append(
        Diagnostic(
            "I402",
            WARNING,
            f"{where}.{path}",
            f"operator(s) {', '.join(ops)} cannot be served by any index "
            f"on {path!r}; the condition runs as a residual predicate over "
            "a full scan",
            hint="restate the condition with $eq / $in / range operators "
            "if possible",
        )
    )


def _sort_hints(
    sort_spec: Any,
    kinds: Dict[str, Set[str]],
    where: str,
    out: List[Diagnostic],
) -> None:
    fields = _sort_fields(sort_spec)
    if not fields:
        return
    if len(fields) == 1:
        field = fields[0]
        field_kinds = kinds.get(field)
        if field_kinds and "sorted" not in field_kinds:
            out.append(
                Diagnostic(
                    "I404",
                    WARNING,
                    f"{where}.{field}",
                    f"sort on {field!r} cannot stream from the hash index; "
                    "documents are sorted in memory",
                    hint=f"create a sorted index on {field!r} to enable "
                    "index-ordered reads",
                )
            )
        return
    indexed = [field for field in fields if "sorted" in kinds.get(field, set())]
    if indexed:
        out.append(
            Diagnostic(
                "I404",
                WARNING,
                where,
                "multi-field sort cannot stream in index order even though "
                f"{', '.join(repr(f) for f in indexed)} "
                "has a sorted index; documents are sorted in memory",
                hint="only single-field sorts can use a sorted index",
            )
        )


def _pipeline_hints(
    pipeline: Sequence[dict],
    kinds: Dict[str, Set[str]],
    out: List[Diagnostic],
) -> None:
    blocked_by: Optional[str] = None
    for position, stage in enumerate(pipeline):
        if not isinstance(stage, dict) or len(stage) != 1:
            return  # malformed; the pipeline analyzer reports it
        name, spec = next(iter(stage.items()))
        where = f"stage[{position}].{name}"
        if blocked_by is None:
            if name not in PUSHDOWN_STAGES:
                blocked_by = name
                continue
            if name == "$match":
                _filter_hints(spec, kinds, where, out)
            elif name == "$sort":
                _sort_hints(spec, kinds, where, out)
            continue
        if name == "$match":
            indexed = sorted(
                path for path in _referenced_paths(spec) if path in kinds
            )
            if indexed:
                out.append(
                    Diagnostic(
                        "I405",
                        WARNING,
                        where,
                        f"$match over indexed path(s) "
                        f"{', '.join(repr(p) for p in indexed)} runs after "
                        f"{blocked_by} and cannot be pushed down to indexes",
                        hint=f"move the $match before {blocked_by} if it "
                        "does not depend on computed fields",
                    )
                )


def _shard_hints(
    filter_doc: dict,
    shard_key: str,
    shards: int,
    out: List[Diagnostic],
) -> None:
    """I407: the query scatters although it mentions a shard-key equality."""
    from repro.docstore.planner import route_shards

    if route_shards(shard_key, shards, filter_doc) is not None:
        return  # single-shard (or provably empty) routing — nothing to flag
    mismatched, buried = _shard_key_equalities(filter_doc, shard_key)
    for where, operand in mismatched:
        out.append(
            Diagnostic(
                "I407",
                WARNING,
                where,
                f"equality on shard key {shard_key!r} has a non-string "
                f"operand ({type(operand).__name__}); only string values "
                f"route, so the query scatters to all {shards} shards",
                hint=f"store and query {shard_key!r} as a string to enable "
                "single-shard routing",
            )
        )
    for where in buried:
        out.append(
            Diagnostic(
                "I407",
                WARNING,
                where,
                f"equality on shard key {shard_key!r} is buried under a "
                f"disjunction; only top-level and $and conjuncts route, so "
                f"the query scatters to all {shards} shards",
                hint=f"lift the {shard_key!r} condition out of the "
                "disjunction (to the top level or an $and branch) to "
                "enable single-shard routing",
            )
        )


def _shard_key_equalities(
    filter_doc: Any, shard_key: str, where: str = "$", in_disjunction: bool = False
) -> Tuple[List[Tuple[str, Any]], List[str]]:
    """Shard-key equalities that cannot route: (type mismatches, buried).

    ``mismatched`` lists conjunct-position equalities whose operand is not
    a string (or an ``$in`` with a non-string element); ``buried`` lists
    the locations of shard-key equalities only reachable through ``$or`` /
    ``$nor`` branches.
    """
    mismatched: List[Tuple[str, Any]] = []
    buried: List[str] = []
    if not isinstance(filter_doc, dict):
        return mismatched, buried
    for key, condition in filter_doc.items():
        if key == "$and" and isinstance(condition, list):
            for position, branch in enumerate(condition):
                sub_mismatched, sub_buried = _shard_key_equalities(
                    branch, shard_key, f"{where}.$and[{position}]", in_disjunction
                )
                mismatched.extend(sub_mismatched)
                buried.extend(sub_buried)
        elif key in ("$or", "$nor") and isinstance(condition, list):
            for position, branch in enumerate(condition):
                sub_mismatched, sub_buried = _shard_key_equalities(
                    branch, shard_key, f"{where}.{key}[{position}]", True
                )
                # Inside a disjunction the burial is the problem; operand
                # types are secondary, so everything reports as buried.
                buried.extend(location for location, _ in sub_mismatched)
                buried.extend(sub_buried)
        elif key == shard_key:
            operands: List[Any] = []
            if _is_operator_doc(condition):
                for op, operand in condition.items():
                    if op == "$eq":
                        operands.append(operand)
                    elif op == "$in" and isinstance(operand, (list, tuple)):
                        operands.extend(operand)
            else:
                operands.append(condition)
            if not operands:
                continue
            if in_disjunction:
                buried.append(f"{where}.{key}")
            else:
                bad = [value for value in operands if not isinstance(value, str)]
                if bad:
                    mismatched.append((f"{where}.{key}", bad[0]))
    return mismatched, buried


def _referenced_paths(filter_doc: Any) -> Set[str]:
    """Field paths a filter document mentions, at any logical depth."""
    paths: Set[str] = set()
    if not isinstance(filter_doc, dict):
        return paths
    for key, value in filter_doc.items():
        if key in _LOGICAL and isinstance(value, list):
            for branch in value:
                paths |= _referenced_paths(branch)
        elif not key.startswith("$"):
            paths.add(key)
    return paths


def _sort_fields(sort_spec: Any) -> List[str]:
    """Sort field names from a find-style list or a ``$sort`` dict."""
    if isinstance(sort_spec, dict):
        if sort_spec and all(isinstance(key, str) for key in sort_spec):
            return list(sort_spec)
        return []
    if isinstance(sort_spec, (list, tuple)):
        fields = []
        for item in sort_spec:
            if (
                isinstance(item, (list, tuple))
                and len(item) == 2
                and isinstance(item[0], str)
            ):
                fields.append(item[0])
            else:
                return []
        return fields
    return []
