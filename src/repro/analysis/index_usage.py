"""Index-usage hints: query shapes that can never use an existing index.

:func:`analyze_index_usage` inspects the *shape* of a filter / sort spec /
aggregation pipeline against a collection's index specs (as returned by
``Collection.index_specs()``) and emits ``I4xx`` warnings — never errors,
the query still runs — whenever an index that exists can never serve it:

* ``I401`` — a range operator on a path that only has a hash index;
* ``I402`` — a condition on an indexed path built entirely from operators
  no index kind can serve (``$ne``, ``$regex``, ``$exists``, …);
* ``I403`` — ``$or`` / ``$nor`` over indexed paths (only top-level
  conditions and ``$and`` branches are planned through indexes);
* ``I404`` — a sort that cannot stream in index order (multi-field, or a
  single field with only a hash index);
* ``I405`` — a pipeline ``$match`` over indexed paths positioned after a
  non-pushdown stage, so it can never reach the planner.

``Collection.explain()`` surfaces these hints alongside the chosen plan;
the analyzer is also importable on its own for tooling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.diagnostics import WARNING, Diagnostic
from repro.analysis.registry import PUSHDOWN_STAGES
from repro.docstore.matching import _is_operator_doc

_EQ_OPS = frozenset({"$eq", "$in"})
_RANGE_OPS = frozenset({"$gt", "$gte", "$lt", "$lte"})
_LOGICAL = ("$and", "$or", "$nor")


def analyze_index_usage(
    filter_doc: Optional[dict] = None,
    *,
    sort: Optional[Any] = None,
    pipeline: Optional[Sequence[dict]] = None,
    indexes: Iterable[dict] = (),
) -> List[Diagnostic]:
    """Warnings for query/pipeline shapes that cannot use existing indexes.

    ``indexes`` is an iterable of ``{"path": ..., "kind": ...}`` specs.  A
    collection without indexes yields no hints — there is nothing to miss.
    """
    kinds = _index_kinds(indexes)
    diagnostics: List[Diagnostic] = []
    if not kinds:
        return diagnostics
    if filter_doc:
        _filter_hints(filter_doc, kinds, "$", diagnostics)
    if sort:
        _sort_hints(sort, kinds, "sort", diagnostics)
    if pipeline:
        _pipeline_hints(pipeline, kinds, diagnostics)
    return diagnostics


def _index_kinds(indexes: Iterable[dict]) -> Dict[str, Set[str]]:
    kinds: Dict[str, Set[str]] = {}
    for spec in indexes or ():
        if isinstance(spec, dict) and "path" in spec and "kind" in spec:
            kinds.setdefault(str(spec["path"]), set()).add(str(spec["kind"]))
    return kinds


def _filter_hints(
    filter_doc: Any,
    kinds: Dict[str, Set[str]],
    where: str,
    out: List[Diagnostic],
) -> None:
    if not isinstance(filter_doc, dict):
        return
    for key, condition in filter_doc.items():
        if key == "$and" and isinstance(condition, list):
            for position, branch in enumerate(condition):
                _filter_hints(branch, kinds, f"{where}.$and[{position}]", out)
        elif key in ("$or", "$nor") and isinstance(condition, list):
            indexed = sorted(
                path
                for branch in condition
                for path in _referenced_paths(branch)
                if path in kinds
            )
            if indexed:
                out.append(
                    Diagnostic(
                        "I403",
                        WARNING,
                        f"{where}.{key}",
                        f"{key} disables index access for indexed "
                        f"path(s) {', '.join(repr(p) for p in indexed)}",
                        hint="only top-level conditions and $and branches "
                        "are planned through indexes",
                    )
                )
        elif not key.startswith("$"):
            _field_hints(key, condition, kinds, where, out)


def _field_hints(
    path: str,
    condition: Any,
    kinds: Dict[str, Set[str]],
    where: str,
    out: List[Diagnostic],
) -> None:
    index_kinds = kinds.get(path)
    if not index_kinds:
        return
    if not _is_operator_doc(condition):
        return  # plain equality: any index kind serves it
    ops = list(condition)
    servable = any(
        op in _EQ_OPS or (op in _RANGE_OPS and "sorted" in index_kinds)
        for op in ops
    )
    if servable:
        return
    ranges = [op for op in ops if op in _RANGE_OPS]
    if ranges:
        out.append(
            Diagnostic(
                "I401",
                WARNING,
                f"{where}.{path}",
                f"range operator(s) {', '.join(ranges)} cannot use the "
                f"hash index on {path!r}",
                hint=f"create a sorted index on {path!r} to serve range conditions",
            )
        )
        return
    out.append(
        Diagnostic(
            "I402",
            WARNING,
            f"{where}.{path}",
            f"operator(s) {', '.join(ops)} cannot be served by any index "
            f"on {path!r}; the condition runs as a residual predicate over "
            "a full scan",
            hint="restate the condition with $eq / $in / range operators "
            "if possible",
        )
    )


def _sort_hints(
    sort_spec: Any,
    kinds: Dict[str, Set[str]],
    where: str,
    out: List[Diagnostic],
) -> None:
    fields = _sort_fields(sort_spec)
    if not fields:
        return
    if len(fields) == 1:
        field = fields[0]
        field_kinds = kinds.get(field)
        if field_kinds and "sorted" not in field_kinds:
            out.append(
                Diagnostic(
                    "I404",
                    WARNING,
                    f"{where}.{field}",
                    f"sort on {field!r} cannot stream from the hash index; "
                    "documents are sorted in memory",
                    hint=f"create a sorted index on {field!r} to enable "
                    "index-ordered reads",
                )
            )
        return
    indexed = [field for field in fields if "sorted" in kinds.get(field, set())]
    if indexed:
        out.append(
            Diagnostic(
                "I404",
                WARNING,
                where,
                "multi-field sort cannot stream in index order even though "
                f"{', '.join(repr(f) for f in indexed)} "
                "has a sorted index; documents are sorted in memory",
                hint="only single-field sorts can use a sorted index",
            )
        )


def _pipeline_hints(
    pipeline: Sequence[dict],
    kinds: Dict[str, Set[str]],
    out: List[Diagnostic],
) -> None:
    blocked_by: Optional[str] = None
    for position, stage in enumerate(pipeline):
        if not isinstance(stage, dict) or len(stage) != 1:
            return  # malformed; the pipeline analyzer reports it
        name, spec = next(iter(stage.items()))
        where = f"stage[{position}].{name}"
        if blocked_by is None:
            if name not in PUSHDOWN_STAGES:
                blocked_by = name
                continue
            if name == "$match":
                _filter_hints(spec, kinds, where, out)
            elif name == "$sort":
                _sort_hints(spec, kinds, where, out)
            continue
        if name == "$match":
            indexed = sorted(
                path for path in _referenced_paths(spec) if path in kinds
            )
            if indexed:
                out.append(
                    Diagnostic(
                        "I405",
                        WARNING,
                        where,
                        f"$match over indexed path(s) "
                        f"{', '.join(repr(p) for p in indexed)} runs after "
                        f"{blocked_by} and cannot be pushed down to indexes",
                        hint=f"move the $match before {blocked_by} if it "
                        "does not depend on computed fields",
                    )
                )


def _referenced_paths(filter_doc: Any) -> Set[str]:
    """Field paths a filter document mentions, at any logical depth."""
    paths: Set[str] = set()
    if not isinstance(filter_doc, dict):
        return paths
    for key, value in filter_doc.items():
        if key in _LOGICAL and isinstance(value, list):
            for branch in value:
                paths |= _referenced_paths(branch)
        elif not key.startswith("$"):
            paths.add(key)
    return paths


def _sort_fields(sort_spec: Any) -> List[str]:
    """Sort field names from a find-style list or a ``$sort`` dict."""
    if isinstance(sort_spec, dict):
        if sort_spec and all(isinstance(key, str) for key in sort_spec):
            return list(sort_spec)
        return []
    if isinstance(sort_spec, (list, tuple)):
        fields = []
        for item in sort_spec:
            if (
                isinstance(item, (list, tuple))
                and len(item) == 2
                and isinstance(item[0], str)
            ):
                fields.append(item[0])
            else:
                return []
        return fields
    return []
