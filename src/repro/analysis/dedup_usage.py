"""Dedup-pipeline usage hints: naive detection code that will not scale.

:func:`analyze_dedup_usage` inspects Python source (AST-level, nothing is
executed) and emits ``I406`` warnings — the detection-pipeline sibling of
the ``I401``–``I405`` index-usage hints — wherever the eagerly
materialized candidate generators feed the per-pair scorer directly:

* ``I406`` — the result of ``multipass_sorted_neighborhood(...)`` or
  ``multipass_blocking(...)`` is passed to ``score_candidates(...)``,
  either nested in the call or through a straight-line local assignment.

That shape unions every pass into a ``Set[Tuple[int, int]]`` and scores
one pair at a time in one process; :mod:`repro.dedup.pipeline` produces
bit-identical results from packed 64-bit pair keys, prepared record
vectors and (optionally) sharded worker processes.  Like the index-usage
hints these are warnings, never errors — the naive code is correct, it is
just the path that stops scaling first.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Union

from repro.analysis.diagnostics import WARNING, Diagnostic

#: Candidate generators whose eager tuple-set results the hint tracks.
CANDIDATE_GENERATORS = frozenset(
    {"multipass_sorted_neighborhood", "multipass_blocking"}
)

#: The per-pair scoring entry point the streaming pipeline replaces.
PAIR_SCORERS = frozenset({"score_candidates"})

_HINT = (
    "use repro.dedup.pipeline (sorted_neighborhood_candidates / "
    "blocking_candidates + score_candidates_packed, or DetectionPipeline) "
    "for packed, streamed, parallel detection with bit-identical results"
)


def _called_name(node: ast.Call) -> Optional[str]:
    """The terminal function name of a call, for ``f(...)`` and ``m.f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _candidates_argument(node: ast.Call) -> Optional[ast.expr]:
    """The ``candidates`` argument of a ``score_candidates`` call."""
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "candidates":
            return keyword.value
    return None


class _Scope:
    """Straight-line ``name = multipass_*(...)`` bindings of one scope."""

    def __init__(self) -> None:
        self.generated: Dict[str, str] = {}  # variable -> generator name

    def record_assignment(self, node: Union[ast.Assign, ast.AnnAssign]) -> None:
        value = node.value
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        generator: Optional[str] = None
        if isinstance(value, ast.Call):
            name = _called_name(value)
            if name in CANDIDATE_GENERATORS:
                generator = name
        for target in targets:
            if isinstance(target, ast.Name):
                if generator is not None:
                    self.generated[target.id] = generator
                else:
                    # Any other rebinding kills the tracked provenance.
                    self.generated.pop(target.id, None)


class _DedupUsageVisitor(ast.NodeVisitor):
    """Walks one module, keeping a per-function assignment scope."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[Diagnostic] = []
        self._scopes: List[_Scope] = [_Scope()]

    # -- scope management ---------------------------------------------------

    def _in_new_scope(self, node: ast.AST) -> None:
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._in_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._in_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._in_new_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)  # report nested calls first
        self._scopes[-1].record_assignment(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        self._scopes[-1].record_assignment(node)

    # -- the hint -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _called_name(node)
        if name in PAIR_SCORERS:
            argument = self._candidates_argument_origin(node)
            if argument is not None:
                self.findings.append(
                    Diagnostic(
                        "I406",
                        WARNING,
                        f"{self.filename}:{node.lineno}",
                        f"candidates from {argument}() feed "
                        f"{name}() directly; the eager tuple set and "
                        "per-pair scoring loop do not scale past small "
                        "datasets",
                        hint=_HINT,
                    )
                )
        self.generic_visit(node)

    def _candidates_argument_origin(self, node: ast.Call) -> Optional[str]:
        """The generator behind the candidates argument, if traceable."""
        argument = _candidates_argument(node)
        if argument is None:
            return None
        if isinstance(argument, ast.Call):
            name = _called_name(argument)
            if name in CANDIDATE_GENERATORS:
                return name
            return None
        if isinstance(argument, ast.Name):
            for scope in reversed(self._scopes):
                if argument.id in scope.generated:
                    return scope.generated[argument.id]
        return None


def analyze_dedup_usage(
    source: str, filename: str = "<source>"
) -> List[Diagnostic]:
    """``I406`` hints for naive candidate-set → per-pair-scoring code.

    ``source`` is Python source text; returns one warning per
    ``score_candidates`` call whose candidates argument is (or was
    assigned from, in the same or an enclosing scope) a
    ``multipass_sorted_neighborhood`` / ``multipass_blocking`` call.
    Raises ``SyntaxError`` if the source does not parse.
    """
    tree = ast.parse(source, filename=filename)
    visitor = _DedupUsageVisitor(filename)
    visitor.visit(tree)
    return visitor.findings
