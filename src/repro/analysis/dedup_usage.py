"""Dedup-pipeline usage hints: naive detection code that will not scale.

:func:`analyze_dedup_usage` inspects Python source (AST-level, nothing is
executed) and emits ``I406``/``I408`` warnings — the detection-pipeline
siblings of the ``I401``–``I405`` index-usage hints — wherever candidate
generation feeds pair scoring in a shape that stops scaling first:

* ``I406`` — the result of ``multipass_sorted_neighborhood(...)`` or
  ``multipass_blocking(...)`` is passed to ``score_candidates(...)``,
  either nested in the call or through a straight-line local assignment.
  The eager tuple set and per-pair loop are replaced bit-identically by
  :mod:`repro.dedup.pipeline`'s packed keys and batched scoring.
* ``I408`` — the candidate *universe* itself is quadratic or
  window-bound: all pairs from ``itertools.combinations(...)`` (bare or
  wrapped in ``pack_pairs(...)``) feed either scorer, or a lone
  ``sorted_neighborhood_candidates(...)`` result — including its
  tuple-unpacked first element — feeds ``score_candidates_packed(...)``.
  On large registers the fix is not a faster loop but a sub-quadratic
  generator: the MinHash–LSH pass (:mod:`repro.dedup.lsh`).

Like the index-usage hints these are warnings, never errors — the naive
code is correct, it is just the path that stops scaling first.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.diagnostics import WARNING, Diagnostic

#: Candidate generators whose eager tuple-set results the hint tracks.
CANDIDATE_GENERATORS = frozenset(
    {"multipass_sorted_neighborhood", "multipass_blocking"}
)

#: All-pairs universes: O(n²) candidates no scoring loop can outrun.
ALLPAIRS_GENERATORS = frozenset({"combinations"})

#: Window-bound generators whose recall a lone pass caps (I408).
SNM_ONLY_GENERATORS = frozenset({"sorted_neighborhood_candidates"})

#: The per-pair scoring entry point the streaming pipeline replaces.
PAIR_SCORERS = frozenset({"score_candidates"})

#: The packed scorer — already fast, but only as good as its candidates.
PACKED_PAIR_SCORERS = frozenset({"score_candidates_packed"})

_HINT = (
    "use repro.dedup.pipeline (sorted_neighborhood_candidates / "
    "blocking_candidates + score_candidates_packed, or DetectionPipeline) "
    "for packed, streamed, parallel detection with bit-identical results"
)

_LSH_HINT = (
    "generate candidates sub-quadratically with the MinHash-LSH pass: "
    "lsh_candidates(records, attributes, bands=..., rows=...) or "
    'DetectionPipeline(candidate_passes=("snm", "lsh"))'
)


def _called_name(node: ast.Call) -> Optional[str]:
    """The terminal function name of a call, for ``f(...)`` and ``m.f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _candidates_argument(
    node: ast.Call, keyword_name: str = "candidates"
) -> Optional[ast.expr]:
    """The candidates argument of a scoring call.

    Positionally it is the second argument for both scorers; by keyword
    it is ``candidates`` for ``score_candidates`` and ``keys`` for
    ``score_candidates_packed``.
    """
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == keyword_name:
            return keyword.value
    return None


_TRACKED_GENERATORS = (
    CANDIDATE_GENERATORS | ALLPAIRS_GENERATORS | SNM_ONLY_GENERATORS
)


def _generator_of_expression(value: ast.expr) -> Optional[str]:
    """The tracked generator a value expression carries, if any.

    Handles the bare call, ``pack_pairs(combinations(...), n)`` and the
    ``sorted_neighborhood_candidates(...)[0]`` keys projection.
    """
    if isinstance(value, ast.Call):
        name = _called_name(value)
        if name in _TRACKED_GENERATORS:
            return name
        if name == "pack_pairs" and value.args:
            inner = value.args[0]
            if isinstance(inner, ast.Call):
                inner_name = _called_name(inner)
                if inner_name in ALLPAIRS_GENERATORS:
                    return inner_name
        return None
    if isinstance(value, ast.Subscript):
        inner = value.value
        if isinstance(inner, ast.Call):
            name = _called_name(inner)
            if name in SNM_ONLY_GENERATORS:
                return name
    return None


class _Scope:
    """Straight-line ``name = multipass_*(...)`` bindings of one scope."""

    def __init__(self) -> None:
        self.generated: Dict[str, str] = {}  # variable -> generator name

    def record_assignment(self, node: Union[ast.Assign, ast.AnnAssign]) -> None:
        value = node.value
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        generator = _generator_of_expression(value) if value else None
        for target in targets:
            if isinstance(target, ast.Name):
                if generator is not None:
                    self.generated[target.id] = generator
                else:
                    # Any other rebinding kills the tracked provenance.
                    self.generated.pop(target.id, None)
            elif isinstance(target, ast.Tuple):
                self._record_tuple_target(target, value, generator)

    def _record_tuple_target(
        self,
        target: ast.Tuple,
        value: Optional[ast.expr],
        generator: Optional[str],
    ) -> None:
        """``keys, stats = sorted_neighborhood_candidates(...)`` binds keys.

        The generators return ``(keys, stats)`` tuples, so only the first
        tuple element carries candidate provenance; every other unpacked
        name is a rebinding that clears whatever it previously tracked.
        """
        first_is_keys = (
            generator in SNM_ONLY_GENERATORS
            and isinstance(value, ast.Call)
        )
        for position, element in enumerate(target.elts):
            if not isinstance(element, ast.Name):
                continue
            if position == 0 and first_is_keys:
                self.generated[element.id] = generator
            else:
                self.generated.pop(element.id, None)


class _DedupUsageVisitor(ast.NodeVisitor):
    """Walks one module, keeping a per-function assignment scope."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[Diagnostic] = []
        self._scopes: List[_Scope] = [_Scope()]

    # -- scope management ---------------------------------------------------

    def _in_new_scope(self, node: ast.AST) -> None:
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._in_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._in_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._in_new_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)  # report nested calls first
        self._scopes[-1].record_assignment(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        self._scopes[-1].record_assignment(node)

    # -- the hint -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _called_name(node)
        if name in PAIR_SCORERS:
            origin = self._candidates_argument_origin(node, "candidates")
            if origin in CANDIDATE_GENERATORS:
                self.findings.append(
                    Diagnostic(
                        "I406",
                        WARNING,
                        f"{self.filename}:{node.lineno}",
                        f"candidates from {origin}() feed "
                        f"{name}() directly; the eager tuple set and "
                        "per-pair scoring loop do not scale past small "
                        "datasets",
                        hint=_HINT,
                    )
                )
            elif origin in ALLPAIRS_GENERATORS:
                self._report_allpairs(node, name, origin)
        elif name in PACKED_PAIR_SCORERS:
            origin = self._candidates_argument_origin(node, "keys")
            if origin in ALLPAIRS_GENERATORS:
                self._report_allpairs(node, name, origin)
            elif origin in SNM_ONLY_GENERATORS:
                self.findings.append(
                    Diagnostic(
                        "I408",
                        WARNING,
                        f"{self.filename}:{node.lineno}",
                        f"{name}() scores candidates from a lone "
                        f"{origin}() pass; on large registers the "
                        "fixed-window neighbourhood caps recall while "
                        "pair counts keep growing with n*window",
                        hint=_LSH_HINT,
                    )
                )
        self.generic_visit(node)

    def _report_allpairs(
        self, node: ast.Call, scorer: str, origin: Optional[str]
    ) -> None:
        self.findings.append(
            Diagnostic(
                "I408",
                WARNING,
                f"{self.filename}:{node.lineno}",
                f"all pairs from {origin}() feed {scorer}(); the O(n^2) "
                "candidate universe dominates runtime on large registers "
                "no matter how fast each pair is scored",
                hint=_LSH_HINT,
            )
        )

    def _candidates_argument_origin(
        self, node: ast.Call, keyword_name: str
    ) -> Optional[str]:
        """The generator behind the candidates argument, if traceable."""
        argument = _candidates_argument(node, keyword_name)
        if argument is None:
            return None
        direct = _generator_of_expression(argument)
        if direct is not None:
            return direct
        if isinstance(argument, ast.Name):
            for scope in reversed(self._scopes):
                if argument.id in scope.generated:
                    return scope.generated[argument.id]
        return None


def analyze_dedup_usage(
    source: str, filename: str = "<source>"
) -> List[Diagnostic]:
    """``I406``/``I408`` hints for candidate shapes that stop scaling.

    ``source`` is Python source text; returns one warning per scoring
    call whose candidates argument is (or was assigned from, in the same
    or an enclosing scope):

    * a ``multipass_sorted_neighborhood`` / ``multipass_blocking`` call
      fed to ``score_candidates`` — ``I406``, use the packed pipeline;
    * an ``itertools.combinations`` universe (bare, ``pack_pairs``-wrapped
      or assigned) fed to either scorer, or a lone
      ``sorted_neighborhood_candidates`` result (nested ``[0]`` or
      tuple-unpacked keys) fed to ``score_candidates_packed`` — ``I408``,
      switch candidate generation to the sub-quadratic MinHash–LSH pass.

    Raises ``SyntaxError`` if the source does not parse.
    """
    tree = ast.parse(source, filename=filename)
    visitor = _DedupUsageVisitor(filename)
    visitor.visit(tree)
    return visitor.findings
