"""Static validation of customisation specs (codes ``C2xx``).

A *customisation spec* is the JSON-able description of a heterogeneity-
bounded test dataset (Section 3.2 / 6.5 of the paper): the ``[h_lo, h_hi]``
range, the attribute groups to keep, cluster counts, and the optional
attribute transformations (drop / merge / rename / value mapping) plus a
cluster pre-filter.  :func:`repro.core.customize.customize_from_spec`
validates a spec with :func:`analyze_customization` *before* any cluster is
scanned, and ``ncvoter-testdata check --customize`` lints one from the
command line.

Spec format::

    {
      "name": "nc2",
      "h_lo": 0.2, "h_hi": 0.4,
      "groups": ["person"],
      "target_clusters": 10000,
      "sample_clusters": null,
      "min_cluster_size": 2,
      "seed": 0,
      "filter": {"records.person.last_name": {"$exists": true}},
      "transform": {
        "drop": ["age"],
        "merge": {"full_name": ["first_name", "midl_name", "last_name"]},
        "rename": {"midl_name": "middle_name"},
        "values": {"last_name": "title"}
      }
    }
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Set

from repro.analysis.analyzer import _Analyzer
from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.registry import did_you_mean
from repro.analysis.schemas import cluster_schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.profile import SchemaProfile

#: Keys a customisation spec may carry.
SPEC_KEYS = frozenset(
    {
        "name",
        "h_lo",
        "h_hi",
        "groups",
        "target_clusters",
        "sample_clusters",
        "min_cluster_size",
        "seed",
        "filter",
        "transform",
    }
)

#: Keys of the ``transform`` sub-spec.
TRANSFORM_KEYS = frozenset({"drop", "merge", "rename", "values"})


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_count(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def analyze_customization(
    spec: Any, profile: Optional["SchemaProfile"] = None
) -> List[Diagnostic]:
    """Statically validate a customisation spec against ``profile``.

    ``profile`` defaults to the NC voter profile.  Returns diagnostics; the
    spec is safe to execute when none of them is an error.
    """
    from repro.core.profile import NC_VOTER_PROFILE
    from repro.core.transform import VALUE_TRANSFORMS

    if profile is None:
        profile = NC_VOTER_PROFILE
    diagnostics: List[Diagnostic] = []
    if not isinstance(spec, dict):
        diagnostics.append(
            Diagnostic(
                "C200",
                ERROR,
                "spec",
                f"customisation spec must be a dict, got {type(spec).__name__}",
            )
        )
        return diagnostics

    for key in spec:
        if key not in SPEC_KEYS:
            diagnostics.append(
                Diagnostic(
                    "C205",
                    WARNING,
                    f"spec.{key}",
                    f"unknown spec key {key!r} is ignored",
                    hint=did_you_mean(str(key), SPEC_KEYS),
                )
            )

    _check_range(spec, diagnostics)
    groups = _check_groups(spec, profile, diagnostics)
    for key, minimum in (
        ("target_clusters", 1),
        ("sample_clusters", 1),
        ("min_cluster_size", 1),
        ("seed", None),
    ):
        if key not in spec or spec[key] is None:
            continue
        value = spec[key]
        if not _is_count(value) or (minimum is not None and value < minimum):
            expectation = "an integer" if minimum is None else f"an integer >= {minimum}"
            diagnostics.append(
                Diagnostic(
                    "C204",
                    ERROR,
                    f"spec.{key}",
                    f"{key} must be {expectation}, got {value!r}",
                )
            )

    if "filter" in spec and spec["filter"] is not None:
        analyzer = _Analyzer(cluster_schema(profile))
        analyzer.filter(spec["filter"], "spec.filter")
        diagnostics.extend(analyzer.diagnostics)

    if "transform" in spec and spec["transform"] is not None:
        _check_transform(
            spec["transform"], groups, profile, set(VALUE_TRANSFORMS), diagnostics
        )
    return diagnostics


def _check_range(spec: dict, diagnostics: List[Diagnostic]) -> None:
    h_lo, h_hi = spec.get("h_lo", 0.0), spec.get("h_hi", 1.0)
    for key, value in (("h_lo", h_lo), ("h_hi", h_hi)):
        if not _is_number(value) or not 0.0 <= value <= 1.0:
            diagnostics.append(
                Diagnostic(
                    "C202",
                    ERROR,
                    f"spec.{key}",
                    f"{key} must be a number in [0, 1], got {value!r}",
                )
            )
            return
    if h_lo > h_hi:
        diagnostics.append(
            Diagnostic(
                "C202",
                ERROR,
                "spec.h_lo",
                f"empty heterogeneity range: h_lo ({h_lo}) > h_hi ({h_hi})",
            )
        )


def _check_groups(
    spec: dict, profile: "SchemaProfile", diagnostics: List[Diagnostic]
) -> tuple:
    groups = spec.get("groups", (profile.primary_group,))
    if isinstance(groups, str) or not isinstance(groups, (list, tuple)):
        diagnostics.append(
            Diagnostic(
                "C201",
                ERROR,
                "spec.groups",
                f"groups must be a list of group names, got {groups!r}",
            )
        )
        return (profile.primary_group,)
    known = tuple(profile.groups)
    valid = []
    for group in groups:
        if group in profile.groups:
            valid.append(group)
        else:
            diagnostics.append(
                Diagnostic(
                    "C201",
                    ERROR,
                    f"spec.groups.{group}",
                    f"unknown attribute group {group!r} "
                    f"(profile {profile.name!r} has {sorted(known)})",
                    hint=did_you_mean(str(group), known),
                )
            )
    return tuple(valid) or (profile.primary_group,)


def _check_transform(
    transform: Any,
    groups: tuple,
    profile: "SchemaProfile",
    transform_names: Set[str],
    diagnostics: List[Diagnostic],
) -> None:
    if not isinstance(transform, dict):
        diagnostics.append(
            Diagnostic(
                "C200",
                ERROR,
                "spec.transform",
                f"transform must be a dict, got {type(transform).__name__}",
            )
        )
        return
    for key in transform:
        if key not in TRANSFORM_KEYS:
            diagnostics.append(
                Diagnostic(
                    "C205",
                    WARNING,
                    f"spec.transform.{key}",
                    f"unknown transform key {key!r} is ignored",
                    hint=did_you_mean(str(key), TRANSFORM_KEYS),
                )
            )

    # The working attribute set evolves as the steps apply in order:
    # drop -> merge -> rename -> values.
    attributes: Set[str] = set()
    for group in groups:
        attributes.update(profile.groups.get(group, ()))

    def check_attribute(name: Any, location: str) -> bool:
        if name in attributes:
            return True
        diagnostics.append(
            Diagnostic(
                "C203",
                ERROR,
                location,
                f"unknown attribute {name!r} (not in groups {sorted(groups)})",
                hint=did_you_mean(str(name), attributes),
            )
        )
        return False

    drop = transform.get("drop") or ()
    if not isinstance(drop, (list, tuple)):
        diagnostics.append(
            Diagnostic(
                "C200", ERROR, "spec.transform.drop", "drop must be a list"
            )
        )
        drop = ()
    for name in drop:
        if check_attribute(name, f"spec.transform.drop.{name}"):
            attributes.discard(name)

    merge = transform.get("merge") or {}
    if not isinstance(merge, dict):
        diagnostics.append(
            Diagnostic(
                "C200",
                ERROR,
                "spec.transform.merge",
                "merge must be a dict of target: [sources]",
            )
        )
        merge = {}
    for target, sources in merge.items():
        location = f"spec.transform.merge.{target}"
        if not isinstance(sources, (list, tuple)) or not sources:
            diagnostics.append(
                Diagnostic(
                    "C200",
                    ERROR,
                    location,
                    f"merge sources for {target!r} must be a non-empty list",
                )
            )
            continue
        for source in sources:
            if check_attribute(source, f"{location}.{source}"):
                attributes.discard(source)
        attributes.add(target)

    rename = transform.get("rename") or {}
    if not isinstance(rename, dict):
        diagnostics.append(
            Diagnostic(
                "C200",
                ERROR,
                "spec.transform.rename",
                "rename must be a dict of old: new",
            )
        )
        rename = {}
    for old, new in rename.items():
        if check_attribute(old, f"spec.transform.rename.{old}"):
            attributes.discard(old)
            attributes.add(new)

    values = transform.get("values") or {}
    if not isinstance(values, dict):
        diagnostics.append(
            Diagnostic(
                "C200",
                ERROR,
                "spec.transform.values",
                "values must be a dict of attribute: transform-name",
            )
        )
        values = {}
    for attribute, name in values.items():
        check_attribute(attribute, f"spec.transform.values.{attribute}")
        if name not in transform_names:
            diagnostics.append(
                Diagnostic(
                    "C206",
                    ERROR,
                    f"spec.transform.values.{attribute}",
                    f"unknown value transform {name!r} "
                    f"(available: {sorted(transform_names)})",
                    hint=did_you_mean(str(name), transform_names),
                )
            )
