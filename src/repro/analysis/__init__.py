"""Static analysis for docstore queries, pipelines and repo invariants.

Two layers:

* a **query/pipeline analyzer** (:func:`analyze_filter`,
  :func:`analyze_pipeline`, :func:`analyze_update`,
  :func:`analyze_customization`) that walks filter documents, aggregation
  pipelines and customisation specs *without executing them* and reports
  :class:`Diagnostic` records — unknown operators with did-you-mean hints,
  operand shape errors, invalid ``$regex`` patterns, vacuous predicates,
  unknown field paths (against a :class:`SchemaPaths`) and stage-order
  hazards.  :meth:`repro.docstore.Database.set_analysis_mode` and the
  ``ncvoter-testdata check`` CLI subcommand are the two front doors;
* a **repo-invariant AST linter** (:mod:`repro.analysis.lint`), runnable as
  ``python -m repro.analysis.lint src tests`` and as a pytest-collected
  gate;
* a **concurrency & determinism analyzer** (:mod:`repro.analysis.effects`
  + :mod:`repro.analysis.concurrency`): per-function effect summaries
  (global/closure/parameter mutation, RNG/time/env/I-O, set iteration)
  over a call graph, and the R-code diagnostics built on them (R100–R106)
  guarding the parallel and durable paths.  Front doors:
  ``python -m repro.analysis.lint --concurrency`` and
  ``ncvoter-testdata check --concurrency``.
"""

from __future__ import annotations

from repro.analysis.analyzer import (
    analyze_filter,
    analyze_pipeline,
    analyze_update,
    require_clean,
)
from repro.analysis.customization import analyze_customization
from repro.analysis.dedup_usage import analyze_dedup_usage
from repro.analysis.index_usage import analyze_index_usage
from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    errors_only,
    has_errors,
    render_report,
)
from repro.analysis.registry import (
    ACCUMULATORS,
    EXPRESSION_OPERATORS,
    FILTER_OPERATORS,
    PIPELINE_STAGES,
    PUSHDOWN_STAGES,
    TOP_LEVEL_OPERATORS,
    UPDATE_OPERATORS,
    did_you_mean,
    suggest,
)
from repro.analysis.concurrency import (
    PROCESS_LOCAL_CACHES,
    R_CODES,
    ConcurrencyReport,
    analyze_concurrency,
    analyze_concurrency_sources,
    write_json_report,
)
from repro.analysis.effects import (
    EffectReport,
    EffectSummary,
    analyze_effects,
    analyze_effects_sources,
)
from repro.analysis.schemas import SchemaPaths, cluster_schema, flat_record_schema

__all__ = [
    "Diagnostic",
    "ERROR",
    "WARNING",
    "has_errors",
    "errors_only",
    "render_report",
    "analyze_filter",
    "analyze_dedup_usage",
    "analyze_index_usage",
    "analyze_pipeline",
    "analyze_update",
    "analyze_customization",
    "require_clean",
    "SchemaPaths",
    "cluster_schema",
    "flat_record_schema",
    "FILTER_OPERATORS",
    "TOP_LEVEL_OPERATORS",
    "PIPELINE_STAGES",
    "PUSHDOWN_STAGES",
    "EXPRESSION_OPERATORS",
    "ACCUMULATORS",
    "UPDATE_OPERATORS",
    "suggest",
    "did_you_mean",
    "R_CODES",
    "PROCESS_LOCAL_CACHES",
    "ConcurrencyReport",
    "analyze_concurrency",
    "analyze_concurrency_sources",
    "write_json_report",
    "EffectReport",
    "EffectSummary",
    "analyze_effects",
    "analyze_effects_sources",
]
