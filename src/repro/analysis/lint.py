"""Repo-invariant AST linter (``python -m repro.analysis.lint src tests``).

Custom :mod:`ast`-based checks that hold this codebase's invariants:

* **L001** — mutable default argument (``def f(x=[])``, ``x={}``, ``x=set()``);
* **L002** — bare ``except:`` (swallows ``KeyboardInterrupt``/``SystemExit``);
* **L003** — ``print()`` in library code (everything under ``src/repro``
  except the CLI / report / ``__main__`` modules, which exist to print);
* **L004** — :mod:`repro.docstore` code raising anything but the
  :class:`~repro.docstore.errors.DocStoreError` hierarchy for user input —
  callers catch ``QueryError`` / ``StorageError``, so foreign exception
  types escape their error handling;
* **L005** — library module missing ``from __future__ import annotations``
  (keeps annotations cheap and uniform on all supported Pythons);
* **L006** — parameter annotated with a non-``Optional`` type but defaulted
  to ``None`` (``def f(x: str = None)`` lies to every caller and type
  checker; annotate ``Optional[str]`` / ``str | None`` instead);
* **L007** — docstore library code opening files for writing directly
  (``open(..., "w")``, ``path.open("wb")``, ``path.write_text(...)``) —
  every write to a docstore-managed path must go through the atomic-write
  helpers in :mod:`repro.docstore.wal` (tmp file → fsync → rename), or a
  crash can leave a half-written snapshot; ``wal.py`` itself, where those
  helpers live, is exempt;
* **L008** — eager ``deep_copy`` on a docstore read path (``find`` /
  ``find_one`` / ``all`` / ``aggregate`` / ``distinct``, the planner's
  ``execute_*`` / ``iter_*`` executors, aggregation ``_stage_*``
  handlers, ``_scan*`` helpers).  Reads materialize through the
  copy-on-read views in :mod:`repro.docstore.views`; a stray
  ``deep_copy`` per yielded document silently reintroduces the
  per-result allocation wall the views removed.  The sanctioned homes —
  ``documents.py``, ``views.py`` and the deliberately-eager
  ``_reference.py`` oracle — are exempt, and genuine mutating clones
  are suppressed inline (see below);
* **L009** — a ``# repro: ignore[L00x]`` suppression comment that
  matches no finding on its line (kept symmetric with the concurrency
  analyzer's R100 so the tree stays honest).

Findings on a line ending in ``# repro: ignore[L008]`` (codes
comma-separated) are suppressed.  Suppressions naming only codes from
other tools' families (e.g. the concurrency analyzer's R-codes) are left
for those tools to police.

With ``--concurrency`` the run additionally includes the R-code family
from :mod:`repro.analysis.concurrency` (effect-inference-based race and
nondeterminism diagnostics, R100–R106).

Findings are reported as :class:`~repro.analysis.diagnostics.Diagnostic`
records with ``file:line:col`` locations.  The module doubles as a pytest
gate (see ``tests/analysis/test_lint_repo.py``) and a CI step.
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import ERROR, Diagnostic

#: Every code this linter can emit (the L-code family's jurisdiction).
L_CODES: Dict[str, str] = {
    "L000": "syntax error",
    "L001": "mutable default argument",
    "L002": "bare except",
    "L003": "print() in library code",
    "L004": "docstore raise outside the DocStoreError hierarchy",
    "L005": "missing 'from __future__ import annotations'",
    "L006": "non-Optional parameter defaulted to None",
    "L007": "direct (non-atomic) file write in docstore code",
    "L008": "eager deep_copy on a docstore read path",
    "L009": "unused suppression comment",
}

#: Module basenames allowed to call print() even inside ``src``.
PRINT_ALLOWED = frozenset({"cli.py", "report.py", "__main__.py"})

#: Exception names the docstore may raise for user input (its own hierarchy).
DOCSTORE_EXCEPTIONS = frozenset(
    {
        "DocStoreError",
        "DuplicateKeyError",
        "QueryError",
        "CollectionNotFound",
        "StorageError",
        "StorageCorruptError",
        "QuarantineError",
        "DegradedReadError",
        "DegradedWriteError",
        "UnknownIndexKind",
    }
)

#: Docstore modules exempt from L007: the atomic-write helpers themselves.
ATOMIC_WRITE_HOME = frozenset({"wal.py"})

#: Docstore modules exempt from L008: where ``deep_copy`` lives, the
#: sanctioned materialization helpers, and the deliberately-eager oracle.
MATERIALIZATION_HOME = frozenset({"documents.py", "views.py", "_reference.py"})

#: Exact method names that form the docstore's read surface.
_READ_SURFACE_NAMES = frozenset({"find", "find_one", "all", "aggregate", "distinct"})

#: Name prefixes of read-path executors and helpers.
_READ_SURFACE_PREFIXES = ("execute_", "iter_", "_stage_", "_scan")

#: Inline suppression comments: a hash, then ``repro: ignore`` with the
#: suppressed codes comma-separated in square brackets.
_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]")


def _is_read_surface(name: str) -> bool:
    return name in _READ_SURFACE_NAMES or name.startswith(_READ_SURFACE_PREFIXES)

#: String literals that make an ``open``-style mode argument a write mode.
_WRITE_MODE_CHARS = frozenset("wax+")

_MUTABLE_CALLS = frozenset({"list", "dict", "set"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS and not node.args and not node.keywords
    return False


def _annotation_allows_none(annotation: Optional[ast.AST]) -> bool:
    """Whether a parameter annotation admits ``None`` as a value.

    Unannotated parameters are never flagged (there is no lie to catch), and
    the check is conservative: anything it cannot positively classify is
    treated as allowing ``None``.
    """
    if annotation is None:
        return True
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return True  # annotated `None` itself
        if isinstance(annotation.value, str):  # string annotation — substring scan
            text = annotation.value
            return "Optional" in text or "None" in text or "Any" in text
        return True
    if isinstance(annotation, ast.Name):
        return annotation.id in {"Any", "object"}
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in {"Any", "object"}
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_allows_none(annotation.left) or _annotation_allows_none(
            annotation.right
        )
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        if name == "Optional":
            return True
        if name in {"Union", "Annotated"}:
            slice_node = annotation.slice
            elements = (
                slice_node.elts if isinstance(slice_node, ast.Tuple) else [slice_node]
            )
            if name == "Annotated":
                elements = elements[:1]  # only the type part matters
            return any(_annotation_allows_none(element) for element in elements)
        return False
    return True  # unrecognised construct — do not guess


def _mode_argument(node: ast.Call, position: int) -> Optional[ast.AST]:
    """The mode argument of an ``open``-style call, positional or keyword."""
    mode: Optional[ast.AST] = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    return mode


def _is_write_mode(mode: Optional[ast.AST]) -> bool:
    """Whether a mode argument provably opens for writing.

    Only string constants are classified (``open(p, flag)`` with a dynamic
    flag is not guessed at); absent modes default to read.
    """
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS.intersection(mode.value))
    return False


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The exception class name of a raise statement, if identifiable."""
    exc = node.exc
    if exc is None:
        return None  # bare re-raise is always fine
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path, is_library: bool, is_docstore: bool) -> None:
        self.path = path
        self.is_library = is_library
        self.is_docstore = is_docstore
        self.findings: List[Diagnostic] = []
        #: Depth of enclosing read-surface functions (L008 applies when > 0).
        self._read_surface = 0

    def _report(self, node: ast.AST, code: str, message: str, hint: str = "") -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Diagnostic(
                code, ERROR, f"{self.path}:{line}:{col}", message, hint or None
            )
        )

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        positional = list(args.posonlyargs) + list(args.args)
        pairs = list(zip(positional[len(positional) - len(args.defaults):], args.defaults))
        pairs += [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if _is_mutable_default(default):
                self._report(
                    default,
                    "L001",
                    "mutable default argument",
                    hint="use None and create the value inside the function",
                )
            if (
                isinstance(default, ast.Constant)
                and default.value is None
                and not _annotation_allows_none(arg.annotation)
            ):
                self._report(
                    default,
                    "L006",
                    f"parameter {arg.arg!r} defaults to None but its "
                    "annotation does not allow None",
                    hint="annotate it Optional[...] (or `| None`)",
                )

    def _visit_function(self, node: ast.AST, args: ast.arguments, name: str) -> None:
        self._check_defaults(node, args)
        surface = self.is_docstore and _is_read_surface(name)
        if surface:
            self._read_surface += 1
        self.generic_visit(node)
        if surface:
            self._read_surface -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.args, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.args, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node,
                "L002",
                "bare except swallows KeyboardInterrupt and SystemExit",
                hint="catch Exception (or something narrower) instead",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.is_library
            and self.path.name not in PRINT_ALLOWED
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            self._report(
                node,
                "L003",
                "print() in library code",
                hint="return or log the value; printing belongs in the CLI",
            )
        if (
            self.is_docstore
            and self.is_library
            and self.path.name not in ATOMIC_WRITE_HOME
        ):
            self._check_direct_write(node)
        if (
            self.is_docstore
            and self.is_library
            and self._read_surface
            and self.path.name not in MATERIALIZATION_HOME
        ):
            func = node.func
            called = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if called == "deep_copy":
                self._report(
                    node,
                    "L008",
                    "docstore read path deep-copies eagerly; reads "
                    "materialize through the copy-on-read views",
                    hint="use lazy_document/wrap_value from "
                    "repro.docstore.views, or suppress a genuine mutating "
                    "clone with `# repro: ignore[L008]`",
                )
        self.generic_visit(node)

    def _check_direct_write(self, node: ast.Call) -> None:
        func = node.func
        hint = (
            "write through repro.docstore.wal.atomic_write_text/_bytes "
            "(tmp file → fsync → rename)"
        )
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_write_mode(_mode_argument(node, 1)):
                self._report(
                    node,
                    "L007",
                    "docstore code opens a file for writing directly; a "
                    "crash mid-write leaves a torn file",
                    hint=hint,
                )
        elif isinstance(func, ast.Attribute):
            if func.attr == "open" and _is_write_mode(_mode_argument(node, 0)):
                self._report(
                    node,
                    "L007",
                    "docstore code opens a file for writing directly; a "
                    "crash mid-write leaves a torn file",
                    hint=hint,
                )
            elif func.attr in {"write_text", "write_bytes"}:
                self._report(
                    node,
                    "L007",
                    f"docstore code calls .{func.attr}() directly; a crash "
                    "mid-write leaves a torn file",
                    hint=hint,
                )

    def visit_Raise(self, node: ast.Raise) -> None:
        if self.is_docstore:
            name = _raised_name(node)
            if name is not None and name not in DOCSTORE_EXCEPTIONS:
                self._report(
                    node,
                    "L004",
                    f"docstore code raises {name}; user input errors must "
                    "use the DocStoreError hierarchy",
                    hint="raise QueryError / StorageError (or a subclass)",
                )
        self.generic_visit(node)


def _collect_suppressions(source: str) -> Dict[int, Tuple[str, ...]]:
    """``{line: codes}`` from real ``#`` comment tokens only.

    Tokenizing (rather than scanning raw lines) keeps the linter from
    treating ``# repro: ignore[...]`` examples inside docstrings — like
    the ones in this module — as live suppressions.
    """
    lines: Dict[int, Tuple[str, ...]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if match:
                codes = tuple(
                    code.strip()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
                lines[token.start[0]] = codes
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        pass  # unparsable source is reported as L000
    return lines


def _finding_line(location: str) -> int:
    parts = location.rsplit(":", 2)
    return int(parts[1]) if len(parts) == 3 and parts[1].isdigit() else 0


def _apply_suppressions(
    findings: List[Diagnostic], source: str, path: Path
) -> List[Diagnostic]:
    suppressions = _collect_suppressions(source)
    if not suppressions:
        return findings
    used: set = set()
    kept: List[Diagnostic] = []
    for finding in findings:
        line = _finding_line(finding.path)
        codes = suppressions.get(line)
        if codes and finding.code in codes:
            used.add(line)
        else:
            kept.append(finding)
    for line in sorted(suppressions):
        if line in used:
            continue
        codes = suppressions[line]
        if not any(code in L_CODES for code in codes):
            continue  # another tool's jurisdiction (e.g. R-codes)
        kept.append(
            Diagnostic(
                "L009",
                ERROR,
                f"{path}:{line}:0",
                f"suppression `# repro: ignore[{','.join(codes)}]` matches "
                "no lint finding",
                hint="delete the stale comment (the linter no longer flags "
                "this line)",
            )
        )
    return kept


def lint_source(
    source: str, path: Path, is_library: bool = True, is_docstore: bool = False
) -> List[Diagnostic]:
    """Lint one module's source text; returns its findings."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                "L000",
                ERROR,
                f"{path}:{exc.lineno or 0}:{exc.offset or 0}",
                f"syntax error: {exc.msg}",
            )
        ]
    linter = _FileLinter(path, is_library, is_docstore)
    linter.visit(tree)
    if is_library and "from __future__ import annotations" not in source:
        linter.findings.append(
            Diagnostic(
                "L005",
                ERROR,
                f"{path}:1:0",
                "missing 'from __future__ import annotations'",
                hint="add it as the first import of the module",
            )
        )
    findings = _apply_suppressions(linter.findings, source, path)
    findings.sort(key=lambda d: d.path)
    return findings


def lint_paths(paths: Sequence[Path]) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    findings: List[Diagnostic] = []
    for path in _python_files(paths):
        posix = path.as_posix()
        is_library = "/repro/" in posix or posix.startswith("src/")
        is_docstore = "/docstore/" in posix
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), path, is_library, is_docstore
            )
        )
    return findings


def _python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.analysis.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST-based repo-invariant linter (codes L001-L009; "
        "add --concurrency for the R-code family).",
    )
    parser.add_argument("paths", nargs="+", type=Path, help="files or directories")
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the concurrency/determinism analyzer (R100-R106)",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    if args.concurrency:
        from repro.analysis.concurrency import analyze_concurrency

        findings.extend(analyze_concurrency(args.paths).all_findings)
    for finding in findings:
        sys.stderr.write(finding.render() + "\n")
    if findings:
        sys.stderr.write(f"{len(findings)} lint finding(s)\n")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
