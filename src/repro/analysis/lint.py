"""Repo-invariant AST linter (``python -m repro.analysis.lint src tests``).

Custom :mod:`ast`-based checks that hold this codebase's invariants:

* **L001** — mutable default argument (``def f(x=[])``, ``x={}``, ``x=set()``);
* **L002** — bare ``except:`` (swallows ``KeyboardInterrupt``/``SystemExit``);
* **L003** — ``print()`` in library code (everything under ``src/repro``
  except the CLI / report / ``__main__`` modules, which exist to print);
* **L004** — :mod:`repro.docstore` code raising anything but the
  :class:`~repro.docstore.errors.DocStoreError` hierarchy for user input —
  callers catch ``QueryError`` / ``StorageError``, so foreign exception
  types escape their error handling;
* **L005** — library module missing ``from __future__ import annotations``
  (keeps annotations cheap and uniform on all supported Pythons);
* **L006** — parameter annotated with a non-``Optional`` type but defaulted
  to ``None`` (``def f(x: str = None)`` lies to every caller and type
  checker; annotate ``Optional[str]`` / ``str | None`` instead);
* **L007** — docstore library code opening files for writing directly
  (``open(..., "w")``, ``path.open("wb")``, ``path.write_text(...)``) —
  every write to a docstore-managed path must go through the atomic-write
  helpers in :mod:`repro.docstore.wal` (tmp file → fsync → rename), or a
  crash can leave a half-written snapshot; ``wal.py`` itself, where those
  helpers live, is exempt.

With ``--concurrency`` the run additionally includes the R-code family
from :mod:`repro.analysis.concurrency` (effect-inference-based race and
nondeterminism diagnostics, R100–R106).

Findings are reported as :class:`~repro.analysis.diagnostics.Diagnostic`
records with ``file:line:col`` locations.  The module doubles as a pytest
gate (see ``tests/analysis/test_lint_repo.py``) and a CI step.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import ERROR, Diagnostic

#: Module basenames allowed to call print() even inside ``src``.
PRINT_ALLOWED = frozenset({"cli.py", "report.py", "__main__.py"})

#: Exception names the docstore may raise for user input (its own hierarchy).
DOCSTORE_EXCEPTIONS = frozenset(
    {
        "DocStoreError",
        "DuplicateKeyError",
        "QueryError",
        "CollectionNotFound",
        "StorageError",
        "StorageCorruptError",
        "UnknownIndexKind",
    }
)

#: Docstore modules exempt from L007: the atomic-write helpers themselves.
ATOMIC_WRITE_HOME = frozenset({"wal.py"})

#: String literals that make an ``open``-style mode argument a write mode.
_WRITE_MODE_CHARS = frozenset("wax+")

_MUTABLE_CALLS = frozenset({"list", "dict", "set"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS and not node.args and not node.keywords
    return False


def _annotation_allows_none(annotation: Optional[ast.AST]) -> bool:
    """Whether a parameter annotation admits ``None`` as a value.

    Unannotated parameters are never flagged (there is no lie to catch), and
    the check is conservative: anything it cannot positively classify is
    treated as allowing ``None``.
    """
    if annotation is None:
        return True
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return True  # annotated `None` itself
        if isinstance(annotation.value, str):  # string annotation — substring scan
            text = annotation.value
            return "Optional" in text or "None" in text or "Any" in text
        return True
    if isinstance(annotation, ast.Name):
        return annotation.id in {"Any", "object"}
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in {"Any", "object"}
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_allows_none(annotation.left) or _annotation_allows_none(
            annotation.right
        )
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        if name == "Optional":
            return True
        if name in {"Union", "Annotated"}:
            slice_node = annotation.slice
            elements = (
                slice_node.elts if isinstance(slice_node, ast.Tuple) else [slice_node]
            )
            if name == "Annotated":
                elements = elements[:1]  # only the type part matters
            return any(_annotation_allows_none(element) for element in elements)
        return False
    return True  # unrecognised construct — do not guess


def _mode_argument(node: ast.Call, position: int) -> Optional[ast.AST]:
    """The mode argument of an ``open``-style call, positional or keyword."""
    mode: Optional[ast.AST] = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    return mode


def _is_write_mode(mode: Optional[ast.AST]) -> bool:
    """Whether a mode argument provably opens for writing.

    Only string constants are classified (``open(p, flag)`` with a dynamic
    flag is not guessed at); absent modes default to read.
    """
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS.intersection(mode.value))
    return False


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The exception class name of a raise statement, if identifiable."""
    exc = node.exc
    if exc is None:
        return None  # bare re-raise is always fine
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path, is_library: bool, is_docstore: bool) -> None:
        self.path = path
        self.is_library = is_library
        self.is_docstore = is_docstore
        self.findings: List[Diagnostic] = []

    def _report(self, node: ast.AST, code: str, message: str, hint: str = "") -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Diagnostic(
                code, ERROR, f"{self.path}:{line}:{col}", message, hint or None
            )
        )

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        positional = list(args.posonlyargs) + list(args.args)
        pairs = list(zip(positional[len(positional) - len(args.defaults):], args.defaults))
        pairs += [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if _is_mutable_default(default):
                self._report(
                    default,
                    "L001",
                    "mutable default argument",
                    hint="use None and create the value inside the function",
                )
            if (
                isinstance(default, ast.Constant)
                and default.value is None
                and not _annotation_allows_none(arg.annotation)
            ):
                self._report(
                    default,
                    "L006",
                    f"parameter {arg.arg!r} defaults to None but its "
                    "annotation does not allow None",
                    hint="annotate it Optional[...] (or `| None`)",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node,
                "L002",
                "bare except swallows KeyboardInterrupt and SystemExit",
                hint="catch Exception (or something narrower) instead",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.is_library
            and self.path.name not in PRINT_ALLOWED
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            self._report(
                node,
                "L003",
                "print() in library code",
                hint="return or log the value; printing belongs in the CLI",
            )
        if (
            self.is_docstore
            and self.is_library
            and self.path.name not in ATOMIC_WRITE_HOME
        ):
            self._check_direct_write(node)
        self.generic_visit(node)

    def _check_direct_write(self, node: ast.Call) -> None:
        func = node.func
        hint = (
            "write through repro.docstore.wal.atomic_write_text/_bytes "
            "(tmp file → fsync → rename)"
        )
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_write_mode(_mode_argument(node, 1)):
                self._report(
                    node,
                    "L007",
                    "docstore code opens a file for writing directly; a "
                    "crash mid-write leaves a torn file",
                    hint=hint,
                )
        elif isinstance(func, ast.Attribute):
            if func.attr == "open" and _is_write_mode(_mode_argument(node, 0)):
                self._report(
                    node,
                    "L007",
                    "docstore code opens a file for writing directly; a "
                    "crash mid-write leaves a torn file",
                    hint=hint,
                )
            elif func.attr in {"write_text", "write_bytes"}:
                self._report(
                    node,
                    "L007",
                    f"docstore code calls .{func.attr}() directly; a crash "
                    "mid-write leaves a torn file",
                    hint=hint,
                )

    def visit_Raise(self, node: ast.Raise) -> None:
        if self.is_docstore:
            name = _raised_name(node)
            if name is not None and name not in DOCSTORE_EXCEPTIONS:
                self._report(
                    node,
                    "L004",
                    f"docstore code raises {name}; user input errors must "
                    "use the DocStoreError hierarchy",
                    hint="raise QueryError / StorageError (or a subclass)",
                )
        self.generic_visit(node)


def lint_source(
    source: str, path: Path, is_library: bool = True, is_docstore: bool = False
) -> List[Diagnostic]:
    """Lint one module's source text; returns its findings."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                "L000",
                ERROR,
                f"{path}:{exc.lineno or 0}:{exc.offset or 0}",
                f"syntax error: {exc.msg}",
            )
        ]
    linter = _FileLinter(path, is_library, is_docstore)
    linter.visit(tree)
    if is_library and "from __future__ import annotations" not in source:
        linter.findings.append(
            Diagnostic(
                "L005",
                ERROR,
                f"{path}:1:0",
                "missing 'from __future__ import annotations'",
                hint="add it as the first import of the module",
            )
        )
    linter.findings.sort(key=lambda d: d.path)
    return linter.findings


def lint_paths(paths: Sequence[Path]) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    findings: List[Diagnostic] = []
    for path in _python_files(paths):
        posix = path.as_posix()
        is_library = "/repro/" in posix or posix.startswith("src/")
        is_docstore = "/docstore/" in posix
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), path, is_library, is_docstore
            )
        )
    return findings


def _python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.analysis.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST-based repo-invariant linter (codes L001-L007; "
        "add --concurrency for the R-code family).",
    )
    parser.add_argument("paths", nargs="+", type=Path, help="files or directories")
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the concurrency/determinism analyzer (R100-R106)",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    if args.concurrency:
        from repro.analysis.concurrency import analyze_concurrency

        findings.extend(analyze_concurrency(args.paths).all_findings)
    for finding in findings:
        sys.stderr.write(finding.render() + "\n")
    if findings:
        sys.stderr.write(f"{len(findings)} lint finding(s)\n")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
