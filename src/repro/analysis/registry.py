"""Registries of the operators the docstore actually supports.

The analyzer validates names against these sets and produces did-you-mean
hints with the Damerau-Levenshtein distance from :mod:`repro.textsim` — the
same measure the paper uses to characterise typos (distance 1 = one edit or
one adjacent transposition), which is exactly the error class a query typo
falls into.

The pipeline-stage registry is derived from the aggregation module's own
dispatch table so the two can never drift apart; the remaining registries
mirror the ``if op == …`` chains of :mod:`repro.docstore.matching` and
:mod:`repro.docstore.aggregation` (which are not data-driven) and are pinned
to them by unit tests.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.docstore.aggregation import _STAGES
from repro.textsim.levenshtein import damerau_levenshtein_distance

#: Field-level filter operators understood by ``compile_filter``.
FILTER_OPERATORS = frozenset(
    {
        "$exists",
        "$eq",
        "$ne",
        "$gt",
        "$gte",
        "$lt",
        "$lte",
        "$in",
        "$nin",
        "$regex",
        "$size",
        "$all",
        "$elemMatch",
        "$not",
    }
)

#: Top-level logical combinators of the filter language.
TOP_LEVEL_OPERATORS = frozenset({"$and", "$or", "$nor"})

#: Aggregation pipeline stages (derived from the dispatch table).
PIPELINE_STAGES = frozenset(_STAGES)

#: Aggregation expression operators.
EXPRESSION_OPERATORS = frozenset(
    {
        "$literal",
        "$add",
        "$subtract",
        "$multiply",
        "$divide",
        "$size",
        "$concat",
        "$cond",
        "$ifNull",
        "$min",
        "$max",
        "$avg",
    }
)

#: ``$group`` accumulator operators.
ACCUMULATORS = frozenset(
    {"$sum", "$avg", "$min", "$max", "$push", "$addToSet", "$first", "$last"}
)

#: Update operators accepted by ``Collection.update_one`` / ``update_many``.
UPDATE_OPERATORS = frozenset(
    {"$set", "$unset", "$inc", "$push", "$addToSet", "$pull", "$rename"}
)

#: Pipeline stages the query planner can push down into an indexed read
#: (mirrors ``repro.docstore.planner.split_pushdown``; pinned by tests).
PUSHDOWN_STAGES = frozenset({"$match", "$sort", "$skip", "$limit"})


def suggest(
    name: str, candidates: Iterable[str], max_distance: int = 2
) -> Optional[str]:
    """The closest candidate within ``max_distance`` edits, or ``None``.

    Ties break towards the lexicographically smallest candidate so hints are
    deterministic.
    """
    best: Optional[Tuple[int, str]] = None
    for candidate in candidates:
        distance = damerau_levenshtein_distance(name, candidate)
        if distance > max_distance:
            continue
        if best is None or (distance, candidate) < best:
            best = (distance, candidate)
    return best[1] if best else None


def did_you_mean(name: str, candidates: Iterable[str]) -> Optional[str]:
    """A formatted ``did you mean …?`` hint, or ``None`` when nothing is close."""
    match = suggest(name, candidates)
    return f"did you mean {match!r}?" if match else None
