"""Concurrency & determinism diagnostics (the R-code family).

Built on the per-function effect summaries of
:mod:`repro.analysis.effects`, this analyzer protects the two claims the
parallel paths make (:mod:`repro.core.parallel`,
:mod:`repro.dedup.pipeline`): shard workers are **pure** (safe to retry
and to fan out over processes) and **deterministic** (any worker/shard
count produces bit-identical results).  Each code targets one way those
claims silently break:

* **R100** — an inline suppression comment (``# repro: ignore[R10x]``)
  that no finding used; stale suppressions hide future regressions;
* **R101** — a shard/worker function (anything passed to
  :func:`repro.core.parallel.run_shards`, directly or transitively
  reached from one) writes or mutates shared state: a module-level
  global, a closure cell, or one of its own parameters (workers are
  retried and degrade to in-process execution, so argument mutation
  leaks between attempts);
* **R102** — unseeded/global RNG, value-producing :mod:`time` calls,
  ``os.urandom`` or ``os.environ`` reachable from code executed under
  ``run_shards`` — results would differ between runs or workers;
* **R103** — iteration over a ``set``/``frozenset`` feeding an
  order-sensitive sink (list append, yield, file/journal write):
  set order varies with PYTHONHASHSEED, so the sink's order does too;
* **R104** — in-place mutation of a document obtained from
  ``Collection.find`` / ``find_one`` / ``aggregate`` / ``all`` —
  results are borrowed now that deep copies are elided on hot paths
  (the ``freeze_documents`` sanitizer enforces this at runtime);
* **R105** — mutation of docstore-private state (``_documents``,
  ``_by_user_id``, ``_indexes``, …) from outside :mod:`repro.docstore`:
  such writes bypass the WAL journal, so a crash forgets them;
* **R106** — a mutable default argument, or a module-level mutable
  container that run-time code mutates or aliases without an entry in
  the :data:`PROCESS_LOCAL_CACHES` exemption registry.

Findings on a line ending in ``# repro: ignore[R101]`` (codes
comma-separated) are suppressed; suppressions that never fire are
themselves reported as R100 so the tree stays honest.  The pytest gate
``tests/analysis/test_repo_clean.py`` asserts both directions over
``src/repro``.
"""

from __future__ import annotations

import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.effects import (
    EffectReport,
    EffectSummary,
    analyze_effects,
    analyze_effects_sources,
)

#: Descriptions of every code this analyzer can emit.
R_CODES: Dict[str, str] = {
    "R100": "unused suppression comment",
    "R101": "shard/worker function touches shared mutable state",
    "R102": "nondeterminism source reachable from parallel code",
    "R103": "unordered set iteration feeds an order-sensitive sink",
    "R104": "mutation of a borrowed document from a docstore read",
    "R105": "docstore-private state mutated outside the WAL journal",
    "R106": "mutable default argument or unregistered module-level cache",
}

#: Module-level mutable caches that are *process-local by design*: every
#: worker process gets (or rebuilds) its own copy, entries are pure
#: functions of their keys, and eviction can never change a result — so
#: sharing them inside one process is safe and R101/R106 do not apply.
#: Keyed by the qualified global name; the value documents the invariant
#: (and is asserted by ``tests/analysis/test_concurrency.py``).
PROCESS_LOCAL_CACHES: Dict[str, str] = {
    "repro.docstore.plancache._PREDICATE_CACHE": (
        "FIFO-bounded memo of compiled filter predicates keyed by the "
        "frozen filter document; predicates are pure closures over "
        "immutable frozen operands, so a stale entry can never exist and "
        "worker processes rebuilding their own copy is merely a warm-up "
        "cost, never a correctness issue"
    ),
    "repro.dedup.matching._SHARED_CACHE": (
        "bounded LRU of pure value-pair similarities, keyed with a "
        "per-matcher token; worker processes build their own copy at "
        "import time and never ship it back (asserted by "
        "tests/dedup/test_cache_isolation.py)"
    ),
    "repro.dedup.matching._matcher_tokens": (
        "per-process counter that namespaces matcher cache keys; only "
        "uniqueness within one process matters, never the actual value"
    ),
    "repro.textsim.cache.LRUCache": (
        "the cache type itself: single-threaded per process by design "
        "(see its docstring); parallelism is process-based"
    ),
    "repro.textsim.fast.tokens_of": (
        "functools.lru_cache of a pure function; process-local by "
        "construction"
    ),
    "repro.textsim.fast._token_pair_dl_similarity": (
        "functools.lru_cache of a pure function; process-local by "
        "construction"
    ),
    "repro.textsim.fast.qgram_set": (
        "functools.lru_cache of a pure function; process-local by "
        "construction"
    ),
    "repro.core.parallel._cpu_count": (
        "functools.lru_cache of a pure per-process machine property "
        "(os.cpu_count()); process-local by construction"
    ),
    "repro.core.parallel._CLAMP_WARNED": (
        "warn-once set of call-site labels for WorkerClampWarning; "
        "grows monotonically, guards only warning emission (never a "
        "result), and each worker process keeping its own copy merely "
        "re-warns at most once"
    ),
    "repro.core.parallel._RESILIENCE": (
        "monotonic telemetry counters (pool runs, shard retries, degraded "
        "shards) surfaced through Database.stats(); diagnostic only — no "
        "code path reads them to make a decision — so worker processes "
        "keeping their own discarded copies is correct by construction"
    ),
}

#: Inline suppression comments: a hash, then ``repro: ignore[...]`` with
#: one or more comma-separated R-codes inside the brackets.
_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]")

#: Call targets that start a parallel region: the first positional
#: argument of ``run_shards`` is executed in worker processes.
_PARALLEL_DISPATCH = "repro.core.parallel.run_shards"

#: Modules that own the docstore's private state (R104/R105 exempt): the
#: collection/update machinery mutates stored documents through the
#: journal on purpose.
_DOCSTORE_PREFIX = "repro.docstore."


@dataclasses.dataclass
class Suppression:
    """One inline suppression comment."""

    path: str
    line: int
    codes: Tuple[str, ...]
    used: bool = False


@dataclasses.dataclass
class ConcurrencyReport:
    """Everything one analyzer run produced."""

    findings: List[Diagnostic]
    suppressed: List[Diagnostic]
    unused_suppressions: List[Diagnostic]
    effects: EffectReport

    @property
    def all_findings(self) -> List[Diagnostic]:
        """Active findings plus unused-suppression findings (the gate set)."""
        return self.findings + self.unused_suppressions

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.all_findings:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict:
        """Machine-readable report (the CI artifact format)."""
        return {
            "version": 1,
            "codes": R_CODES,
            "findings": [dataclasses.asdict(d) for d in self.all_findings],
            "suppressed": [dataclasses.asdict(d) for d in self.suppressed],
            "counts": self.counts(),
            "clean": not self.all_findings,
        }


def _collect_suppressions(
    sources: Sequence[Tuple[str, Path, Optional[str]]],
) -> Dict[str, Dict[int, Suppression]]:
    """Suppressions from real ``#`` comment tokens only.

    Tokenizing (rather than scanning raw lines) keeps the analyzer from
    treating ``# repro: ignore[...]`` *examples inside docstrings* — like
    the ones in this module — as live suppressions.
    """
    by_file: Dict[str, Dict[int, Suppression]] = {}
    for source, path, _module in sources:
        lines: Dict[int, Suppression] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESSION.search(token.string)
                if match:
                    codes = tuple(
                        code.strip()
                        for code in match.group(1).split(",")
                        if code.strip()
                    )
                    number = token.start[0]
                    lines[number] = Suppression(str(path), number, codes)
        except (tokenize.TokenizeError, SyntaxError, IndentationError):
            pass  # the plain linter reports syntax errors (L000)
        if lines:
            by_file[str(path)] = lines
    return by_file


def _worker_roots(report: EffectReport) -> Dict[str, Tuple[str, int]]:
    """Functions handed to ``run_shards`` as workers.

    Returns ``{worker_qualname: (dispatching_function, call_line)}`` —
    every first positional argument of a resolved ``run_shards`` call that
    names a function in the analyzed set.
    """
    roots: Dict[str, Tuple[str, int]] = {}
    for qualname, summary in report.functions.items():
        module_effects = report.modules.get(summary.module)
        for call in summary.calls:
            if not (
                call.callee == _PARALLEL_DISPATCH
                or (not call.resolved and call.callee.endswith("run_shards"))
            ):
                continue
            if not call.positional or call.positional[0] is None:
                continue
            worker_name = call.positional[0]
            candidate = f"{summary.module}.{worker_name}"
            if candidate in report.functions:
                roots.setdefault(candidate, (qualname, call.line))
            elif module_effects is not None:
                imported = module_effects.imports.get(worker_name)
                if imported in report.functions:
                    roots.setdefault(imported, (qualname, call.line))
    return dict(sorted(roots.items()))


def _location(summary: EffectSummary, line: int) -> str:
    return f"{summary.path}:{line}:0"


def _chain_text(chain: List[str]) -> str:
    if len(chain) <= 1:
        return ""
    return " -> ".join(name.rsplit(".", 1)[-1] for name in chain)


class _Analyzer:
    def __init__(
        self,
        report: EffectReport,
        exemptions: Optional[Dict[str, str]] = None,
    ) -> None:
        self.report = report
        self.exemptions = (
            PROCESS_LOCAL_CACHES if exemptions is None else exemptions
        )
        self.findings: List[Diagnostic] = []

    def _emit(
        self,
        code: str,
        severity: str,
        location: str,
        message: str,
        hint: Optional[str] = None,
    ) -> None:
        self.findings.append(Diagnostic(code, severity, location, message, hint))

    # ------------------------------------------------------------ R101/R102

    def check_workers(self) -> None:
        roots = _worker_roots(self.report)
        chains = self.report.reachable(roots)
        for qualname, chain in sorted(chains.items()):
            summary = self.report.functions[qualname]
            root = chain[0]
            via = _chain_text(chain)
            suffix = f" (reached via {via})" if via else ""
            self._check_worker_shared_state(summary, root, suffix)
            self._check_worker_nondeterminism(summary, root, suffix)
        # Parameter mutation only matters for the worker roots themselves:
        # their arguments are what run_shards re-submits on retry and what
        # the in-process fallback shares with the caller.
        for root in roots:
            summary = self.report.functions[root]
            for param, line in sorted(
                summary.transitive_param_mutations.items()
            ):
                self._emit(
                    "R101",
                    ERROR,
                    _location(summary, line),
                    f"worker {summary.name!r} mutates its argument "
                    f"{param!r}; retried and in-process-degraded workers "
                    "would see the mutated value",
                    hint="copy the argument before mutating, or build a "
                    "fresh structure and return it",
                )

    def _check_worker_shared_state(
        self, summary: EffectSummary, root: str, suffix: str
    ) -> None:
        role = (
            f"worker {summary.name!r}"
            if summary.qualname == root
            else f"{summary.name!r}, reachable from worker "
            f"{root.rsplit('.', 1)[-1]!r}"
        )
        for name, line in sorted(summary.writes_globals.items()):
            if name in self.exemptions:
                continue
            self._emit(
                "R101",
                ERROR,
                _location(summary, line),
                f"{role} rebinds module global {name!r}{suffix}; worker "
                "processes each see their own copy, so results depend on "
                "which process ran the shard",
                hint="pass the value through the shard arguments instead",
            )
        for name, line in sorted(summary.mutates_globals.items()):
            if name in self.exemptions:
                continue
            self._emit(
                "R101",
                ERROR,
                _location(summary, line),
                f"{role} mutates module global {name!r}{suffix}; the "
                "mutation is invisible to the parent process and makes "
                "retried shards non-reproducible",
                hint="keep per-shard state local and merge it in the "
                "parent, or register a process-local cache exemption",
            )
        for name, line in sorted(summary.mutates_closure.items()):
            self._emit(
                "R101",
                ERROR,
                _location(summary, line),
                f"{role} mutates closure variable {name!r}{suffix}; "
                "closure cells do not cross process boundaries",
                hint="pass the value as an explicit shard argument",
            )
        # Reading a mutable global that *someone* mutates is capture of
        # shared mutable state: the worker's copy may differ from the
        # parent's at fork/submit time.
        mutated_anywhere = self._globals_mutated_anywhere()
        for name, line in sorted(summary.reads_globals.items()):
            if name in self.exemptions:
                continue
            if name in summary.mutates_globals or name in summary.writes_globals:
                continue  # the mutation error above already covers this
            if name in mutated_anywhere:
                self._emit(
                    "R101",
                    WARNING,
                    _location(summary, line),
                    f"{role} reads module global {name!r}{suffix}, which "
                    f"{mutated_anywhere[name]!r} mutates; the worker's "
                    "snapshot of it depends on submission timing",
                    hint="pass the value through the shard arguments, or "
                    "register a process-local cache exemption",
                )

    def _globals_mutated_anywhere(self) -> Dict[str, str]:
        mutated: Dict[str, str] = {}
        for qualname, summary in sorted(self.report.functions.items()):
            for name in summary.mutates_globals:
                mutated.setdefault(name, qualname)
            for name in summary.writes_globals:
                mutated.setdefault(name, qualname)
        return mutated

    def _check_worker_nondeterminism(
        self, summary: EffectSummary, root: str, suffix: str
    ) -> None:
        role = (
            f"worker {summary.name!r}"
            if summary.qualname == root
            else f"{summary.name!r}, reachable from worker "
            f"{root.rsplit('.', 1)[-1]!r}"
        )
        for effect in summary.rng:
            self._emit(
                "R102",
                ERROR,
                _location(summary, effect.line),
                f"{role} calls {effect.target}{suffix}; the global RNG is "
                "seeded differently in every worker process, so shard "
                "results are not reproducible",
                hint="thread an explicitly seeded random.Random through "
                "the shard arguments",
            )
        for effect in summary.time:
            self._emit(
                "R102",
                ERROR,
                _location(summary, effect.line),
                f"{role} calls {effect.target}{suffix}; wall-clock values "
                "differ between workers and runs",
                hint="compute timestamps in the parent and pass them in",
            )
        for effect in summary.env:
            self._emit(
                "R102",
                WARNING,
                _location(summary, effect.line),
                f"{role} reads {effect.target}{suffix}; the environment "
                "can differ between the parent and spawned workers",
                hint="resolve environment configuration before sharding",
            )

    # ----------------------------------------------------------------- R103

    def check_set_iterations(self) -> None:
        for qualname, summary in sorted(self.report.functions.items()):
            for effect in summary.set_iterations:
                self._emit(
                    "R103",
                    ERROR,
                    _location(summary, effect.line),
                    f"{summary.name!r} iterates over a {effect.target} and "
                    f"feeds an order-sensitive sink ({effect.detail}); set "
                    "order varies with PYTHONHASHSEED, so the output order "
                    "does too",
                    hint="iterate over sorted(...) or keep the data in a "
                    "list/dict (insertion-ordered)",
                )

    # ----------------------------------------------------------------- R104

    def check_query_result_mutations(self) -> None:
        for qualname, summary in sorted(self.report.functions.items()):
            if summary.module.startswith(_DOCSTORE_PREFIX):
                continue  # the store owns its documents
            for effect in summary.query_result_mutations:
                detail = f".{effect.detail}()" if effect.detail else "in place"
                self._emit(
                    "R104",
                    ERROR,
                    _location(summary, effect.line),
                    f"{summary.name!r} mutates {effect.target!r} "
                    f"({detail}), a document obtained from a docstore "
                    "read; results are borrowed now that hot paths elide "
                    "deep copies",
                    hint="deep_copy() the document before mutating "
                    "(freeze_documents catches this at runtime in tests)",
                )

    # ----------------------------------------------------------------- R105

    def check_docstore_private_writes(self) -> None:
        for qualname, summary in sorted(self.report.functions.items()):
            if summary.module.startswith(_DOCSTORE_PREFIX):
                continue
            for effect in summary.docstore_private_writes:
                self._emit(
                    "R105",
                    ERROR,
                    _location(summary, effect.line),
                    f"{summary.name!r} mutates docstore-private state "
                    f"{effect.target!r} directly; the write bypasses the "
                    "WAL journal, so a crash silently forgets it",
                    hint="go through the Collection API (insert/update/"
                    "replace/delete) so the mutation is journaled",
                )

    # ----------------------------------------------------------------- R106

    def check_module_caches(self) -> None:
        for qualname, summary in sorted(self.report.functions.items()):
            for effect in summary.mutable_defaults:
                self._emit(
                    "R106",
                    ERROR,
                    f"{summary.path}:{effect.line}:{effect.col}",
                    f"{summary.name!r} has a mutable default argument "
                    f"({effect.target}); the single default instance is "
                    "shared by every call in the process",
                    hint="default to None and create the value inside "
                    "the function",
                )
        for module_name, module_effects in sorted(
            self.report.modules.items()
        ):
            for name, (line, label) in sorted(
                module_effects.mutable_globals.items()
            ):
                qualified = f"{module_name}.{name}"
                if qualified in self.exemptions:
                    continue
                toucher = self._find_cache_toucher(qualified)
                if toucher is None:
                    continue
                verb, function_name, touch_line, touch_path = toucher
                self._emit(
                    "R106",
                    ERROR,
                    f"{touch_path}:{touch_line}:0",
                    f"module-level mutable {label} {qualified!r} is "
                    f"{verb} by {function_name!r} without a registered "
                    "discipline; unbounded or cross-worker shared caches "
                    "silently break determinism and memory bounds",
                    hint="register it in repro.analysis.concurrency."
                    "PROCESS_LOCAL_CACHES with its invariant, or make "
                    "the state local",
                )

    def _find_cache_toucher(
        self, qualified: str
    ) -> Optional[Tuple[str, str, int, str]]:
        """The first function that mutates or aliases ``qualified``."""
        for qualname, summary in sorted(self.report.functions.items()):
            if qualified in summary.mutates_globals:
                return (
                    "mutated",
                    summary.name,
                    summary.mutates_globals[qualified],
                    summary.path,
                )
            if qualified in summary.writes_globals:
                return (
                    "rebound",
                    summary.name,
                    summary.writes_globals[qualified],
                    summary.path,
                )
            if qualified in summary.aliases_globals:
                return (
                    "aliased",
                    summary.name,
                    summary.aliases_globals[qualified],
                    summary.path,
                )
        return None


def _apply_suppressions(
    findings: List[Diagnostic],
    suppressions: Dict[str, Dict[int, Suppression]],
) -> Tuple[List[Diagnostic], List[Diagnostic], List[Diagnostic]]:
    active: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    for diagnostic in findings:
        path, _, rest = diagnostic.path.partition(":")
        line_text = rest.split(":")[0] if rest else "0"
        line = int(line_text) if line_text.isdigit() else 0
        suppression = suppressions.get(path, {}).get(line)
        if suppression is not None and diagnostic.code in suppression.codes:
            suppression.used = True
            suppressed.append(diagnostic)
        else:
            active.append(diagnostic)
    unused: List[Diagnostic] = []
    for path in sorted(suppressions):
        for line in sorted(suppressions[path]):
            suppression = suppressions[path][line]
            if not any(code in R_CODES for code in suppression.codes):
                # Another tool's jurisdiction (e.g. the plain linter's
                # L-codes); that tool polices staleness for its codes.
                continue
            if not suppression.used:
                unused.append(
                    Diagnostic(
                        "R100",
                        ERROR,
                        f"{path}:{line}:0",
                        "suppression "
                        f"`# repro: ignore[{','.join(suppression.codes)}]` "
                        "matches no finding",
                        hint="delete the stale comment (the analyzer no "
                        "longer flags this line)",
                    )
                )
    return active, suppressed, unused


def _sort_key(diagnostic: Diagnostic) -> Tuple[str, int, str]:
    path, _, rest = diagnostic.path.partition(":")
    line_text = rest.split(":")[0] if rest else "0"
    line = int(line_text) if line_text.isdigit() else 0
    return (path, line, diagnostic.code)


def analyze_concurrency_sources(
    sources: Sequence[Tuple[str, Path, Optional[str]]],
    exemptions: Optional[Dict[str, str]] = None,
) -> ConcurrencyReport:
    """Run every R-code check over ``(source, path, module)`` triples."""
    effects = analyze_effects_sources(sources)
    analyzer = _Analyzer(effects, exemptions)
    analyzer.check_workers()
    analyzer.check_set_iterations()
    analyzer.check_query_result_mutations()
    analyzer.check_docstore_private_writes()
    analyzer.check_module_caches()
    findings = sorted(analyzer.findings, key=_sort_key)
    suppressions = _collect_suppressions(sources)
    active, suppressed, unused = _apply_suppressions(findings, suppressions)
    return ConcurrencyReport(
        findings=active,
        suppressed=suppressed,
        unused_suppressions=unused,
        effects=effects,
    )


def analyze_concurrency(
    paths: Sequence[Path],
    exemptions: Optional[Dict[str, str]] = None,
) -> ConcurrencyReport:
    """Run every R-code check over the ``*.py`` files under ``paths``."""
    sources: List[Tuple[str, Path, Optional[str]]] = []
    for path in _python_files(paths):
        sources.append((path.read_text(encoding="utf-8"), path, None))
    return analyze_concurrency_sources(sources, exemptions)


def _python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def write_json_report(report: ConcurrencyReport, out: Path) -> None:
    """Write the machine-readable findings report (the CI artifact)."""
    out.write_text(
        json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
