"""Per-function effect inference over a call graph of this package.

The correctness story of the parallel paths ("any worker and shard count
produces bit-identical results", see :mod:`repro.core.parallel` and
:mod:`repro.dedup.pipeline`) only holds while everything that runs inside a
worker stays *pure and deterministic*.  This module computes the static
evidence for that claim: for every function and method in the analyzed
modules, an :class:`EffectSummary` recording

* **global effects** — module-level names the function reads, rebinds
  (``global`` statement), mutates in place (``CACHE[k] = v``,
  ``CACHE.update(...)``) or *aliases* (stores or passes the object so
  mutation escapes the analysis);
* **parameter and closure mutation** — in-place mutation of the function's
  own parameters or of an enclosing function's locals;
* **nondeterminism sources** — calls into the global :mod:`random` /
  :mod:`secrets` / :mod:`uuid` RNGs, value-producing :mod:`time` calls,
  ``os.urandom``, ``os.environ`` reads;
* **unordered iteration** — ``for`` loops over ``set`` / ``frozenset``
  values whose bodies feed an order-sensitive sink (list append, yield,
  file/journal write);
* **I/O** — direct ``open`` calls;
* **borrowed-document mutation** — in-place mutation of documents obtained
  from ``Collection.find`` / ``find_one`` / ``aggregate`` / ``all``;
* **docstore-private mutation** — writes to another object's
  ``_documents`` / ``_by_user_id`` / ``_indexes`` / ``_journal`` state;
* the **calls** the function makes, resolved across the analyzed modules.

:func:`analyze_effects` parses the modules, builds the summaries and runs a
fixpoint so *transitive* facts (which of a function's own parameters end up
mutated somewhere down the call chain) are available to clients.  The
analysis is deliberately conservative and purely syntactic: it never
imports or executes the analyzed code, and identical source always produces
identical summaries (property-tested in
``tests/analysis/test_effects.py``).  The concurrency linter
(:mod:`repro.analysis.concurrency`) turns these summaries into the
R-code diagnostics documented in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Names of every Python builtin — references to these are never globals.
_BUILTIN_NAMES = frozenset(dir(builtins))

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "put",  # repro.textsim.cache.LRUCache
        "difference_update",
        "intersection_update",
        "symmetric_difference_update",
    }
)

#: Mutating methods that *cannot* make iteration order observable: adding to
#: a set inside a set-iteration loop still yields an unordered set.
_ORDER_INSENSITIVE_METHODS = frozenset(
    {"add", "discard", "remove", "clear", "update", "put"}
)

#: Constructor calls whose result is a mutable container (for global-state
#: and default-argument classification).
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "OrderedDict",
        "defaultdict",
        "Counter",
        "deque",
        "LRUCache",
    }
)

#: Value-producing :mod:`time` functions (``sleep`` only delays, it cannot
#: change a result).
_TIME_SOURCES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
        "strftime",
    }
)

#: Collection read methods whose results are *borrowed*: callers must not
#: mutate them in place (deep copies are elided on hot paths, and the
#: ``freeze_documents`` sanitizer poisons them in dev mode).
QUERY_RESULT_METHODS = frozenset({"find", "find_one", "aggregate", "all"})

#: Private docstore state that only :mod:`repro.docstore` itself — through
#: the WAL journal — may touch.
DOCSTORE_PRIVATE_ATTRS = frozenset(
    {"_documents", "_by_user_id", "_indexes", "_journal", "_wals", "_staged"}
)


@dataclasses.dataclass(frozen=True)
class Effect:
    """One observed effect: what happened, to what, and where."""

    #: Effect kind, e.g. ``"rng"``, ``"global-write"``, ``"set-iteration"``.
    kind: str
    #: The affected name — a qualified global, a parameter, a call target.
    target: str
    #: 1-based source line inside the module.
    line: int
    #: Column offset of the offending node.
    col: int = 0
    #: Extra context (the sink of a set iteration, the mutated method, …).
    detail: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class EffectSummary:
    """Direct (intraprocedural) effects of one function or method."""

    #: Fully qualified name, e.g. ``repro.core.parallel._score_shard`` or
    #: ``repro.dedup.matching.RecordMatcher.prepare``.
    qualname: str
    module: str
    name: str
    line: int
    path: str
    #: Positional parameter names in order (``self``/``cls`` included).
    params: Tuple[str, ...] = ()
    reads_globals: Dict[str, int] = dataclasses.field(default_factory=dict)
    writes_globals: Dict[str, int] = dataclasses.field(default_factory=dict)
    mutates_globals: Dict[str, int] = dataclasses.field(default_factory=dict)
    aliases_globals: Dict[str, int] = dataclasses.field(default_factory=dict)
    mutates_params: Dict[str, int] = dataclasses.field(default_factory=dict)
    mutates_closure: Dict[str, int] = dataclasses.field(default_factory=dict)
    rng: List[Effect] = dataclasses.field(default_factory=list)
    time: List[Effect] = dataclasses.field(default_factory=list)
    env: List[Effect] = dataclasses.field(default_factory=list)
    io: List[Effect] = dataclasses.field(default_factory=list)
    set_iterations: List[Effect] = dataclasses.field(default_factory=list)
    mutable_defaults: List[Effect] = dataclasses.field(default_factory=list)
    query_result_mutations: List[Effect] = dataclasses.field(default_factory=list)
    docstore_private_writes: List[Effect] = dataclasses.field(default_factory=list)
    #: Resolved callee qualname -> (line, positional arg names, keyword map).
    calls: List["CallSite"] = dataclasses.field(default_factory=list)
    #: Parameters that end up mutated through any call chain (fixpoint).
    transitive_param_mutations: Dict[str, int] = dataclasses.field(
        default_factory=dict
    )

    @property
    def is_impure(self) -> bool:
        """Whether the function has any direct effect beyond its locals."""
        return bool(
            self.writes_globals
            or self.mutates_globals
            or self.mutates_params
            or self.mutates_closure
            or self.rng
            or self.time
            or self.env
            or self.io
        )

    def to_dict(self) -> dict:
        """JSON-serializable form with deterministic ordering."""
        return {
            "qualname": self.qualname,
            "module": self.module,
            "line": self.line,
            "params": list(self.params),
            "reads_globals": dict(sorted(self.reads_globals.items())),
            "writes_globals": dict(sorted(self.writes_globals.items())),
            "mutates_globals": dict(sorted(self.mutates_globals.items())),
            "aliases_globals": dict(sorted(self.aliases_globals.items())),
            "mutates_params": dict(sorted(self.mutates_params.items())),
            "mutates_closure": dict(sorted(self.mutates_closure.items())),
            "transitive_param_mutations": dict(
                sorted(self.transitive_param_mutations.items())
            ),
            "rng": [e.to_dict() for e in self.rng],
            "time": [e.to_dict() for e in self.time],
            "env": [e.to_dict() for e in self.env],
            "io": [e.to_dict() for e in self.io],
            "set_iterations": [e.to_dict() for e in self.set_iterations],
            "mutable_defaults": [e.to_dict() for e in self.mutable_defaults],
            "query_result_mutations": [
                e.to_dict() for e in self.query_result_mutations
            ],
            "docstore_private_writes": [
                e.to_dict() for e in self.docstore_private_writes
            ],
            "calls": [c.to_dict() for c in self.calls],
        }


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call made by a function, with enough shape to map arguments."""

    #: Resolved callee qualname, or the raw dotted name when unresolved.
    callee: str
    line: int
    #: Whether ``callee`` resolved to a function in the analyzed modules.
    resolved: bool
    #: Local variable names passed positionally (``None`` for expressions).
    positional: Tuple[Optional[str], ...] = ()
    #: Keyword name -> local variable name (expressions omitted).
    keywords: Tuple[Tuple[str, str], ...] = ()
    #: ``(arg_slot, qualified_global)`` for mutable module-global arguments.
    global_args: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> dict:
        return {
            "callee": self.callee,
            "line": self.line,
            "resolved": self.resolved,
            "positional": list(self.positional),
            "keywords": dict(self.keywords),
            "global_args": dict(self.global_args),
        }


@dataclasses.dataclass
class ModuleEffects:
    """Everything the analysis learned about one module."""

    module: str
    path: str
    #: Module-level mutable containers: name -> (line, constructor label).
    mutable_globals: Dict[str, Tuple[int, str]]
    #: All module-level names (functions, classes, constants, imports).
    global_names: Set[str]
    #: Import alias -> fully qualified target.
    imports: Dict[str, str]
    functions: Dict[str, EffectSummary]


@dataclasses.dataclass
class EffectReport:
    """The cross-module result of :func:`analyze_effects`."""

    modules: Dict[str, ModuleEffects]
    #: Every function summary keyed by qualname.
    functions: Dict[str, EffectSummary]

    def summary(self, qualname: str) -> Optional[EffectSummary]:
        return self.functions.get(qualname)

    def reachable(self, roots: Iterable[str]) -> Dict[str, List[str]]:
        """BFS over the call graph: qualname -> call chain from a root.

        The chain starts at the root and ends at the function itself; each
        function keeps the first (shortest, deterministic) chain found.
        """
        chains: Dict[str, List[str]] = {}
        frontier: List[str] = []
        for root in roots:
            if root in self.functions and root not in chains:
                chains[root] = [root]
                frontier.append(root)
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                summary = self.functions[qualname]
                for call in summary.calls:
                    if not call.resolved or call.callee in chains:
                        continue
                    chains[call.callee] = chains[qualname] + [call.callee]
                    next_frontier.append(call.callee)
            frontier = next_frontier
        return chains


# --------------------------------------------------------------- module scan


def _module_name(path: Path) -> str:
    """Dotted module name of ``path``, walking up through packages."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


class _ScopeInfo:
    """Name classification context for one function scope."""

    def __init__(
        self,
        params: Tuple[str, ...],
        local_names: Set[str],
        global_declared: Set[str],
        nonlocal_declared: Set[str],
        enclosing_locals: Set[str],
    ) -> None:
        self.params = set(params)
        self.local_names = local_names
        self.global_declared = global_declared
        self.nonlocal_declared = nonlocal_declared
        self.enclosing_locals = enclosing_locals


def _collect_assigned_names(node: ast.AST) -> Set[str]:
    """Every name bound inside a function body (making it a local).

    Nested function/class bodies are excluded — their bindings live in their
    own scope — but their *names* are locals of this scope.
    """
    assigned: Set[str] = set()

    class Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, inner: ast.FunctionDef) -> None:
            assigned.add(inner.name)

        def visit_AsyncFunctionDef(self, inner: ast.AsyncFunctionDef) -> None:
            assigned.add(inner.name)

        def visit_ClassDef(self, inner: ast.ClassDef) -> None:
            assigned.add(inner.name)

        def visit_Lambda(self, inner: ast.Lambda) -> None:
            pass  # separate scope, binds nothing here

        def visit_Name(self, name: ast.Name) -> None:
            if isinstance(name.ctx, (ast.Store, ast.Del)):
                assigned.add(name.id)

        def visit_alias(self, node_alias: ast.alias) -> None:
            target = node_alias.asname or node_alias.name.split(".")[0]
            assigned.add(target)

        def visit_ExceptHandler(self, handler: ast.ExceptHandler) -> None:
            if handler.name:
                assigned.add(handler.name)
            self.generic_visit(handler)

    collector = Collector()
    for child in ast.iter_child_nodes(node):
        collector.visit(child)
    return assigned


def _collect_declared(node: ast.AST, kind: type) -> Set[str]:
    declared: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, kind):
            declared.update(child.names)
    return declared


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_set_expression(node: ast.AST, set_locals: Set[str]) -> Optional[str]:
    """A label when ``node`` provably evaluates to a set, else ``None``."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return f"{node.func.id}()"
    if isinstance(node, ast.Name) and node.id in set_locals:
        return f"set-typed local {node.id!r}"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        left = _is_set_expression(node.left, set_locals)
        right = _is_set_expression(node.right, set_locals)
        if left or right:
            return left or right
    return None


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in {"set", "frozenset", "Set", "FrozenSet"}
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in {"Set", "FrozenSet"}
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
        return text.startswith(("set", "Set", "frozenset", "FrozenSet"))
    return False


class _FunctionVisitor(ast.NodeVisitor):
    """Collects the direct effects of one function body."""

    def __init__(
        self,
        summary: EffectSummary,
        scope: _ScopeInfo,
        module_info: "_ModuleContext",
    ) -> None:
        self.summary = summary
        self.scope = scope
        self.ctx = module_info
        #: Locals known to hold a set value.
        self.set_locals: Set[str] = set()
        #: Locals known to hold a list value (order-sensitive sink targets).
        self.list_locals: Set[str] = set()
        #: Locals bound from Collection read results (borrowed lists/docs).
        self.result_lists: Set[str] = set()
        self.result_docs: Set[str] = set()

    # ----------------------------------------------------- name classification

    def _classify(self, name: str) -> str:
        """``"local"`` / ``"param"`` / ``"global"`` / ``"closure"`` / ``"other"``."""
        if name in self.scope.global_declared:
            return "global"
        if name in self.scope.nonlocal_declared:
            return "closure"
        if name in self.scope.params:
            return "param"
        if name in self.scope.local_names:
            return "local"
        if name in self.scope.enclosing_locals:
            return "closure"
        if name in self.ctx.global_names:
            return "global"
        if name in _BUILTIN_NAMES:
            return "other"
        return "other"

    def _qualify_global(self, name: str) -> str:
        return f"{self.ctx.module}.{name}"

    def _note_global_read(self, name: str, node: ast.AST) -> None:
        self.summary.reads_globals.setdefault(
            self._qualify_global(name), node.lineno
        )

    # ------------------------------------------------------------- statements

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions get their own summary

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # too small to carry effects worth tracking

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.summary.writes_globals.setdefault(
                self._qualify_global(name), node.lineno
            )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        for name in node.names:
            self.summary.mutates_closure.setdefault(name, node.lineno)

    def _handle_mutation_target(self, target: ast.AST, line: int) -> None:
        """An assignment/delete through a subscript or attribute: in-place
        mutation of whatever object the base name holds."""
        base = _root_name(target)
        if base is None:
            return
        # Docstore-private state reached through an attribute chain
        # (``collection._documents[...] = ...``) is tracked separately.
        node: ast.AST = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in DOCSTORE_PRIVATE_ATTRS
                and not (
                    isinstance(node.value, ast.Name) and node.value.id == "self"
                )
            ):
                self.summary.docstore_private_writes.append(
                    Effect("docstore-private", node.attr, line)
                )
                break
            node = node.value
        kind = self._classify(base)
        if kind == "param":
            self.summary.mutates_params.setdefault(base, line)
        elif kind == "global":
            self.summary.mutates_globals.setdefault(
                self._qualify_global(base), line
            )
        elif kind == "closure":
            self.summary.mutates_closure.setdefault(base, line)
        if base in self.result_docs or base in self.result_lists:
            self.summary.query_result_mutations.append(
                Effect("query-result-mutation", base, line)
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._handle_mutation_target(target, node.lineno)
                self._note_value_alias(node.value, node.lineno)
            elif isinstance(target, ast.Name):
                self._track_local_binding(target.id, node.value, node.lineno)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, (ast.Subscript, ast.Attribute)):
                        self._handle_mutation_target(element, node.lineno)
        self.generic_visit(node)

    def _note_value_alias(self, value: ast.AST, line: int) -> None:
        """Storing a mutable global onto an attribute/subscript lets later
        mutation escape the analysis: ``self._cache = _SHARED_CACHE``."""
        if isinstance(value, ast.Name) and self._classify(value.id) == "global":
            qualified = self._qualify_global(value.id)
            if qualified in self.ctx.mutable_global_names:
                self.summary.aliases_globals.setdefault(qualified, line)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            self._handle_mutation_target(node.target, node.lineno)
        elif isinstance(node.target, ast.Name):
            kind = self._classify(node.target.id)
            # ``x += [...]`` mutates lists in place; conservatively treat any
            # augmented assignment to a non-local as a write.
            if kind == "global":
                self.summary.writes_globals.setdefault(
                    self._qualify_global(node.target.id), node.lineno
                )
            elif kind == "closure":
                self.summary.mutates_closure.setdefault(
                    node.target.id, node.lineno
                )
            elif kind == "param":
                self.summary.mutates_params.setdefault(
                    node.target.id, node.lineno
                )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            self._handle_mutation_target(node.target, node.lineno)
        elif isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation):
                self.set_locals.add(node.target.id)
            if node.value is not None:
                self._track_local_binding(
                    node.target.id, node.value, node.lineno
                )
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._handle_mutation_target(target, node.lineno)
        self.generic_visit(node)

    def _track_local_binding(
        self, name: str, value: ast.AST, line: int
    ) -> None:
        """Type-shape bookkeeping for locals (sets, lists, query results)."""
        if self._classify(name) != "local":
            return
        if _is_set_expression(value, self.set_locals):
            self.set_locals.add(name)
        elif isinstance(value, (ast.List, ast.ListComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "list"
        ):
            self.list_locals.add(name)
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            if value.func.attr in QUERY_RESULT_METHODS:
                if value.func.attr == "find_one":
                    self.result_docs.add(name)
                else:
                    self.result_lists.add(name)
        elif isinstance(value, ast.Subscript):
            base = _root_name(value)
            if base in self.result_lists:
                self.result_docs.add(name)

    # ------------------------------------------------------------------ loops

    def visit_For(self, node: ast.For) -> None:
        iter_label = _is_set_expression(node.iter, self.set_locals)
        if iter_label is not None:
            sink = self._find_order_sensitive_sink(node.body)
            if sink is not None:
                self.summary.set_iterations.append(
                    Effect(
                        "set-iteration",
                        iter_label,
                        node.lineno,
                        node.col_offset,
                        detail=sink,
                    )
                )
        # Loop targets bound from query-result lists are borrowed documents.
        if isinstance(node.target, ast.Name):
            base = _root_name(node.iter)
            if base in self.result_lists or (
                isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Attribute)
                and node.iter.func.attr in QUERY_RESULT_METHODS
            ):
                self.result_docs.add(node.target.id)
        self.generic_visit(node)

    def _find_order_sensitive_sink(
        self, body: Sequence[ast.stmt]
    ) -> Optional[str]:
        """The first order-sensitive sink fed inside a loop body, if any."""
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return "yield"
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    attr = node.func.attr
                    base = _root_name(node.func.value)
                    if attr in {"append", "extend", "insert"}:
                        if base is None or base not in self.set_locals:
                            return f"list {attr}"
                    elif attr in {"write", "writelines", "log"}:
                        return f".{attr}() call"
                    elif attr in {"insert_one", "insert_many"}:
                        return f"docstore .{attr}()"
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    if node.func.id in {"pack_pair", "print"}:
                        return f"{node.func.id}() emission"
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if node.target.id in self.list_locals:
                        return "list +="
        return None

    # ------------------------------------------------------------------ calls

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        line = node.lineno
        if dotted is not None:
            self._classify_call(dotted, node, line)
        # Receiver mutation: ``x.append(...)`` where x is a param/global/etc.
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in MUTATING_METHODS:
                base = _root_name(node.func.value)
                if base is not None and not self._is_module_alias(base):
                    self._note_receiver_mutation(base, node.func, line)
        self.generic_visit(node)

    def _is_module_alias(self, name: str) -> bool:
        return name in self.ctx.module_aliases

    def _note_receiver_mutation(
        self, base: str, func: ast.Attribute, line: int
    ) -> None:
        attr = func.attr
        # Walk the chain for docstore-private attributes
        # (``db._collections["x"]._documents.clear()``).
        node: ast.AST = func.value
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in DOCSTORE_PRIVATE_ATTRS
                and not (
                    isinstance(node.value, ast.Name) and node.value.id == "self"
                )
            ):
                self.summary.docstore_private_writes.append(
                    Effect("docstore-private", node.attr, line, detail=attr)
                )
                break
            node = node.value
        kind = self._classify(base)
        if kind == "param":
            self.summary.mutates_params.setdefault(base, line)
        elif kind == "global":
            self.summary.mutates_globals.setdefault(
                self._qualify_global(base), line
            )
        elif kind == "closure":
            self.summary.mutates_closure.setdefault(base, line)
        if base in self.result_docs or base in self.result_lists:
            if attr not in {"get", "keys", "values", "items", "count", "index"}:
                self.summary.query_result_mutations.append(
                    Effect("query-result-mutation", base, line, detail=attr)
                )

    def _classify_call(self, dotted: str, node: ast.Call, line: int) -> None:
        head, _, tail = dotted.partition(".")
        resolved_head = self.ctx.imports.get(head)
        # -- nondeterminism sources -----------------------------------------
        if resolved_head == "random" and tail:
            if tail == "Random" and node.args:
                pass  # seeded private RNG: deterministic by construction
            elif tail.startswith("Random."):
                pass  # method on an explicit (seeded) instance expression
            else:
                self.summary.rng.append(Effect("rng", f"random.{tail}", line))
        elif resolved_head in {"secrets", "uuid"} and tail:
            self.summary.rng.append(
                Effect("rng", f"{resolved_head}.{tail}", line)
            )
        elif resolved_head == "numpy.random" and tail:
            self.summary.rng.append(Effect("rng", dotted, line))
        elif resolved_head == "os" and tail == "urandom":
            self.summary.rng.append(Effect("rng", "os.urandom", line))
        elif resolved_head == "time" and tail in _TIME_SOURCES:
            self.summary.time.append(Effect("time", f"time.{tail}", line))
        elif self.ctx.imports.get(dotted) in {
            "random.random",
            "random.randint",
            "random.choice",
            "random.shuffle",
            "random.sample",
            "random.seed",
            "random.randrange",
            "random.uniform",
            "random.getrandbits",
        }:
            self.summary.rng.append(
                Effect("rng", self.ctx.imports[dotted], line)
            )
        elif self.ctx.imports.get(dotted, "").startswith("time.") and (
            self.ctx.imports.get(dotted, "").split(".", 1)[1] in _TIME_SOURCES
        ):
            self.summary.time.append(
                Effect("time", self.ctx.imports[dotted], line)
            )
        elif self.ctx.imports.get(dotted) == "os.urandom":
            self.summary.rng.append(Effect("rng", "os.urandom", line))
        elif dotted == "open":
            self.summary.io.append(Effect("io", "open", line))
        # -- call-graph edge ------------------------------------------------
        callee = self._resolve_callee(dotted)
        positional = tuple(
            argument.id if isinstance(argument, ast.Name) else None
            for argument in node.args
        )
        keywords = tuple(
            (keyword.arg, keyword.value.id)
            for keyword in node.keywords
            if keyword.arg is not None and isinstance(keyword.value, ast.Name)
        )
        self.summary.calls.append(
            CallSite(
                callee=callee if callee else dotted,
                line=line,
                resolved=callee is not None,
                positional=positional,
                keywords=keywords,
                global_args=self._qualify_call_globals(positional, keywords),
            )
        )

    def _qualify_call_globals(
        self,
        positional: Tuple[Optional[str], ...],
        keywords: Tuple[Tuple[str, str], ...],
    ) -> Tuple[Tuple[str, str], ...]:
        """``(arg_slot, qualified_global)`` for module-global arguments.

        ``arg_slot`` is the decimal position for positional arguments or
        the keyword name; only mutable module globals are recorded (the
        fixpoint turns them into global mutations when the callee mutates
        the matching parameter).
        """
        qualified: List[Tuple[str, str]] = []
        for position, argument in enumerate(positional):
            if argument is not None and self._classify(argument) == "global":
                name = self._qualify_global(argument)
                if name in self.ctx.mutable_global_names:
                    qualified.append((str(position), name))
        for keyword, argument in keywords:
            if self._classify(argument) == "global":
                name = self._qualify_global(argument)
                if name in self.ctx.mutable_global_names:
                    qualified.append((keyword, name))
        return tuple(qualified)

    def _resolve_callee(self, dotted: str) -> Optional[str]:
        return self.ctx.resolve(dotted, self.summary.qualname)

    # ------------------------------------------------------------- name reads

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if self._classify(node.id) == "global":
                self._note_global_read(node.id, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # ``os.environ`` in any shape — plain load, ``os.environ[...]``,
        # ``os.environ.get(...)`` — contains this Attribute node exactly once.
        if node.attr == "environ":
            dotted = _dotted_name(node)
            if dotted is not None:
                head = dotted.split(".", 1)[0]
                if self.ctx.imports.get(head) == "os":
                    self.summary.env.append(
                        Effect("env", "os.environ", node.lineno)
                    )
        # Storing a mutable global onto an attribute lets mutation escape:
        # ``self._cache = _SHARED_CACHE``.
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if isinstance(node.value, ast.Name):
            if self._classify(node.value.id) == "global":
                qualified = self._qualify_global(node.value.id)
                if qualified in self.ctx.mutable_global_names:
                    self.summary.aliases_globals.setdefault(
                        qualified, node.lineno
                    )
        self.generic_visit(node)


class _ModuleContext:
    """Shared per-module name information used by the function visitors."""

    def __init__(
        self,
        module: str,
        path: str,
        tree: ast.Module,
    ) -> None:
        self.module = module
        self.path = path
        self.imports: Dict[str, str] = {}
        self.module_aliases: Set[str] = set()
        self.global_names: Set[str] = set()
        self.mutable_globals: Dict[str, Tuple[int, str]] = {}
        self.mutable_global_names: Set[str] = set()
        self._collect_module_scope(tree)
        #: Set by :func:`analyze_effects` once all modules are indexed.
        self.function_index: Dict[str, str] = {}
        self.class_methods: Dict[str, Set[str]] = {}

    def _collect_module_scope(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[bound] = target
                    self.module_aliases.add(bound)
                    self.global_names.add(bound)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
                    self.global_names.add(bound)
                    # ``from repro.textsim import fast`` binds a module.
                    self.module_aliases.add(bound)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.global_names.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.global_names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name) and isinstance(
                            name_node.ctx, ast.Store
                        ):
                            self.global_names.add(name_node.id)
                            self._classify_global_value(
                                name_node.id, node.value, node.lineno
                            )
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.global_names.add(node.target.id)
                if node.value is not None:
                    self._classify_global_value(
                        node.target.id, node.value, node.lineno
                    )
            elif isinstance(node, (ast.For, ast.While, ast.If, ast.Try)):
                for child in ast.walk(node):
                    if isinstance(child, ast.Name) and isinstance(
                        child.ctx, ast.Store
                    ):
                        self.global_names.add(child.id)

    def _classify_global_value(
        self, name: str, value: ast.AST, line: int
    ) -> None:
        label: Optional[str] = None
        if isinstance(value, (ast.List, ast.ListComp)):
            label = "list"
        elif isinstance(value, (ast.Dict, ast.DictComp)):
            label = "dict"
        elif isinstance(value, (ast.Set, ast.SetComp)):
            label = "set"
        elif isinstance(value, ast.Call):
            callee = _dotted_name(value.func)
            if callee is not None:
                tail = callee.split(".")[-1]
                if tail in MUTABLE_CONSTRUCTORS:
                    label = tail
        if label is not None:
            self.mutable_globals[name] = (line, label)
            self.mutable_global_names.add(f"{self.module}.{name}")

    def resolve(self, dotted: str, caller_qualname: str) -> Optional[str]:
        """Resolve a called dotted name to an analyzed function qualname."""
        head, _, tail = dotted.partition(".")
        if head == "self" and tail:
            # Method call on the enclosing class.
            method = tail.split(".")[0]
            for class_name, methods in self.class_methods.items():
                prefix = f"{self.module}.{class_name}."
                if caller_qualname.startswith(prefix) and method in methods:
                    return prefix + method
            return None
        if not tail:
            # Plain name: local function or from-import of a function.
            candidate = f"{self.module}.{head}"
            if candidate in self.function_index:
                return candidate
            imported = self.imports.get(head)
            if imported is not None and imported in self.function_index:
                return imported
            return None
        # Dotted: module alias + attribute (possibly nested).
        imported = self.imports.get(head)
        if imported is not None:
            candidate = f"{imported}.{tail}"
            if candidate in self.function_index:
                return candidate
        candidate = f"{self.module}.{dotted}"
        if candidate in self.function_index:
            return candidate
        return None


def _iter_functions(
    tree: ast.Module,
) -> Iterable[Tuple[str, ast.AST, Set[str]]]:
    """Yield ``(qualname_suffix, node, enclosing_locals)`` for every
    function, method and nested function of a module."""

    def walk(
        body: Sequence[ast.stmt], prefix: str, enclosing: Set[str]
    ) -> Iterable[Tuple[str, ast.AST, Set[str]]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}" if prefix else node.name
                yield qualname, node, set(enclosing)
                inner_locals = enclosing | _collect_assigned_names(node)
                inner_locals.update(_param_names(node.args))
                yield from walk(node.body, f"{qualname}.", inner_locals)
            elif isinstance(node, ast.ClassDef):
                class_prefix = (
                    f"{prefix}{node.name}." if prefix else f"{node.name}."
                )
                yield from walk(node.body, class_prefix, enclosing)

    return walk(tree.body, "", set())


def _param_names(args: ast.arguments) -> Tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _check_mutable_defaults(
    node: ast.AST, summary: EffectSummary
) -> None:
    args = node.args  # type: ignore[attr-defined]
    defaults = list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]
    for default in defaults:
        label: Optional[str] = None
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            label = type(default).__name__.lower()
        elif isinstance(default, ast.Call):
            callee = _dotted_name(default.func)
            if callee is not None and callee.split(".")[-1] in MUTABLE_CONSTRUCTORS:
                label = callee
        if label is not None:
            summary.mutable_defaults.append(
                Effect("mutable-default", label, default.lineno, default.col_offset)
            )


# ----------------------------------------------------------------- fixpoint


def _propagate_param_mutations(functions: Dict[str, EffectSummary]) -> None:
    """Fixpoint: a parameter is (transitively) mutated when the function
    mutates it directly, or passes it to a call position whose callee
    parameter is itself transitively mutated."""
    for summary in functions.values():
        summary.transitive_param_mutations = dict(summary.mutates_params)
    changed = True
    while changed:
        changed = False
        for summary in functions.values():
            for call in summary.calls:
                callee = functions.get(call.callee)
                if callee is None:
                    continue
                callee_params = callee.params
                mutated = callee.transitive_param_mutations
                for position, argument in enumerate(call.positional):
                    if argument is None or argument not in summary.params:
                        continue
                    if position < len(callee_params) and (
                        callee_params[position] in mutated
                    ):
                        if argument not in summary.transitive_param_mutations:
                            summary.transitive_param_mutations[argument] = (
                                call.line
                            )
                            changed = True
                for keyword, argument in call.keywords:
                    if argument not in summary.params:
                        continue
                    if keyword in mutated:
                        if argument not in summary.transitive_param_mutations:
                            summary.transitive_param_mutations[argument] = (
                                call.line
                            )
                            changed = True


def _propagate_global_mutations(functions: Dict[str, EffectSummary]) -> None:
    """A mutable global passed to a callee that mutates the matching
    parameter is a mutation of the global — attribute the effect to the
    caller (runs after the parameter fixpoint, which it depends on)."""
    for summary in functions.values():
        for call in summary.calls:
            if not call.global_args:
                continue
            callee = functions.get(call.callee)
            if callee is None:
                continue
            mutated = callee.transitive_param_mutations
            for slot, qualified in call.global_args:
                if slot.isdigit():
                    position = int(slot)
                    if position >= len(callee.params):
                        continue
                    parameter = callee.params[position]
                else:
                    parameter = slot
                if parameter in mutated:
                    summary.mutates_globals.setdefault(qualified, call.line)


# -------------------------------------------------------------- entry point


def analyze_module_source(
    source: str, path: Path, module: Optional[str] = None
) -> ModuleEffects:
    """Effect summaries for one module given as source text.

    Call-graph edges to *other* modules stay unresolved; use
    :func:`analyze_effects` for whole-package analysis.
    """
    report = analyze_effects_sources([(source, path, module)])
    return next(iter(report.modules.values()))


def analyze_effects(paths: Sequence[Path]) -> EffectReport:
    """Analyze every ``*.py`` file under ``paths`` (files or directories)."""
    sources: List[Tuple[str, Path, Optional[str]]] = []
    for path in _python_files(paths):
        sources.append((path.read_text(encoding="utf-8"), path, None))
    return analyze_effects_sources(sources)


def analyze_effects_sources(
    sources: Sequence[Tuple[str, Path, Optional[str]]],
) -> EffectReport:
    """Analyze ``(source, path, module_name)`` triples as one code base."""
    contexts: List[Tuple[_ModuleContext, ast.Module]] = []
    for source, path, module in sources:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue  # the plain linter reports syntax errors (L000)
        name = module or _module_name(Path(path))
        contexts.append((_ModuleContext(name, str(path), tree), tree))

    # First pass: index every function qualname so calls resolve globally.
    function_index: Dict[str, str] = {}
    class_methods_by_module: Dict[str, Dict[str, Set[str]]] = {}
    pending: List[Tuple[_ModuleContext, str, ast.AST, Set[str]]] = []
    for context, tree in contexts:
        class_methods: Dict[str, Set[str]] = {}
        for suffix, node, enclosing in _iter_functions(tree):
            qualname = f"{context.module}.{suffix}"
            function_index[qualname] = context.module
            parts = suffix.split(".")
            if len(parts) == 2:  # Class.method
                class_methods.setdefault(parts[0], set()).add(parts[1])
            pending.append((context, suffix, node, enclosing))
        class_methods_by_module[context.module] = class_methods

    modules: Dict[str, ModuleEffects] = {}
    functions: Dict[str, EffectSummary] = {}
    for context, tree in contexts:
        context.function_index = function_index
        context.class_methods = class_methods_by_module[context.module]
        modules[context.module] = ModuleEffects(
            module=context.module,
            path=context.path,
            mutable_globals=dict(context.mutable_globals),
            global_names=set(context.global_names),
            imports=dict(context.imports),
            functions={},
        )

    for context, suffix, node, enclosing in pending:
        qualname = f"{context.module}.{suffix}"
        params = _param_names(node.args)  # type: ignore[attr-defined]
        summary = EffectSummary(
            qualname=qualname,
            module=context.module,
            name=suffix.split(".")[-1],
            line=node.lineno,  # type: ignore[attr-defined]
            path=context.path,
            params=params,
        )
        scope = _ScopeInfo(
            params=params,
            local_names=_collect_assigned_names(node),
            global_declared=_collect_declared(node, ast.Global),
            nonlocal_declared=_collect_declared(node, ast.Nonlocal),
            enclosing_locals=enclosing,
        )
        _check_mutable_defaults(node, summary)
        visitor = _FunctionVisitor(summary, scope, context)
        for statement in node.body:  # type: ignore[attr-defined]
            visitor.visit(statement)
        functions[qualname] = summary
        modules[context.module].functions[suffix] = summary

    _propagate_param_mutations(functions)
    _propagate_global_mutations(functions)
    return EffectReport(modules=modules, functions=functions)
