"""Company-domain plausibility — the deliberately domain-specific piece.

Section 6.2: plausibility scoring "heavily depends on the domain of the
data, since we should only use attributes that are less volatile and are
either very identifying or discriminating".  For the company register the
stable, identifying attributes are:

* the company name (weight 0.5) — compared with the Generalized Jaccard
  coefficient over name tokens with the extended Damerau-Levenshtein token
  similarity, exactly like voter names;
* the founding year (weight 0.2) — a tolerance of one year, hard zero at a
  ten-year difference (the voters' year-of-birth formula);
* the industry code (weight 0.15) — companies rarely change industries;
  missing codes are neutral;
* the state (weight 0.15) — companies rarely re-register across states.

Legal form, address and officers are volatile (conversions, moves,
officer changes) and deliberately excluded.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.clusters import record_view
from repro.core.plausibility import year_of_birth_similarity
from repro.textsim.generalized_jaccard import generalized_jaccard
from repro.textsim.levenshtein import extended_damerau_levenshtein_similarity

WEIGHTS = {"name": 0.5, "founding_year": 0.2, "industry": 0.15, "state": 0.15}


def _name_similarity(left: Dict[str, str], right: Dict[str, str]) -> float:
    name_left = (left.get("company_name") or "").strip()
    name_right = (right.get("company_name") or "").strip()
    if not name_left or not name_right:
        return 1.0
    return generalized_jaccard(
        name_left,
        name_right,
        token_similarity=extended_damerau_levenshtein_similarity,
        threshold=0.0,
    )


def _founding_year(record: Dict[str, str]) -> Optional[int]:
    raw = (record.get("founding_year") or "").strip()
    try:
        return int(raw)
    except ValueError:
        return None


def _categorical_similarity(left: Dict[str, str], right: Dict[str, str], attribute: str) -> float:
    value_left = (left.get(attribute) or "").strip().upper()
    value_right = (right.get(attribute) or "").strip().upper()
    if not value_left or not value_right:
        return 1.0
    return 1.0 if value_left == value_right else 0.0


def company_pair_plausibility(left: Dict[str, str], right: Dict[str, str]) -> float:
    """Weighted plausibility of a company record pair (flat records)."""
    scores = {
        "name": _name_similarity(left, right),
        "founding_year": year_of_birth_similarity(
            _founding_year(left), _founding_year(right)
        ),
        "industry": _categorical_similarity(left, right, "industry_code"),
        "state": _categorical_similarity(left, right, "state"),
    }
    total_weight = sum(WEIGHTS.values())
    return sum(WEIGHTS[key] * scores[key] for key in scores) / total_weight


def score_company_cluster(
    cluster: dict, version: Optional[int] = None
) -> Dict[int, Dict[int, float]]:
    """Version-similarity maps ``{j: {i: score}}`` for a company cluster.

    Drop-in ``plausibility_fn`` for
    :class:`~repro.core.versioning.UpdateProcess`.
    """
    records = cluster["records"]
    flats = [record_view(record, ("company",)) for record in records]
    maps: Dict[int, Dict[int, float]] = {}
    for j in range(1, len(records)):
        if version is not None and records[j]["first_version"] != version:
            continue
        row: Dict[int, float] = {}
        for i in range(j):
            row[i] = company_pair_plausibility(flats[i], flats[j])
        maps[j] = row
    return maps


def company_cluster_plausibility(cluster: dict) -> float:
    """Minimum pair plausibility of a company cluster (1.0 for singletons)."""
    records = cluster["records"]
    if len(records) < 2:
        return 1.0
    flats = [record_view(record, ("company",)) for record in records]
    minimum = 1.0
    for j in range(1, len(flats)):
        for i in range(j):
            score = company_pair_plausibility(flats[i], flats[j])
            if score < minimum:
                minimum = score
    return minimum
