"""A historical company register: the second domain of the pipeline.

Companies carry a stable registration id (``reg_id``); every published
snapshot contains the register's recorded view of each company.  Like the
voter register, recorded values are transcribed once per filing and persist
until the next filing, so snapshots overlap heavily (exact duplicates) and
errors are organic and persistent.  Life-cycle events create outdated
values: renames, legal-form conversions, relocations, officer changes,
dissolutions — and rare registration-id reuse creates unsound clusters.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterator, List, Optional, Set

from repro.core.profile import SchemaProfile
from repro.pollute.corruptors import CorruptorSuite
from repro.votersim import names as name_pools
from repro.votersim.geography import COUNTIES, STREET_NAMES
from repro.votersim.snapshots import Snapshot

COMPANY_ATTRIBUTES = (
    "reg_id",
    "company_name",
    "legal_form",
    "industry_code",
    "industry_desc",
    "founding_year",
    "email",
    "phone",
    "website",
)

ADDRESS_ATTRIBUTES = (
    "street",
    "house_no",
    "city",
    "zip",
    "state",
)

OFFICER_ATTRIBUTES = (
    "ceo_name",
    "cfo_name",
    "contact_name",
    "officer_count",
)

META_ATTRIBUTES = (
    "snapshot_dt",
    "registr_dt",
    "dissolution_dt",
    "file_number",
    "status",
)

#: The company register's schema profile — the pipeline's second domain.
COMPANY_PROFILE = SchemaProfile(
    name="company_register",
    id_attribute="reg_id",
    groups={
        "company": COMPANY_ATTRIBUTES,
        "address": ADDRESS_ATTRIBUTES,
        "officers": OFFICER_ATTRIBUTES,
        "meta": META_ATTRIBUTES,
    },
    primary_group="company",
    hash_excluded=("snapshot_dt", "registr_dt", "dissolution_dt"),
)

LEGAL_FORMS = ("LLC", "INC", "CORP", "LP", "PLLC", "CO")

INDUSTRIES = (
    ("23", "CONSTRUCTION"),
    ("31", "MANUFACTURING"),
    ("42", "WHOLESALE TRADE"),
    ("44", "RETAIL TRADE"),
    ("48", "TRANSPORTATION"),
    ("51", "INFORMATION"),
    ("52", "FINANCE AND INSURANCE"),
    ("54", "PROFESSIONAL SERVICES"),
    ("62", "HEALTH CARE"),
    ("72", "ACCOMMODATION AND FOOD"),
)

_NAME_NOUNS = (
    "SUMMIT", "PIEDMONT", "COASTAL", "TRIANGLE", "BLUE RIDGE", "CAROLINA",
    "PINNACLE", "HERITAGE", "LIBERTY", "CRESCENT", "GRANITE", "HARBOR",
    "MERIDIAN", "FRONTIER", "BEACON", "CASCADE", "STERLING", "ATLAS",
)

_NAME_TRADES = (
    "BUILDERS", "LOGISTICS", "FOODS", "TECHNOLOGIES", "CONSULTING",
    "HOLDINGS", "PROPERTIES", "MOTORS", "TEXTILES", "ANALYTICS",
    "PHARMACY", "ROOFING", "PLUMBING", "SOLUTIONS", "PARTNERS",
)


@dataclasses.dataclass
class CompanyRegisterConfig:
    """Knobs of the company register simulation."""

    initial_companies: int = 500
    start_year: int = 2010
    years: int = 8
    snapshots_per_year: int = 1
    new_company_rate: float = 0.08
    rename_rate: float = 0.04
    conversion_rate: float = 0.02  # legal-form change
    move_rate: float = 0.06
    officer_change_rate: float = 0.10
    dissolution_rate: float = 0.03
    id_reuse_rate: float = 0.002
    refiling_rate: float = 0.8  # share of updates entered via a fresh form
    seed: int = 42

    def validate(self) -> None:
        """Raise ValueError when any knob is out of range."""
        if self.initial_companies < 1:
            raise ValueError(
                f"initial_companies must be >= 1, got {self.initial_companies}"
            )
        if self.years < 1:
            raise ValueError(f"years must be >= 1, got {self.years}")
        for name in (
            "new_company_rate", "rename_rate", "conversion_rate", "move_rate",
            "officer_change_rate", "dissolution_rate", "id_reuse_rate",
            "refiling_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclasses.dataclass
class Company:
    """One real-world business behind a registration id."""

    reg_id: str
    person_seq: int
    truth: Dict[str, str]
    recorded: Dict[str, str]
    registr_dt: str
    dissolution_dt: str = ""
    status: str = "ACTIVE"
    file_counter: int = 1


class CompanyRegisterSimulator:
    """Simulates the historical company register.

    The interface mirrors :class:`~repro.votersim.VoterRegisterSimulator`:
    :meth:`run` yields :class:`~repro.votersim.Snapshot` objects that feed
    straight into a :class:`~repro.core.TestDataGenerator` configured with
    :data:`COMPANY_PROFILE`.
    """

    def __init__(self, config: Optional[CompanyRegisterConfig] = None) -> None:
        self.config = config or CompanyRegisterConfig()
        self.config.validate()
        self.rng = random.Random(self.config.seed)
        self.companies: List[Company] = []
        self._persons_per_id: Dict[str, int] = {}
        self._id_counter = 0
        self._reusable_ids: List[str] = []
        self._suite = CorruptorSuite(
            {
                "typo": 3.0,
                "ocr": 0.5,
                "abbreviate": 0.5,
                "missing": 1.5,
                "representation": 2.0,
                "token_transposition": 0.8,
                "case": 1.0,
            }
        )
        self._started = False

    # ------------------------------------------------------------ population

    @property
    def unsound_ids(self) -> Set[str]:
        """Registration ids carried by more than one business."""
        return {
            reg_id for reg_id, count in self._persons_per_id.items() if count > 1
        }

    def _next_id(self) -> str:
        if self._reusable_ids and self.rng.random() < 0.5:
            return self._reusable_ids.pop(0)
        self._id_counter += 1
        return f"C{2000000 + self._id_counter}"

    def _truth(self, year: int) -> Dict[str, str]:
        rng = self.rng
        county_id, county, city, zip_prefix = rng.choice(COUNTIES)
        industry_code, industry_desc = rng.choice(INDUSTRIES)
        noun = rng.choice(_NAME_NOUNS)
        trade = rng.choice(_NAME_TRADES)
        name = f"{noun} {trade}"
        slug = name.lower().replace(" ", "")
        ceo = (
            f"{rng.choice(name_pools.MALE_FIRST_NAMES + name_pools.FEMALE_FIRST_NAMES)} "
            f"{rng.choice(name_pools.LAST_NAMES)}"
        )
        return {
            "company_name": name,
            "legal_form": rng.choice(LEGAL_FORMS),
            "industry_code": industry_code,
            "industry_desc": industry_desc,
            "founding_year": str(year - rng.randrange(0, 40)),
            "email": f"info@{slug}.com",
            "phone": f"{rng.randrange(200, 999)}{rng.randrange(2000000, 9999999)}",
            "website": f"www.{slug}.com",
            "street": rng.choice(STREET_NAMES),
            "house_no": str(rng.randrange(1, 999)),
            "city": city,
            "zip": f"{zip_prefix}{rng.randrange(100):02d}",
            "state": "NC",
            "ceo_name": ceo,
            "cfo_name": ceo if rng.random() < 0.3 else (
                f"{rng.choice(name_pools.FEMALE_FIRST_NAMES + name_pools.MALE_FIRST_NAMES)} "
                f"{rng.choice(name_pools.LAST_NAMES)}"
            ),
            "contact_name": ceo,
            "officer_count": str(rng.randrange(1, 9)),
        }

    def _transcribe(self, truth: Dict[str, str]) -> Dict[str, str]:
        """A fresh manual filing: truth values with transcription errors."""
        return self._suite.corrupt_record(
            truth,
            self.rng,
            ("company_name", "street", "city", "ceo_name", "cfo_name",
             "contact_name", "email", "website"),
            errors_per_record=0.7,
        )

    def _add_company(self, year: int, registration_year: Optional[int] = None) -> Company:
        reg_id = self._next_id()
        person_seq = self._persons_per_id.get(reg_id, 0)
        self._persons_per_id[reg_id] = person_seq + 1
        truth = self._truth(registration_year or year)
        month = self.rng.randrange(1, 13)
        company = Company(
            reg_id=reg_id,
            person_seq=person_seq,
            truth=truth,
            recorded=self._transcribe(truth),
            registr_dt=f"{registration_year or year}-{month:02d}-01",
        )
        self.companies.append(company)
        return company

    def _bootstrap(self) -> None:
        year = self.config.start_year
        for _ in range(self.config.initial_companies):
            self._add_company(year, registration_year=year - 1 - self.rng.randrange(0, 25))
        self._started = True

    # ---------------------------------------------------------------- events

    def _refile(self, company: Company) -> None:
        """An update filing: fresh transcription or clerical copy."""
        if self.rng.random() < self.config.refiling_rate:
            company.recorded = self._transcribe(company.truth)
        else:
            refreshed = dict(company.recorded)
            for attribute in ("company_name", "legal_form", "street", "city",
                              "zip", "ceo_name", "cfo_name", "contact_name"):
                refreshed[attribute] = company.truth[attribute]
            company.recorded = refreshed
        company.file_counter += 1

    def _advance(self, year: int, fraction: float) -> None:
        config = self.config
        rng = self.rng
        active = [c for c in self.companies if c.status == "ACTIVE"]
        for company in active:
            if rng.random() < config.dissolution_rate * fraction:
                company.status = "DISSOLVED"
                company.dissolution_dt = f"{year}-{rng.randrange(1, 13):02d}-01"
                if rng.random() < config.id_reuse_rate:
                    self._reusable_ids.append(company.reg_id)
                continue
            changed = False
            if rng.random() < config.rename_rate * fraction:
                company.truth["company_name"] = (
                    f"{rng.choice(_NAME_NOUNS)} {rng.choice(_NAME_TRADES)}"
                )
                changed = True
            if rng.random() < config.conversion_rate * fraction:
                company.truth["legal_form"] = rng.choice(LEGAL_FORMS)
                changed = True
            if rng.random() < config.move_rate * fraction:
                _county_id, _county, city, zip_prefix = rng.choice(COUNTIES)
                company.truth.update(
                    street=rng.choice(STREET_NAMES),
                    house_no=str(rng.randrange(1, 999)),
                    city=city,
                    zip=f"{zip_prefix}{rng.randrange(100):02d}",
                )
                changed = True
            if rng.random() < config.officer_change_rate * fraction:
                ceo = (
                    f"{rng.choice(name_pools.MALE_FIRST_NAMES + name_pools.FEMALE_FIRST_NAMES)} "
                    f"{rng.choice(name_pools.LAST_NAMES)}"
                )
                company.truth["ceo_name"] = ceo
                company.truth["contact_name"] = ceo
                changed = True
            if changed:
                self._refile(company)
        newcomers = int(round(len(active) * config.new_company_rate * fraction))
        for _ in range(newcomers):
            self._add_company(year)

    # ------------------------------------------------------------- snapshots

    def _emit(self, date: str) -> Snapshot:
        records = []
        for company in self.companies:
            if company.registr_dt[:7] > date[:7]:
                continue
            record = {attribute: "" for attribute in COMPANY_PROFILE.all_attributes}
            record.update(company.recorded)
            record["reg_id"] = company.reg_id
            record["snapshot_dt"] = date
            record["registr_dt"] = company.registr_dt
            record["dissolution_dt"] = company.dissolution_dt
            record["file_number"] = f"{company.reg_id}-{company.file_counter:03d}"
            record["status"] = company.status
            records.append(record)
        return Snapshot(date=date, records=records)

    def run(self) -> Iterator[Snapshot]:
        """Yield every snapshot in chronological order."""
        if not self._started:
            self._bootstrap()
        config = self.config
        for year in range(config.start_year, config.start_year + config.years):
            for slot in range(config.snapshots_per_year):
                month = 1 + (11 * slot) // max(1, config.snapshots_per_year - 1) if (
                    config.snapshots_per_year > 1
                ) else 1
                if year > config.start_year or slot > 0:
                    self._advance(year, 1.0 / config.snapshots_per_year)
                yield self._emit(f"{year}-{month:02d}-15")
