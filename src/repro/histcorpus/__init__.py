"""Historical corpora beyond voter data — the paper's first future-work item.

Section 8: "we intend to generalize the procedure described here and apply
it to historical corpora from other domains.  This will provide the
research community with large-scale test datasets beyond use cases that
revolve around personal data."

This package delivers that generalisation end to end for a second domain:
a historical **company register** (business names, legal forms, addresses,
officers) published as periodic snapshots, with stable registration ids,
renames, relocations, officer changes, dissolutions and occasional id
reuse.  The domain plugs into the unchanged core pipeline through a
:class:`~repro.core.profile.SchemaProfile` plus a domain-specific
plausibility scorer (plausibility is the one deliberately domain-dependent
piece, Section 6.2).
"""

from __future__ import annotations

from repro.histcorpus.companies import (
    COMPANY_PROFILE,
    CompanyRegisterConfig,
    CompanyRegisterSimulator,
)
from repro.histcorpus.plausibility import (
    company_pair_plausibility,
    score_company_cluster,
)

__all__ = [
    "COMPANY_PROFILE",
    "CompanyRegisterConfig",
    "CompanyRegisterSimulator",
    "company_pair_plausibility",
    "score_company_cluster",
]
