"""Write-ahead logging and atomic file writes for the docstore.

The durability layer (see ``docs/durability.md``) keeps one WAL per
collection next to its JSONL snapshot:

* ``<collection>.jsonl``  — full snapshot, rewritten atomically at
  checkpoints;
* ``<collection>.wal``    — operations since the last checkpoint;
* ``COMMITTED``           — the database-wide last committed epoch.

WAL file format
---------------
An 8-byte magic header (:data:`WAL_MAGIC`) followed by records::

    +----------------+----------------+---------------------+
    | length  u32 LE | crc32   u32 LE | payload (length B)  |
    +----------------+----------------+---------------------+

The payload is UTF-8 JSON, one operation per record — ``insert`` /
``replace`` / ``delete`` / ``index`` data operations plus ``commit``
markers carrying the commit epoch.  The CRC32 covers the payload; each
record is appended with a single unbuffered ``write`` so a torn write can
only damage the final record.

Commit protocol: a data operation is *staged* the moment it is appended;
it becomes *committed* only once a ``commit`` marker with epoch ``e`` is
appended (and fsynced) to every collection's WAL **and** the ``COMMITTED``
file has been atomically rewritten to ``e``.  Recovery replays exactly the
operations covered by markers with epoch ``<= e`` and discards the rest,
which is what makes every commit all-or-nothing across collections.

Recovery policy (:func:`read_wal`):

* clean EOF — done;
* record extends past EOF, short length prefix, or a CRC/JSON failure with
  *no* parseable record after it — a torn tail: truncate, report, continue;
* CRC/JSON failure *followed by* a parseable record, or a committed epoch
  that recovery never reached — real corruption:
  :class:`~repro.docstore.errors.StorageCorruptError` with file, offset
  and reason.

All mutations go through the :mod:`repro.faults` filesystem shim, so every
fsync/rename/write in this module is a deterministic fault-injection
point.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Tuple

from repro import faults
from repro.docstore.errors import StorageCorruptError, StorageError

#: Magic bytes identifying (and versioning) a docstore WAL file.
WAL_MAGIC = b"RWAL0001"

#: Bytes of the per-record header: u32 payload length + u32 CRC32.
_RECORD_PREFIX = struct.Struct("<II")

#: Name of the database-wide commit-epoch file.
COMMIT_FILE = "COMMITTED"


def wal_filename(collection: str, partition: int = 0, shards: int = 1) -> str:
    """WAL file name for one partition of a collection.

    Unsharded collections keep the legacy ``<collection>.wal``; sharded
    collections write one ``<collection>@p<i>.wal`` per partition, each
    carrying that partition's operations (with per-collection ``seq``
    numbers for cross-file replay ordering) plus every commit marker.
    """
    if shards <= 1:
        return f"{collection}.wal"
    return f"{collection}@p{partition}.wal"


def split_wal_stem(stem: str) -> Tuple[str, int]:
    """``(collection name, partition index)`` from a WAL file stem.

    The ``@p<digits>`` suffix marks a partition file; anything else is an
    unsharded log for the whole stem.  (A collection whose *name* ends in
    ``@p<digits>`` would be misparsed — collection names are expected not
    to use the reserved suffix.)
    """
    name, sep, suffix = stem.rpartition("@p")
    if sep and suffix.isdigit():
        return name, int(suffix)
    return stem, 0


# ------------------------------------------------------------ atomic writes


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp → fsync → rename → dir fsync.

    Readers never observe a half-written file: they see either the old
    content or the new content, and after the directory fsync the rename
    itself is durable.
    """
    fs = faults.current_fs()
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        handle = fs.open(tmp, "wb", buffering=0)
        try:
            fs.write(handle, data)
            fs.fsync(handle)
        finally:
            handle.close()
        fs.replace(tmp, path)
    except OSError:
        # A *survived* failure (EIO, ENOSPC, ...) must not leak the tmp
        # file; a simulated crash (CrashError, not OSError) leaves it as
        # an orphan for the next open to sweep, exactly like a real death.
        try:
            fs.remove(tmp)
        except OSError:
            pass
        raise
    fs.fsync_dir(path.parent)


def atomic_write_text(path: Path, text: str) -> None:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


# ------------------------------------------------------------- commit epoch


def read_committed_epoch(directory: Path) -> int:
    """The last committed epoch recorded in ``directory`` (0 when none)."""
    path = Path(directory) / COMMIT_FILE
    try:
        text = faults.current_fs().read_text(path)
    except FileNotFoundError:
        return 0
    try:
        return int(json.loads(text)["epoch"])
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise StorageCorruptError(path, f"unreadable commit-epoch file: {exc}")


def write_committed_epoch(directory: Path, epoch: int) -> None:
    """Atomically persist ``epoch`` as the last committed epoch."""
    atomic_write_text(Path(directory) / COMMIT_FILE, json.dumps({"epoch": epoch}))


# ------------------------------------------------------------------- writer


def encode_record(payload: bytes) -> bytes:
    """One framed WAL record: length + CRC32 + payload."""
    return _RECORD_PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


class WalWriter:
    """Appends framed, checksummed operation records to one WAL file.

    ``fsync_batch`` is the durability/throughput knob: ``1`` fsyncs after
    every record (safest, slowest), ``N`` after every N records, ``0``
    only at commit markers.  Commit markers always fsync regardless —
    that is what makes an epoch durable.  The file handle is unbuffered,
    so every append reaches the OS immediately; ``fsync`` only controls
    when it reaches the platters.

    ``fsync_batch`` meters *appends*, and a :meth:`append_many` batch is
    deliberately one append — one group-commit durability unit — so a bulk
    batch fsyncs once at its end even under ``fsync_batch=1``.  This
    relaxation cannot weaken what recovery guarantees: staged records are
    replayed only when covered by a later fsynced commit marker and are
    discarded otherwise, so fsyncing staged data early narrows the window
    in which uncommitted (already discardable) work is lost, nothing more.
    Commit durability is identical on both paths.
    """

    def __init__(self, path: Path, fsync_batch: int = 0) -> None:
        if fsync_batch < 0:
            raise StorageError(f"fsync_batch must be >= 0, got {fsync_batch}")
        self.path = Path(path)
        self.fsync_batch = fsync_batch
        self._handle: Optional[IO[bytes]] = None
        self._unsynced = 0
        #: Data operations staged since the last commit marker.
        self.staged = 0
        #: Why the writer refuses further appends (set after a survived
        #: I/O failure such as ENOSPC); cleared by :meth:`reset`/:meth:`rotate`.
        self._poisoned: Optional[str] = None

    # The shim is looked up per operation, not captured at construction,
    # so a fault plan installed after the writer exists still intercepts.
    def _ensure_open(self) -> IO[bytes]:
        if self._handle is None or self._handle.closed:
            fs = faults.current_fs()
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = fs.open(self.path, "ab", buffering=0)
            if fresh:
                try:
                    fs.write(self._handle, WAL_MAGIC)
                except OSError as exc:
                    self._recover_failed_write(0, exc)
        return self._handle

    def _check_poisoned(self) -> None:
        if self._poisoned is not None:
            raise StorageError(
                f"{self.path}: writer disabled after I/O failure "
                f"({self._poisoned}); checkpoint or reopen to continue"
            )

    def _recover_failed_write(self, base: int, exc: OSError) -> None:
        """Roll the file back to the last good frame boundary at ``base``.

        A failed or partial frame write (ENOSPC, EIO) must never leave a
        torn frame for the *next* append to bury mid-file — recovery would
        then classify it as unrecoverable corruption instead of a torn
        tail.  Truncating back to the pre-append size restores a clean
        boundary; the writer is poisoned so nothing appends after a
        failure the caller might swallow.
        """
        self.close()
        try:
            faults.current_fs().truncate(self.path, base)
        except OSError:
            pass  # disk still failing; recovery will classify the tail
        self._poisoned = str(exc)
        raise StorageError(
            f"{self.path}: WAL append failed ({exc}); truncated back to "
            f"last good frame boundary at byte {base}"
        ) from exc

    def _append_blob(self, blob: bytes, appends: int) -> None:
        fs = faults.current_fs()
        handle = self._ensure_open()
        base = self.path.stat().st_size
        try:
            fs.write(handle, blob)
        except OSError as exc:
            self._recover_failed_write(base, exc)
        self._unsynced += appends
        if self.fsync_batch and self._unsynced >= self.fsync_batch:
            try:
                fs.fsync(handle)
            except OSError as exc:
                self._poisoned = str(exc)
                raise StorageError(
                    f"{self.path}: WAL fsync failed ({exc})"
                ) from exc
            self._unsynced = 0

    def append(self, operation: Dict[str, Any]) -> None:
        """Stage one operation record (fsynced per the batching policy)."""
        self._check_poisoned()
        payload = json.dumps(operation, ensure_ascii=False, sort_keys=True).encode(
            "utf-8"
        )
        self._append_blob(encode_record(payload), appends=1)
        if operation.get("op") != "commit":
            self.staged += 1

    def append_many(self, operations: List[Dict[str, Any]]) -> None:
        """Stage a batch of operation records with one write call.

        The framed records are concatenated and handed to the filesystem
        as a single ``write`` (so a torn write can still only damage the
        suffix of the batch), and the fsync policy is consulted once for
        the whole batch instead of once per record — the group-commit
        fast path behind bulk ``insert_many``.  The batch is one
        durability unit: with ``fsync_batch=1`` the per-op path fsyncs
        every record while this path fsyncs once per batch — an
        intentional relaxation (see the class docstring) that leaves
        commit durability untouched, because uncommitted staged records
        are discarded at recovery whether or not they were fsynced.
        """
        if not operations:
            return
        self._check_poisoned()
        chunks: List[bytes] = []
        data_records = 0
        for operation in operations:
            payload = json.dumps(
                operation, ensure_ascii=False, sort_keys=True
            ).encode("utf-8")
            chunks.append(encode_record(payload))
            if operation.get("op") != "commit":
                data_records += 1
        self._append_blob(b"".join(chunks), appends=len(operations))
        self.staged += data_records

    def log(self, op: str, payload: Dict[str, Any]) -> None:
        """Journal hook wired into :attr:`Collection._journal`."""
        record = {"op": op}
        record.update(payload)
        self.append(record)

    def log_many(self, op: str, payloads: List[Dict[str, Any]]) -> None:
        """Batch journal hook wired into :attr:`Collection._journal_many`."""
        records: List[Dict[str, Any]] = []
        for payload in payloads:
            record = {"op": op}
            record.update(payload)
            records.append(record)
        self.append_many(records)

    def commit(self, epoch: int) -> None:
        """Append a commit marker for ``epoch`` and make the file durable."""
        self.append({"op": "commit", "epoch": epoch})
        try:
            faults.current_fs().fsync(self._ensure_open())
        except OSError as exc:
            # The marker may or may not be durable; refuse further appends
            # until a checkpoint or reopen re-establishes a known state.
            self._poisoned = str(exc)
            raise StorageError(
                f"{self.path}: commit fsync failed ({exc})"
            ) from exc
        self._unsynced = 0
        self.staged = 0

    def reset(self) -> None:
        """Truncate the log to its header (after a checkpoint snapshot)."""
        fs = faults.current_fs()
        self.close()
        if self.path.exists():
            fs.truncate(self.path, len(WAL_MAGIC))
        self.staged = 0
        self._poisoned = None
        # Reopen lazily; append mode continues after the header.

    def rotate(self) -> None:
        """Replace the log with a fresh header via an atomic rename.

        The crash-safe variant of :meth:`reset` used by WAL compaction:
        a new header-only file is written beside the log, fsynced, and
        renamed over it.  Until the rename lands the old log is intact,
        and a stale log replaying onto the fresh checkpoint snapshot is
        idempotent-safe (the epoch filter skips captured history), so a
        crash at *any* operation of the swap recovers cleanly.
        """
        self.close()
        atomic_write_bytes(self.path, WAL_MAGIC)
        self.staged = 0
        self._poisoned = None

    def close(self) -> None:
        """Close the underlying handle (uncommitted staged ops stay staged)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
        self._unsynced = 0


# ------------------------------------------------------------------- reader


@dataclass
class WalRecovery:
    """Outcome of reading one WAL file."""

    path: Path
    #: Committed data operations, in append order (commit markers excluded).
    operations: List[Dict[str, Any]] = field(default_factory=list)
    #: Last commit epoch whose marker was read (0 when none).
    last_epoch: int = 0
    #: Byte offset just past the last committed record (header size when none).
    committed_end: int = len(WAL_MAGIC)
    #: Byte offset a torn tail was truncated at, or ``None``.
    truncated_at: Optional[int] = None
    #: Staged-but-uncommitted operations that were discarded.
    discarded: int = 0
    #: Human-readable notes (torn tails, discards) for recovery reports.
    notes: List[str] = field(default_factory=list)


def _parse_records(
    data: bytes, start: int
) -> Tuple[List[Tuple[int, Dict[str, Any]]], Optional[int], str]:
    """Parse records from ``data[start:]``.

    Returns ``(records, bad_offset, reason)`` where ``records`` are the
    ``(offset, operation)`` pairs parsed before the first problem,
    ``bad_offset`` is where parsing stopped (``None`` on clean EOF) and
    ``reason`` describes the problem.
    """
    records: List[Tuple[int, Dict[str, Any]]] = []
    offset = start
    size = len(data)
    while offset < size:
        remaining = size - offset
        if remaining < _RECORD_PREFIX.size:
            return records, offset, f"short record prefix ({remaining} bytes)"
        length, crc = _RECORD_PREFIX.unpack_from(data, offset)
        if length > remaining - _RECORD_PREFIX.size:
            return records, offset, (
                f"record of {length} bytes extends past end of file"
            )
        payload = data[offset + _RECORD_PREFIX.size : offset + _RECORD_PREFIX.size + length]
        if zlib.crc32(payload) != crc:
            return records, offset, "checksum mismatch"
        try:
            operation = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return records, offset, f"unparseable payload: {exc}"
        if not isinstance(operation, dict) or "op" not in operation:
            return records, offset, "payload is not an operation object"
        offset += _RECORD_PREFIX.size + length
        records.append((offset, operation))
    return records, None, ""


def read_wal(
    path: Path,
    committed_epoch: int,
    truncate_torn: bool = True,
    *,
    best_effort: bool = False,
) -> WalRecovery:
    """Read, verify and classify one WAL file.

    ``committed_epoch`` is the database-wide epoch from the ``COMMITTED``
    file; only operations covered by a marker with epoch ``<=`` it are
    returned.  A torn tail is truncated on disk (when ``truncate_torn``)
    so later appends continue from a clean boundary; damage inside the
    committed region raises :class:`StorageCorruptError` — unless
    ``best_effort`` (the salvage path behind ``repair``), which instead
    returns the parseable committed prefix with a note describing where
    and why salvage stopped.
    """
    path = Path(path)
    recovery = WalRecovery(path=path)
    data = faults.current_fs().read_bytes(path)
    if not data:
        return recovery
    if len(data) < len(WAL_MAGIC):
        _truncate(recovery, 0, "file shorter than the WAL header", truncate_torn)
        return recovery
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        if best_effort:
            recovery.notes.append("bad WAL magic — salvaged nothing")
            return recovery
        raise StorageCorruptError(path, "bad WAL magic", offset=0)

    records, bad_offset, reason = _parse_records(data, len(WAL_MAGIC))
    if bad_offset is not None:
        # A parseable record *after* the damage means the middle of the log
        # is gone, not just its tail — that is unrecoverable corruption.
        # (A corrupt length prefix makes the scan-ahead start at a garbage
        # offset and find nothing, which correctly reads as a torn tail.)
        next_offset = bad_offset + _RECORD_PREFIX.size
        if len(data) - bad_offset >= _RECORD_PREFIX.size:
            length, _ = _RECORD_PREFIX.unpack_from(data, bad_offset)
            if length <= len(data) - bad_offset - _RECORD_PREFIX.size:
                next_offset = bad_offset + _RECORD_PREFIX.size + length
        followers, _, _ = _parse_records(data, next_offset)
        if followers:
            if not best_effort:
                raise StorageCorruptError(path, reason, offset=bad_offset)
            recovery.notes.append(
                f"salvage stopped at byte {bad_offset}: {reason} "
                f"({len(followers)} parseable record(s) after the damage lost)"
            )

    staged: List[Dict[str, Any]] = []
    sealed = False  # a marker past the committed epoch seals the rest off
    for end, operation in records:
        if not sealed and operation.get("op") == "commit":
            epoch = int(operation.get("epoch", 0))
            if epoch > committed_epoch:
                # The marker exists but the COMMITTED rename never landed:
                # this epoch — and everything after it — is uncommitted.
                sealed = True
                continue
            # Stamp each operation with its commit epoch so replay can
            # skip epochs a checkpoint snapshot already captured (needed
            # when a crash truncates only some of a sharded collection's
            # partition logs, losing a cross-file prefix of the history).
            for operation_record in staged:
                operation_record["commit_epoch"] = epoch
            recovery.operations.extend(staged)
            recovery.last_epoch = epoch
            recovery.committed_end = end
            staged = []
        elif operation.get("op") != "commit":
            staged.append(operation)
    if staged:
        recovery.discarded += len(staged)
        recovery.notes.append(
            f"discarded {len(staged)} uncommitted operation(s) past epoch "
            f"{recovery.last_epoch}"
        )

    if bad_offset is not None:
        if bad_offset < recovery.committed_end:  # pragma: no cover - defensive
            raise StorageCorruptError(path, reason, offset=bad_offset)
        _truncate(recovery, bad_offset, f"torn tail: {reason}", truncate_torn)
    elif truncate_torn and recovery.committed_end < len(data):
        # Uncommitted staged records: cut them off so they can never be
        # retroactively committed by a later marker.
        _do_truncate(recovery, recovery.committed_end)
    return recovery


def _truncate(recovery: WalRecovery, offset: int, reason: str, enabled: bool) -> None:
    recovery.notes.append(f"{reason} (offset {offset})")
    if enabled:
        # Never keep a torn tail *and* uncommitted records before it.
        _do_truncate(recovery, min(offset, max(recovery.committed_end, len(WAL_MAGIC))))


def _do_truncate(recovery: WalRecovery, offset: int) -> None:
    try:
        faults.current_fs().truncate(recovery.path, offset)
    except OSError as exc:
        recovery.notes.append(f"could not truncate to offset {offset}: {exc}")
    else:
        recovery.truncated_at = offset
