"""The query (filter) language of the document store.

A filter is a dict mapping dotted field paths to either a literal value
(equality) or an operator document such as ``{"$gte": 3}``.  Logical
combinators ``$and`` / ``$or`` / ``$nor`` take lists of filters; ``$not``
inverts an operator document.  Array fields match when any element matches
(MongoDB semantics), plus ``$elemMatch`` / ``$size`` / ``$all`` for explicit
array conditions.

Filters are *compiled*: :func:`compile_filter` validates the whole filter
document up front — unknown operators, operands of the wrong shape, invalid
``$regex`` patterns and condition dicts mixing ``$``-operators with plain
keys all raise :class:`~repro.docstore.errors.QueryError` before a single
document is examined — and returns a predicate of pre-bound closures, so
per-document work never re-parses the filter (and never re-compiles a
regular expression).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List

from repro.docstore.documents import MISSING, resolve_path
from repro.docstore.errors import QueryError

Predicate = Callable[[dict], bool]

#: A compiled condition: value of a field -> does it satisfy the condition.
ValueTest = Callable[[Any], bool]

_COMPARABLE = (int, float, str)


def _compare(op: str, candidate: Any, reference: Any) -> bool:
    """Ordered comparison that never raises on mixed types (returns False)."""
    try:
        if op == "$gt":
            return candidate > reference
        if op == "$gte":
            return candidate >= reference
        if op == "$lt":
            return candidate < reference
        if op == "$lte":
            return candidate <= reference
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")


def _values_equal(value: Any, condition: Any) -> bool:
    if value is MISSING:
        return condition is None
    if isinstance(value, list) and not isinstance(condition, list):
        return any(_values_equal(v, condition) for v in value)
    return value == condition


def _is_operator_doc(condition: Any) -> bool:
    return isinstance(condition, dict) and bool(condition) and all(
        isinstance(k, str) and k.startswith("$") for k in condition
    )


def _is_mixed_doc(condition: Any) -> bool:
    """A condition dict mixing ``$``-operators with plain keys."""
    if not isinstance(condition, dict) or not condition:
        return False
    dollar = sum(
        1 for k in condition if isinstance(k, str) and k.startswith("$")
    )
    return 0 < dollar < len(condition)


def _compile_comparison(op: str, reference: Any) -> ValueTest:
    def test(value: Any) -> bool:
        if value is MISSING:
            return False
        if isinstance(value, list):
            return any(
                isinstance(v, _COMPARABLE) and _compare(op, v, reference)
                for v in value
            )
        return _compare(op, value, reference)

    return test


def _compile_in(condition: Any) -> ValueTest:
    if not isinstance(condition, (list, tuple, set)):
        raise QueryError("$in requires a list")

    def test(value: Any) -> bool:
        if isinstance(value, list):
            return any(v in condition for v in value)
        if value is MISSING:
            return None in condition
        return value in condition

    return test


def _compile_regex(condition: Any) -> ValueTest:
    if not isinstance(condition, str):
        raise QueryError(
            f"$regex pattern must be a string, got {type(condition).__name__}"
        )
    try:
        pattern = re.compile(condition)
    except re.error as exc:
        raise QueryError(f"invalid $regex pattern {condition!r}: {exc}") from exc

    def test(value: Any) -> bool:
        if value is MISSING or value is None:
            return False
        if isinstance(value, list):
            return any(isinstance(v, str) and pattern.search(v) for v in value)
        return isinstance(value, str) and bool(pattern.search(value))

    return test


def _compile_all(condition: Any) -> ValueTest:
    if not isinstance(condition, (list, tuple)):
        raise QueryError("$all requires a list")

    def test(value: Any) -> bool:
        if not isinstance(value, list):
            return all(_values_equal(value, c) for c in condition)
        return all(any(_values_equal(v, c) for v in value) for c in condition)

    return test


def _compile_operator(op: str, condition: Any) -> ValueTest:
    """Compile one ``$op: operand`` pair into a value test.

    All operand validation happens here, at compile time.
    """
    if op == "$exists":
        expected = bool(condition)
        return lambda value: (value is not MISSING) == expected
    if op == "$eq":
        return lambda value: _values_equal(value, condition)
    if op == "$ne":
        return lambda value: not _values_equal(value, condition)
    if op in ("$gt", "$gte", "$lt", "$lte"):
        return _compile_comparison(op, condition)
    if op == "$in":
        return _compile_in(condition)
    if op == "$nin":
        inner = _compile_in(condition)
        return lambda value: not inner(value)
    if op == "$regex":
        return _compile_regex(condition)
    if op == "$size":
        if isinstance(condition, bool) or not isinstance(condition, int):
            raise QueryError(
                f"$size requires an integer, got {type(condition).__name__}"
            )
        if condition < 0:
            raise QueryError(f"$size may not be negative, got {condition}")
        return lambda value: isinstance(value, list) and len(value) == condition
    if op == "$all":
        return _compile_all(condition)
    if op == "$elemMatch":
        if not isinstance(condition, dict):
            raise QueryError("$elemMatch requires a filter document")
        element_predicate = compile_filter(condition)
        return lambda value: isinstance(value, list) and any(
            isinstance(v, dict) and element_predicate(v) for v in value
        )
    if op == "$not":
        negated = _compile_condition(condition)
        return lambda value: not negated(value)
    raise QueryError(f"unknown operator {op!r}")


def _compile_condition(condition: Any) -> ValueTest:
    """Compile a field condition (operator doc or literal) into a value test."""
    if _is_mixed_doc(condition):
        raise QueryError(
            f"condition {condition!r} mixes $-operators with plain keys; "
            "use {'$eq': {...}} for a literal document match"
        )
    if _is_operator_doc(condition):
        tests = [
            _compile_operator(op, operand) for op, operand in condition.items()
        ]
        if len(tests) == 1:
            return tests[0]
        return lambda value: all(test(value) for test in tests)
    return lambda value: _values_equal(value, condition)


def _compile_logical(op: str, condition: Any) -> List[Predicate]:
    if not isinstance(condition, (list, tuple)):
        raise QueryError(f"{op} requires a list of filter documents")
    return [compile_filter(sub) for sub in condition]


def compile_filter(filter_doc: Dict[str, Any]) -> Predicate:
    """Compile ``filter_doc`` into a ``document -> bool`` predicate.

    Raises :class:`QueryError` for malformed filters — unknown operators,
    invalid operands, bad ``$regex`` patterns, mixed operator/plain condition
    dicts — *before* any document is matched.
    """
    if filter_doc is None:
        filter_doc = {}
    if not isinstance(filter_doc, dict):
        raise QueryError(f"filter must be a dict, got {type(filter_doc).__name__}")

    clauses: List[Predicate] = []
    for key, condition in filter_doc.items():
        if key == "$and":
            subs = _compile_logical(key, condition)
            clauses.append(lambda doc, subs=subs: all(s(doc) for s in subs))
        elif key == "$or":
            subs = _compile_logical(key, condition)
            clauses.append(lambda doc, subs=subs: any(s(doc) for s in subs))
        elif key == "$nor":
            subs = _compile_logical(key, condition)
            clauses.append(lambda doc, subs=subs: not any(s(doc) for s in subs))
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        else:
            test = _compile_condition(condition)
            clauses.append(
                lambda doc, key=key, test=test: test(resolve_path(doc, key))
            )

    def predicate(document: dict) -> bool:
        return all(clause(document) for clause in clauses)

    return predicate


def matches(document: dict, filter_doc: Dict[str, Any]) -> bool:
    """One-shot convenience wrapper around :func:`compile_filter`."""
    return compile_filter(filter_doc)(document)


def equality_conditions(filter_doc: Dict[str, Any]) -> Dict[str, Any]:
    """Extract ``path -> literal`` equality conditions from a filter.

    Collections use this to route simple queries through hash indexes.  Only
    top-level literal equalities and explicit ``{"$eq": v}`` conditions are
    considered; anything behind ``$or`` etc. is ignored (it would not be safe
    to use an index for those).
    """
    conditions: Dict[str, Any] = {}
    for key, condition in (filter_doc or {}).items():
        if key.startswith("$"):
            continue
        if _is_operator_doc(condition):
            if set(condition) == {"$eq"}:
                conditions[key] = condition["$eq"]
        elif not isinstance(condition, (dict, list)):
            conditions[key] = condition
    return conditions
