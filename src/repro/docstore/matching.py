"""The query (filter) language of the document store.

A filter is a dict mapping dotted field paths to either a literal value
(equality) or an operator document such as ``{"$gte": 3}``.  Logical
combinators ``$and`` / ``$or`` / ``$nor`` take lists of filters; ``$not``
inverts an operator document.  Array fields match when any element matches
(MongoDB semantics), plus ``$elemMatch`` / ``$size`` / ``$all`` for explicit
array conditions.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict

from repro.docstore.documents import MISSING, resolve_path
from repro.docstore.errors import QueryError

Predicate = Callable[[dict], bool]

_COMPARABLE = (int, float, str)


def _compare(op: str, candidate: Any, reference: Any) -> bool:
    """Ordered comparison that never raises on mixed types (returns False)."""
    try:
        if op == "$gt":
            return candidate > reference
        if op == "$gte":
            return candidate >= reference
        if op == "$lt":
            return candidate < reference
        if op == "$lte":
            return candidate <= reference
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")


def _match_operator(op: str, value: Any, condition: Any) -> bool:
    exists = value is not MISSING
    if op == "$exists":
        return exists == bool(condition)
    if op == "$eq":
        return _values_equal(value, condition)
    if op == "$ne":
        return not _values_equal(value, condition)
    if op in ("$gt", "$gte", "$lt", "$lte"):
        if not exists:
            return False
        if isinstance(value, list):
            return any(
                isinstance(v, _COMPARABLE) and _compare(op, v, condition)
                for v in value
            )
        return _compare(op, value, condition)
    if op == "$in":
        if not isinstance(condition, (list, tuple, set)):
            raise QueryError("$in requires a list")
        if isinstance(value, list):
            return any(v in condition for v in value)
        if not exists:
            return None in condition
        return value in condition
    if op == "$nin":
        return not _match_operator("$in", value, condition)
    if op == "$regex":
        if not exists or value is None:
            return False
        pattern = re.compile(condition)
        if isinstance(value, list):
            return any(isinstance(v, str) and pattern.search(v) for v in value)
        return isinstance(value, str) and bool(pattern.search(value))
    if op == "$size":
        return isinstance(value, list) and len(value) == condition
    if op == "$all":
        if not isinstance(condition, (list, tuple)):
            raise QueryError("$all requires a list")
        if not isinstance(value, list):
            return all(_values_equal(value, c) for c in condition)
        return all(any(_values_equal(v, c) for v in value) for c in condition)
    if op == "$elemMatch":
        if not isinstance(value, list):
            return False
        inner = compile_filter(condition)
        return any(isinstance(v, dict) and inner(v) for v in value)
    if op == "$not":
        return not _match_condition(value, condition)
    raise QueryError(f"unknown operator {op!r}")


def _values_equal(value: Any, condition: Any) -> bool:
    if value is MISSING:
        return condition is None
    if isinstance(value, list) and not isinstance(condition, list):
        return any(_values_equal(v, condition) for v in value)
    return value == condition


def _is_operator_doc(condition: Any) -> bool:
    return isinstance(condition, dict) and condition and all(
        isinstance(k, str) and k.startswith("$") for k in condition
    )


def _match_condition(value: Any, condition: Any) -> bool:
    if _is_operator_doc(condition):
        return all(
            _match_operator(op, value, operand)
            for op, operand in condition.items()
        )
    return _values_equal(value, condition)


def compile_filter(filter_doc: Dict[str, Any]) -> Predicate:
    """Compile ``filter_doc`` into a ``document -> bool`` predicate."""
    if filter_doc is None:
        filter_doc = {}
    if not isinstance(filter_doc, dict):
        raise QueryError(f"filter must be a dict, got {type(filter_doc).__name__}")

    clauses = []
    for key, condition in filter_doc.items():
        if key == "$and":
            subs = [compile_filter(sub) for sub in condition]
            clauses.append(lambda doc, subs=subs: all(s(doc) for s in subs))
        elif key == "$or":
            subs = [compile_filter(sub) for sub in condition]
            clauses.append(lambda doc, subs=subs: any(s(doc) for s in subs))
        elif key == "$nor":
            subs = [compile_filter(sub) for sub in condition]
            clauses.append(lambda doc, subs=subs: not any(s(doc) for s in subs))
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        else:
            clauses.append(
                lambda doc, key=key, condition=condition: _match_condition(
                    resolve_path(doc, key), condition
                )
            )

    def predicate(document: dict) -> bool:
        return all(clause(document) for clause in clauses)

    return predicate


def matches(document: dict, filter_doc: Dict[str, Any]) -> bool:
    """One-shot convenience wrapper around :func:`compile_filter`."""
    return compile_filter(filter_doc)(document)


def equality_conditions(filter_doc: Dict[str, Any]) -> Dict[str, Any]:
    """Extract ``path -> literal`` equality conditions from a filter.

    Collections use this to route simple queries through hash indexes.  Only
    top-level literal equalities and explicit ``{"$eq": v}`` conditions are
    considered; anything behind ``$or`` etc. is ignored (it would not be safe
    to use an index for those).
    """
    conditions: Dict[str, Any] = {}
    for key, condition in (filter_doc or {}).items():
        if key.startswith("$"):
            continue
        if _is_operator_doc(condition):
            if set(condition) == {"$eq"}:
                conditions[key] = condition["$eq"]
        elif not isinstance(condition, (dict, list)):
            conditions[key] = condition
    return conditions
