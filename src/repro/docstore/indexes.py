"""Hash and sorted indexes over dotted document paths."""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Set, Tuple

from repro.docstore.documents import iter_index_keys
from repro.docstore.errors import UnknownIndexKind


class HashIndex:
    """Equality index: ``frozen key -> set of document ids``.

    Arrays are indexed multikey-style (one entry per element); an absent
    field is indexed under ``None``.
    """

    kind = "hash"

    def __init__(self, path: str) -> None:
        self.path = path
        self._buckets: Dict[Any, Set[int]] = {}

    def add(self, doc_id: int, document: dict) -> None:
        """Index ``document`` under ``doc_id``."""
        for key in iter_index_keys(document, self.path):
            self._buckets.setdefault(key, set()).add(doc_id)

    def remove(self, doc_id: int, document: dict) -> None:
        """Remove ``document``'s entries for ``doc_id``."""
        for key in iter_index_keys(document, self.path):
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            bucket.discard(doc_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: Any) -> Set[int]:
        """Document ids whose indexed field equals ``key``."""
        return set(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Ordered index supporting range scans over comparable keys.

    Keys that are not mutually comparable with the existing population are
    bucketed by type first, so mixed int/str fields do not raise.
    """

    kind = "sorted"

    def __init__(self, path: str) -> None:
        self.path = path
        # One sorted list of (key, doc_id) per key type name.
        self._by_type: Dict[str, List[Tuple[Any, int]]] = {}

    @staticmethod
    def _type_name(key: Any) -> str:
        if isinstance(key, bool):
            return "bool"
        if isinstance(key, (int, float)):
            return "number"
        return type(key).__name__

    def add(self, doc_id: int, document: dict) -> None:
        """Index ``document`` under ``doc_id``."""
        for key in iter_index_keys(document, self.path):
            if key is None:
                continue
            entries = self._by_type.setdefault(self._type_name(key), [])
            bisect.insort(entries, (key, doc_id))

    def remove(self, doc_id: int, document: dict) -> None:
        """Remove ``document``'s entries for ``doc_id``."""
        for key in iter_index_keys(document, self.path):
            if key is None:
                continue
            entries = self._by_type.get(self._type_name(key))
            if not entries:
                continue
            position = bisect.bisect_left(entries, (key, doc_id))
            if position < len(entries) and entries[position] == (key, doc_id):
                entries.pop(position)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[int]:
        """Document ids with an indexed key inside ``[low, high]``.

        Either bound may be ``None`` (open).  The scan is restricted to the
        type bucket of whichever bound is given; a fully open range scans all
        buckets.
        """
        hits: Set[int] = set()
        reference = low if low is not None else high
        buckets: Iterator[List[Tuple[Any, int]]]
        if reference is None:
            buckets = iter(self._by_type.values())
        else:
            bucket = self._by_type.get(self._type_name(reference))
            buckets = iter([bucket] if bucket else [])
        for entries in buckets:
            start = 0
            end = len(entries)
            if low is not None:
                start = _bisect_key(entries, low, left=include_low)
            if high is not None:
                end = _bisect_key(entries, high, left=not include_high)
            for key, doc_id in entries[start:end]:
                hits.add(doc_id)
        return hits

    def first_ids(self, count: int) -> List[int]:
        """Ids of the ``count`` smallest keys (across all buckets, in order)."""
        merged: List[Tuple[Any, int]] = []
        for entries in self._by_type.values():
            merged.extend(entries[:count])
        # Keys within a bucket are comparable; across buckets sort by type.
        merged.sort(key=lambda pair: (self._type_name(pair[0]), pair[0]))
        return [doc_id for _key, doc_id in merged[:count]]

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_type.values())


def _bisect_key(entries: List[Tuple[Any, int]], key: Any, left: bool) -> int:
    """Bisect a ``(key, doc_id)`` list on ``key`` only."""
    low, high = 0, len(entries)
    while low < high:
        mid = (low + high) // 2
        mid_key = entries[mid][0]
        if mid_key < key or (not left and mid_key == key):
            low = mid + 1
        else:
            high = mid
    return low


def build_index(kind: str, path: str):
    """Factory used by collections and the persistence layer."""
    if kind == "hash":
        return HashIndex(path)
    if kind == "sorted":
        return SortedIndex(path)
    raise UnknownIndexKind(
        f"unknown index kind {kind!r} (expected 'hash' or 'sorted')"
    )
