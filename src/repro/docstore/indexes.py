"""Hash and sorted indexes over dotted document paths."""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Set, Tuple

from repro.docstore.documents import iter_index_keys, resolve_path
from repro.docstore.errors import UnknownIndexKind


class HashIndex:
    """Equality index: ``frozen key -> set of document ids``.

    Arrays are indexed multikey-style (one entry per element); an absent
    field is indexed under ``None``.
    """

    kind = "hash"

    def __init__(self, path: str) -> None:
        self.path = path
        self._buckets: Dict[Any, Set[int]] = {}

    def add(self, doc_id: int, document: dict) -> None:
        """Index ``document`` under ``doc_id``."""
        for key in iter_index_keys(document, self.path):
            self._buckets.setdefault(key, set()).add(doc_id)

    def remove(self, doc_id: int, document: dict) -> None:
        """Remove ``document``'s entries for ``doc_id``."""
        for key in iter_index_keys(document, self.path):
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            bucket.discard(doc_id)
            if not bucket:
                del self._buckets[key]

    def clone(self) -> "HashIndex":
        """Independent copy sharing no mutable structure with the original.

        Used by the copy-on-write partition epochs: the clone can be
        mutated freely while readers keep iterating the original.
        """
        copy = HashIndex(self.path)
        copy._buckets = {key: set(bucket) for key, bucket in self._buckets.items()}
        return copy

    def flush(self) -> None:
        """No-op: hash buckets are maintained eagerly on every ``add``."""

    def lookup(self, key: Any) -> Set[int]:
        """Document ids whose indexed field equals ``key`` (pre-frozen)."""
        return set(self._buckets.get(key, ()))

    def estimate(self, key: Any) -> int:
        """Bucket size for ``key`` (pre-frozen) without materializing a set."""
        return len(self._buckets.get(key, ()))

    def keys(self) -> Iterator[Any]:
        """Iterate the distinct (frozen) keys present in the index."""
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Ordered index supporting range scans over comparable keys.

    Keys that are not mutually comparable with the existing population are
    bucketed by type first, so mixed int/str fields do not raise.  Booleans
    live in the ``number`` bucket: Python compares them freely with ints and
    floats, so splitting them out would make range candidate sets miss
    documents the filter language matches.

    Beyond raw ranges the index keeps two per-document books the query
    planner relies on:

    * which documents were indexed from a *list* value (multikey entries) —
      needed both for exact two-sided range candidate sets under MongoDB's
      any-element array semantics and to disable index-ordered streaming
      (a list sorts as a list, not as its smallest element);
    * how many live keys each document contributed, so the planner can tell
      which documents are absent from the index (missing / ``None`` values
      sort before everything and are streamed separately).

    Additions are buffered: ``add`` appends to a pending list instead of
    paying an O(n) ``insort`` memmove per key, and :meth:`flush` (called by
    :meth:`remove` / :meth:`clone`, by every collection write path once its
    batch of ``add`` calls is done, and by ``Partition.publish``) merges all
    pending keys in one extend-and-Timsort pass per touched type bucket —
    Timsort sees the sorted prefix, so N buffered inserts cost O(n + N log N)
    once instead of O(n·N).  The per-document books (``_key_counts``,
    ``_list_entries``) stay eagerly maintained, so :meth:`indexed_ids` and
    :attr:`multikey` never force a merge.

    Because writers flush at the end of each mutation (not readers on first
    use), shared-state reads stay logically read-only: two threads running
    ``find`` on the same live or published state never race on a deferred
    merge.  The query methods still call :meth:`flush` defensively — for
    standalone index use where nothing else flushes — but under collection
    usage the pending list is always empty by the time a reader arrives, so
    that call reduces to a pure (mutation-free) emptiness check.
    """

    kind = "sorted"

    def __init__(self, path: str) -> None:
        self.path = path
        # One sorted list of (key, doc_id) per key type name.
        self._by_type: Dict[str, List[Tuple[Any, int]]] = {}
        # Buffered additions: (type name, (key, doc_id)) awaiting merge.
        self._pending: List[Tuple[str, Tuple[Any, int]]] = []
        # doc_id -> number of times added with a list value (multikey).
        self._list_entries: Dict[int, int] = {}
        # doc_id -> number of non-None keys currently in the index.
        self._key_counts: Dict[int, int] = {}

    @staticmethod
    def _type_name(key: Any) -> str:
        if isinstance(key, (bool, int, float)):
            return "number"
        return type(key).__name__

    def flush(self) -> None:
        """Merge buffered additions into the sorted runs (one pass each).

        Mutates the index, so only writers (and single-owner standalone
        users) may call it; collection read paths rely on every write
        having flushed already.
        """
        if not self._pending:
            return
        touched: Dict[str, List[Tuple[Any, int]]] = {}
        for type_name, entry in self._pending:
            touched.setdefault(type_name, []).append(entry)
        self._pending = []
        for type_name, batch in touched.items():
            entries = self._by_type.setdefault(type_name, [])
            entries.extend(batch)
            entries.sort()

    def _delete(self, doc_id: int, key: Any) -> None:
        entries = self._by_type.get(self._type_name(key))
        if not entries:
            return
        position = bisect.bisect_left(entries, (key, doc_id))
        if position < len(entries) and entries[position] == (key, doc_id):
            entries.pop(position)
            count = self._key_counts.get(doc_id, 0) - 1
            if count > 0:
                self._key_counts[doc_id] = count
            else:
                self._key_counts.pop(doc_id, None)

    def add(self, doc_id: int, document: dict) -> None:
        """Index ``document`` under ``doc_id`` (buffered until :meth:`flush`)."""
        value = resolve_path(document, self.path)
        if isinstance(value, list):
            self._list_entries[doc_id] = self._list_entries.get(doc_id, 0) + 1
        for key in iter_index_keys(document, self.path):
            if key is None:
                continue
            self._pending.append((self._type_name(key), (key, doc_id)))
            self._key_counts[doc_id] = self._key_counts.get(doc_id, 0) + 1

    def remove(self, doc_id: int, document: dict) -> None:
        """Remove ``document``'s entries for ``doc_id``."""
        self.flush()
        value = resolve_path(document, self.path)
        if isinstance(value, list):
            count = self._list_entries.get(doc_id, 0) - 1
            if count > 0:
                self._list_entries[doc_id] = count
            else:
                self._list_entries.pop(doc_id, None)
        for key in iter_index_keys(document, self.path):
            if key is None:
                continue
            self._delete(doc_id, key)

    def clone(self) -> "SortedIndex":
        """Independent copy sharing no mutable structure with the original.

        Used by the copy-on-write partition epochs: the clone can be
        mutated freely while readers keep iterating the original.
        """
        self.flush()
        copy = SortedIndex(self.path)
        copy._by_type = {name: list(entries) for name, entries in self._by_type.items()}
        copy._list_entries = dict(self._list_entries)
        copy._key_counts = dict(self._key_counts)
        return copy

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[int]:
        """Document ids with an indexed key inside ``[low, high]``.

        Either bound may be ``None`` (open).  The scan is restricted to the
        type bucket of whichever bound is given; a fully open range scans all
        buckets.
        """
        self.flush()
        hits: Set[int] = set()
        reference = low if low is not None else high
        buckets: Iterator[List[Tuple[Any, int]]]
        if reference is None:
            buckets = iter(self._by_type.values())
        else:
            bucket = self._by_type.get(self._type_name(reference))
            buckets = iter([bucket] if bucket else [])
        for entries in buckets:
            start = 0
            end = len(entries)
            if low is not None:
                start = _bisect_key(entries, low, left=include_low)
            if high is not None:
                end = _bisect_key(entries, high, left=not include_high)
            for key, doc_id in entries[start:end]:
                hits.add(doc_id)
        return hits

    def range_ids(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[int]:
        """Exact candidate ids for a conjunction of range conditions.

        Unlike :meth:`range`, this is safe to use as the *complete* candidate
        set for ``{"$gte": low, "$lte": high}`` under MongoDB's any-element
        array semantics: a document with value ``[1, 20]`` matches
        ``{"$gte": 2, "$lte": 10}`` (element 20 satisfies the lower bound,
        element 1 the upper) even though no single key falls inside
        ``[2, 10]``.  Multikey documents are therefore re-checked one bound
        at a time.
        """
        hits = self.range(low, high, include_low, include_high)
        if low is not None and high is not None and self._list_entries:
            lows = self.range(low, None, include_low, True)
            highs = self.range(None, high, True, include_high)
            hits |= set(self._list_entries) & lows & highs
        return hits

    def count_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> int:
        """Upper bound on ``len(range_ids(...))`` without building the set."""
        self.flush()
        total = 0
        reference = low if low is not None else high
        if reference is None:
            total = sum(len(entries) for entries in self._by_type.values())
        else:
            entries = self._by_type.get(self._type_name(reference), [])
            start = 0
            end = len(entries)
            if low is not None:
                start = _bisect_key(entries, low, left=include_low)
            if high is not None:
                end = _bisect_key(entries, high, left=not include_high)
            total = max(end - start, 0)
        return total + len(self._list_entries)

    @property
    def multikey(self) -> bool:
        """Whether any indexed document has a list value at the path."""
        return bool(self._list_entries)

    def indexed_ids(self) -> Set[int]:
        """Ids of documents contributing at least one non-``None`` key."""
        return set(self._key_counts)

    def order_usable(self) -> bool:
        """Whether index order equals the filter language's sort order.

        True when no document is multikey (a list value sorts as a list,
        not as its elements) and every key lives in the ``number`` or
        ``str`` buckets, whose relative order (numbers before strings)
        matches the sort routine's total order over mixed types.
        """
        if self._list_entries:
            return False
        self.flush()
        return set(self._by_type) <= {"number", "str"}

    def ordered_ids(self, reverse: bool = False) -> Iterator[int]:
        """Document ids in sort order (only valid when :meth:`order_usable`).

        Ascending streams numbers then strings.  Descending must mirror a
        *stable* reverse sort: keys descend, but documents sharing a key keep
        ascending id order — so equal-key runs are emitted in index order
        while the runs themselves are walked back to front.
        """
        self.flush()
        buckets = [self._by_type.get("number", []), self._by_type.get("str", [])]
        if not reverse:
            for entries in buckets:
                for _key, doc_id in entries:
                    yield doc_id
            return
        for entries in reversed(buckets):
            end = len(entries)
            while end > 0:
                key = entries[end - 1][0]
                start = _bisect_key(entries, key, left=True)
                for _key, doc_id in entries[start:end]:
                    yield doc_id
                end = start

    def first_ids(self, count: int) -> List[int]:
        """Ids of the ``count`` smallest keys (across all buckets, in order)."""
        self.flush()
        merged: List[Tuple[Any, int]] = []
        for entries in self._by_type.values():
            merged.extend(entries[:count])
        # Keys within a bucket are comparable; across buckets sort by type.
        merged.sort(key=lambda pair: (self._type_name(pair[0]), pair[0]))
        return [doc_id for _key, doc_id in merged[:count]]

    def __len__(self) -> int:
        return len(self._pending) + sum(
            len(entries) for entries in self._by_type.values()
        )


def _bisect_key(entries: List[Tuple[Any, int]], key: Any, left: bool) -> int:
    """Bisect a ``(key, doc_id)`` list on ``key`` only."""
    low, high = 0, len(entries)
    while low < high:
        mid = (low + high) // 2
        mid_key = entries[mid][0]
        if mid_key < key or (not left and mid_key == key):
            low = mid + 1
        else:
            high = mid
    return low


def build_index(kind: str, path: str):
    """Factory used by collections and the persistence layer."""
    if kind == "hash":
        return HashIndex(path)
    if kind == "sorted":
        return SortedIndex(path)
    raise UnknownIndexKind(
        f"unknown index kind {kind!r} (expected 'hash' or 'sorted')"
    )
