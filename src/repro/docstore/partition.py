"""Hash partitions: per-shard document maps, indexes and COW epochs.

A sharded :class:`~repro.docstore.collection.Collection` splits its
documents over N :class:`Partition`\\ s by a per-collection shard key
(``ncid`` by default, falling back to a hash of ``_id``).  Each partition
owns a :class:`PartitionState` — its private document map, ``_id`` map and
secondary indexes — shaped exactly like the single-dict store the query
planner already knows how to read, so every planner entry point
(:func:`~repro.docstore.planner.plan_read`,
:func:`~repro.docstore.planner.iter_matching_ids`, ...) works unchanged on
one partition's state.

Partitions also carry the snapshot-isolation machinery.  ``live`` is the
state writers mutate; ``published`` is the state handed to snapshot
readers.  :meth:`Partition.publish` (called by ``Database.commit``) makes
the current live state the published one in a single reference assignment
— atomic under the GIL, so a concurrent reader sees either the old epoch
or the new one, never a mix.  The first write after a publish copies the
state (:meth:`PartitionState.clone`: shallow document map, cloned
indexes), and in-place document updates privatize the document first
(:meth:`Partition.writable_document`), so a published epoch is never
mutated once a reader can hold it.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional, Set

from repro.docstore.documents import deep_copy

__all__ = ["PartitionState", "Partition", "fallback_shard", "shard_key_shard"]


def shard_key_shard(value: str, shards: int) -> int:
    """Stable shard index of a string shard-key value (crc32, seed-free).

    Mirrors :func:`repro.core.parallel.shard_of` (kept inline to avoid an
    import cycle between the docstore and the parallel runtime): the same
    ncid lands on the same shard here and in the dedup pipeline.
    """
    return zlib.crc32(value.strip().encode("utf-8")) % shards


def fallback_shard(frozen_id: Any, shards: int) -> int:
    """Shard index for documents without a string shard-key value.

    Hashes the (frozen) ``_id`` representation instead, so placement stays
    deterministic and seed-free for any id type.
    """
    return zlib.crc32(repr(frozen_id).encode("utf-8")) % shards


class PartitionState:
    """One epoch of one partition: documents, id map and indexes.

    Attribute names deliberately match the private storage attributes the
    planner reads on a collection (``_documents`` / ``_by_user_id`` /
    ``_indexes``), so a state object *is* a valid planner target.
    """

    __slots__ = ("_documents", "_by_user_id", "_indexes")

    def __init__(
        self,
        documents: Optional[Dict[int, dict]] = None,
        by_user_id: Optional[Dict[Any, int]] = None,
        indexes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._documents: Dict[int, dict] = {} if documents is None else documents
        self._by_user_id: Dict[Any, int] = {} if by_user_id is None else by_user_id
        self._indexes: Dict[str, Any] = {} if indexes is None else indexes

    def clone(self) -> "PartitionState":
        """Copy for copy-on-write: new maps, cloned indexes, shared docs.

        Document dicts are shared between the clone and the original until
        :meth:`Partition.writable_document` privatizes one — cloning is
        O(partition) in map entries, not in document bytes.
        """
        return PartitionState(
            documents=dict(self._documents),
            by_user_id=dict(self._by_user_id),
            indexes={name: index.clone() for name, index in self._indexes.items()},
        )

    def __len__(self) -> int:
        return len(self._documents)


class Partition:
    """One hash shard of a collection, with copy-on-write epochs."""

    __slots__ = ("live", "published", "_owned")

    def __init__(self) -> None:
        state = PartitionState()
        #: The state writers mutate (after :meth:`writable` privatizes it).
        self.live = state
        #: The last published epoch; what snapshot readers iterate.
        self.published = state
        #: Internal ids whose document dict is private to ``live`` (safe to
        #: mutate in place).  Reset whenever ``live`` is re-cloned.
        self._owned: Set[int] = set()

    def writable(self) -> PartitionState:
        """The live state, copied first if a reader could be holding it."""
        if self.live is self.published:
            self.live = self.published.clone()
            self._owned = set()
        return self.live

    def writable_document(self, internal_id: int) -> dict:
        """A privately-owned copy of a live document, safe to mutate."""
        state = self.writable()
        if internal_id not in self._owned:
            state._documents[internal_id] = deep_copy(state._documents[internal_id])
            self._owned.add(internal_id)
        return state._documents[internal_id]

    def own(self, internal_id: int) -> None:
        """Mark ``internal_id``'s document as private to the live state."""
        self._owned.add(internal_id)

    def expose(self) -> None:
        """Forget document ownership after lazy views were handed out.

        Lazy reads materialize views that share container structure with
        the live documents; once a caller can hold such a view, mutating
        an owned document in place would silently rewrite the already
        returned result.  Dropping ownership makes the next
        :meth:`writable_document` deep-copy first, so results handed out
        before a write stay bit-stable after it (write-after-read
        safety), while pure write runs keep the in-place fast path.
        """
        if self._owned:
            self._owned = set()

    def publish(self) -> None:
        """Atomically make the live state the published epoch.

        A single reference assignment: concurrent readers that already
        grabbed the old ``published`` keep a consistent epoch; new readers
        get the new one.  After publishing, the next write copies.

        Sorted indexes merge their buffered additions first (normally a
        no-op — every write path flushes at its end), so a published
        epoch's runs are final: snapshot readers never trigger (and so
        never race on) a deferred merge.
        """
        for index in self.live._indexes.values():
            index.flush()
        self.published = self.live

    def __len__(self) -> int:
        return len(self.live._documents)
