"""Databases: named groups of collections with persistence.

:class:`Database` keeps everything in memory and persists on demand;
:class:`DurableDatabase` additionally write-ahead-logs every mutation so
the on-disk state survives a crash at any point (see
``docs/durability.md``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro import faults
from repro.docstore.collection import Collection
from repro.docstore.errors import CollectionNotFound, DocStoreError


class Database:
    """A named set of collections.

    Collections are created lazily through item access (``db["clusters"]``)
    or explicitly with :meth:`create_collection`.  :meth:`save` /
    :meth:`Database.load` persist the whole database as JSONL files plus a
    manifest.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._collections: Dict[str, Collection] = {}
        self._analysis_mode = "lax"
        self._schema = None

    def set_analysis_mode(self, mode: str, schema=None) -> None:
        """Switch static query analysis for all collections.

        ``mode`` is ``"lax"`` (default: queries run unchecked) or
        ``"strict"`` (filters, pipelines and updates are validated by
        :mod:`repro.analysis` before any document is scanned; errors raise
        :class:`~repro.docstore.errors.QueryError`).  ``schema`` is an
        optional :class:`~repro.analysis.SchemaPaths` used for field-path
        checking; without one, strict mode still validates operators, stage
        order and operand shapes.  Applies to existing and future
        collections.
        """
        if mode not in ("lax", "strict"):
            raise DocStoreError(
                f"analysis mode must be 'lax' or 'strict', got {mode!r}"
            )
        self._analysis_mode = mode
        self._schema = schema
        for collection in self._collections.values():
            collection.analysis_mode = mode
            collection.schema = schema

    def create_collection(self, name: str) -> Collection:
        """Create collection ``name``; error if it already exists."""
        if name in self._collections:
            raise DocStoreError(f"collection {name!r} already exists")
        collection = Collection(
            name, analysis_mode=self._analysis_mode, schema=self._schema
        )
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str, create: bool = True) -> Collection:
        """Return collection ``name``, creating it unless ``create=False``."""
        collection = self._collections.get(name)
        if collection is None:
            if not create:
                raise CollectionNotFound(f"collection {name!r} does not exist")
            collection = self.create_collection(name)
        return collection

    def drop_collection(self, name: str) -> None:
        """Remove collection ``name`` (no-op when absent)."""
        self._collections.pop(name, None)

    def collection_names(self) -> List[str]:
        """Sorted names of the existing collections."""
        return sorted(self._collections)

    def commit(self) -> int:
        """Durability barrier; a no-op for in-memory databases.

        :class:`DurableDatabase` overrides this to seal the staged WAL
        operations into a new committed epoch.  Having it on the base
        class lets write paths (``TestDataGenerator.publish`` et al.) call
        it unconditionally.
        """
        return 0

    def save(self, directory: Path) -> None:
        """Persist all collections to ``directory`` (JSONL + manifest)."""
        from repro.docstore.storage import save_database

        save_database(self, directory)

    @classmethod
    def load(cls, directory: Path, name: str = "db") -> "Database":
        """Load a database persisted with :meth:`save`."""
        from repro.docstore.storage import load_database

        return load_database(directory, name)

    def __getitem__(self, name: str) -> Collection:
        return self.get_collection(name)

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(name={self.name!r}, collections={self.collection_names()})"


class DurableDatabase(Database):
    """A database whose on-disk state survives a crash at any point.

    Every mutation is appended to a per-collection write-ahead log before
    anything else happens; :meth:`commit` seals the staged operations into
    a new epoch (markers in every log, then an atomic rewrite of the
    ``COMMITTED`` file); :meth:`checkpoint` folds the logs into fresh
    atomic JSONL snapshots and truncates them.  Opening an existing
    directory runs recovery — snapshot load, committed-WAL replay,
    torn-tail truncation — and records what happened in
    :attr:`last_recovery`.

    Crash-consistency contract: reloading the directory after a crash
    always yields exactly the state of some committed epoch — never a
    partially applied commit, even across collections.  ``fsync_batch``
    trades power-loss durability of *staged* (uncommitted) operations for
    append throughput: ``1`` fsyncs every record, ``N`` every N records,
    ``0`` only at commits.  Committed epochs are always fsynced.
    """

    def __init__(
        self, directory: Path, name: str = "db", fsync_batch: int = 0
    ) -> None:
        from repro.docstore.storage import (
            MANIFEST_NAME,
            RecoveryReport,
            load_database,
        )
        from repro.docstore.wal import WalWriter, read_committed_epoch

        super().__init__(name)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_batch = fsync_batch
        #: What recovery did while opening, or ``None`` for a fresh store.
        self.last_recovery: Optional[RecoveryReport] = None
        self._wal_writer = WalWriter  # late-bound for subclass/test hooks
        self._wals: Dict[str, "WalWriter"] = {}
        self._dropped_wals: Dict[str, "WalWriter"] = {}
        if (self.directory / MANIFEST_NAME).exists() or any(
            self.directory.glob("*.wal")
        ):
            report = RecoveryReport()
            loaded = load_database(self.directory, name, report=report, truncate=True)
            self._collections = loaded._collections
            self.last_recovery = report
        self.committed_epoch = read_committed_epoch(self.directory)
        for collection_name in list(self._collections):
            self._attach(collection_name)

    # ------------------------------------------------------------ journaling

    def _attach(self, collection_name: str) -> None:
        writer = self._dropped_wals.pop(collection_name, None)
        if writer is None:
            writer = self._wal_writer(
                self.directory / f"{collection_name}.wal",
                fsync_batch=self.fsync_batch,
            )
        self._wals[collection_name] = writer
        self._collections[collection_name]._journal = writer.log

    def create_collection(self, name: str) -> Collection:
        collection = super().create_collection(name)
        self._attach(name)
        # Journal the creation so a *committed* empty collection survives
        # reload; staged-only creations are discarded like any other op.
        self._wals[name].log("create", {})
        return collection

    def drop_collection(self, name: str) -> None:
        """Drop ``name``; the drop is journaled and committed like any op.

        The collection's files stay on disk (still receiving commit
        markers) until the next :meth:`checkpoint` removes them, so
        recovery can tell a committed drop from lost data.
        """
        writer = self._wals.pop(name, None)
        if writer is not None:
            writer.log("drop", {})
            self._dropped_wals[name] = writer
        super().drop_collection(name)

    # ------------------------------------------------------- commit/snapshot

    def _all_writers(self) -> List["WalWriter"]:
        return list(self._wals.values()) + list(self._dropped_wals.values())

    def commit(self) -> int:
        """Seal staged operations into a new epoch; returns the epoch.

        A no-op (returning the current epoch) when nothing was staged.
        Markers are appended and fsynced in every log *before* the
        ``COMMITTED`` file is atomically rewritten — a crash anywhere in
        between leaves the previous epoch as the recovered state.
        """
        writers = self._all_writers()
        if not any(writer.staged for writer in writers):
            return self.committed_epoch
        from repro.docstore.wal import write_committed_epoch

        epoch = self.committed_epoch + 1
        for writer in writers:
            writer.commit(epoch)
        write_committed_epoch(self.directory, epoch)
        self.committed_epoch = epoch
        return epoch

    def checkpoint(self) -> int:
        """Commit, snapshot every collection atomically, truncate the logs.

        Returns the committed epoch the snapshot captures.  Safe to crash
        at any point: until a collection's log is truncated, replaying it
        over the new snapshot is idempotent.
        """
        from repro.docstore.storage import save_database

        epoch = self.commit()
        save_database(self, self.directory)
        fs = faults.current_fs()
        for name, writer in sorted(self._dropped_wals.items()):
            writer.close()
            fs.remove(self.directory / f"{name}.wal")
            fs.remove(self.directory / f"{name}.jsonl")
        self._dropped_wals.clear()
        for writer in self._wals.values():
            writer.reset()
        return epoch

    def save(self, directory: Path) -> None:
        """Checkpoint when saving in place; plain export elsewhere."""
        if Path(directory).resolve() == self.directory.resolve():
            self.checkpoint()
        else:
            super().save(directory)

    def close(self, commit: bool = True) -> None:
        """Release file handles, committing staged operations by default."""
        if commit:
            self.commit()
        for writer in self._all_writers():
            writer.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableDatabase(name={self.name!r}, directory={str(self.directory)!r}, "
            f"epoch={self.committed_epoch})"
        )
