"""Databases: named groups of collections with persistence.

:class:`Database` keeps everything in memory and persists on demand;
:class:`DurableDatabase` additionally write-ahead-logs every mutation so
the on-disk state survives a crash at any point (see
``docs/durability.md``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.docstore.collection import Collection, CollectionSnapshot
from repro.docstore.errors import CollectionNotFound, DocStoreError


class Database:
    """A named set of collections.

    Collections are created lazily through item access (``db["clusters"]``)
    or explicitly with :meth:`create_collection`.  :meth:`save` /
    :meth:`Database.load` persist the whole database as JSONL files plus a
    manifest.
    """

    def __init__(
        self, name: str = "db", shards: int = 1, shard_key: str = "ncid"
    ) -> None:
        self.name = name
        self._collections: Dict[str, Collection] = {}
        self._analysis_mode = "lax"
        self._schema = None
        #: Default partition layout for new collections (overridable per
        #: collection through :meth:`create_collection`).
        self._default_shards = shards
        self._default_shard_key = shard_key

    def set_analysis_mode(self, mode: str, schema=None) -> None:
        """Switch static query analysis for all collections.

        ``mode`` is ``"lax"`` (default: queries run unchecked) or
        ``"strict"`` (filters, pipelines and updates are validated by
        :mod:`repro.analysis` before any document is scanned; errors raise
        :class:`~repro.docstore.errors.QueryError`).  ``schema`` is an
        optional :class:`~repro.analysis.SchemaPaths` used for field-path
        checking; without one, strict mode still validates operators, stage
        order and operand shapes.  Applies to existing and future
        collections.
        """
        if mode not in ("lax", "strict"):
            raise DocStoreError(
                f"analysis mode must be 'lax' or 'strict', got {mode!r}"
            )
        self._analysis_mode = mode
        self._schema = schema
        for collection in self._collections.values():
            collection.analysis_mode = mode
            collection.schema = schema

    def create_collection(
        self,
        name: str,
        shards: Optional[int] = None,
        shard_key: Optional[str] = None,
    ) -> Collection:
        """Create collection ``name``; error if it already exists.

        ``shards``/``shard_key`` override the database-wide partition
        defaults for this collection only.
        """
        if name in self._collections:
            raise DocStoreError(f"collection {name!r} already exists")
        collection = Collection(
            name,
            analysis_mode=self._analysis_mode,
            schema=self._schema,
            shards=self._default_shards if shards is None else shards,
            shard_key=self._default_shard_key if shard_key is None else shard_key,
        )
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str, create: bool = True) -> Collection:
        """Return collection ``name``, creating it unless ``create=False``."""
        collection = self._collections.get(name)
        if collection is None:
            if not create:
                raise CollectionNotFound(f"collection {name!r} does not exist")
            collection = self.create_collection(name)
        return collection

    def drop_collection(self, name: str) -> None:
        """Remove collection ``name`` (no-op when absent)."""
        self._collections.pop(name, None)

    def collection_names(self) -> List[str]:
        """Sorted names of the existing collections."""
        return sorted(self._collections)

    def _publish_all(self) -> None:
        for collection in self._collections.values():
            collection._publish()

    def commit(self) -> int:
        """Durability barrier; publishes a new snapshot epoch.

        Publishes every collection's live partition states so subsequent
        :meth:`read_view` snapshots observe the current data (and earlier
        snapshots keep their epoch untouched — writers copy before the
        next mutation).  :class:`DurableDatabase` overrides this to
        additionally seal the staged WAL operations into a new committed
        epoch.  Having it on the base class lets write paths
        (``TestDataGenerator.publish`` et al.) call it unconditionally.
        """
        self._publish_all()
        return 0

    def read_view(self) -> "DatabaseReadView":
        """A consistent snapshot of every collection's last published epoch.

        The view is stable: reads through it keep answering from the epoch
        published by the last :meth:`commit`, no matter what writers do to
        the live collections afterwards.
        """
        return DatabaseReadView(self)

    def stats(self) -> dict:
        """Document counts, partition layout and shard balance per collection.

        ``balance_factor`` is ``max(shard documents) / mean(shard
        documents)`` — 1.0 is a perfectly even spread, N means the fullest
        of N shards holds everything.
        """
        collections: Dict[str, dict] = {}
        degraded_reads = 0
        quarantined_shards = 0
        for name in self.collection_names():
            collection = self._collections[name]
            shard_counts = [
                len(partition.live._documents)
                for partition in collection._partitions
            ]
            total = sum(shard_counts)
            mean = total / len(shard_counts)
            collections[name] = {
                "documents": total,
                "shards": len(shard_counts),
                "shard_key": collection.shard_key,
                "shard_documents": shard_counts,
                "balance_factor": round(max(shard_counts) / mean, 4) if mean else 1.0,
                "indexes": collection.index_names(),
                "quarantined_shards": collection.quarantined_shards,
                "degraded_reads": collection._degraded_reads,
            }
            degraded_reads += collection._degraded_reads
            quarantined_shards += len(collection._quarantined)
        resilience: Dict[str, object] = {
            "degraded_reads": degraded_reads,
            "quarantined_shards": quarantined_shards,
        }
        try:
            from repro.core.parallel import resilience_counters
        except ImportError:  # pragma: no cover - parallel layer optional
            pass
        else:
            resilience.update(resilience_counters())
        return {
            "name": self.name,
            "collections": collections,
            "resilience": resilience,
        }

    def save(self, directory: Path) -> None:
        """Persist all collections to ``directory`` (JSONL + manifest)."""
        from repro.docstore.storage import save_database

        save_database(self, directory)

    @classmethod
    def load(cls, directory: Path, name: str = "db") -> "Database":
        """Load a database persisted with :meth:`save`."""
        from repro.docstore.storage import load_database

        return load_database(directory, name)

    def __getitem__(self, name: str) -> Collection:
        return self.get_collection(name)

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(name={self.name!r}, collections={self.collection_names()})"


class DatabaseReadView:
    """Read-only snapshot of a database at one published epoch.

    Collection access returns :class:`CollectionSnapshot`\\ s pinned when
    the view was created; the set of collections is pinned too.
    """

    def __init__(self, database: Database) -> None:
        self.name = database.name
        self._snapshots: Dict[str, CollectionSnapshot] = {
            name: collection.snapshot()
            for name, collection in database._collections.items()
        }

    def get_collection(self, name: str) -> CollectionSnapshot:
        snapshot = self._snapshots.get(name)
        if snapshot is None:
            raise CollectionNotFound(f"collection {name!r} does not exist")
        return snapshot

    def collection_names(self) -> List[str]:
        return sorted(self._snapshots)

    def __getitem__(self, name: str) -> CollectionSnapshot:
        return self.get_collection(name)

    def __contains__(self, name: str) -> bool:
        return name in self._snapshots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatabaseReadView(name={self.name!r}, "
            f"collections={self.collection_names()})"
        )


class DurableDatabase(Database):
    """A database whose on-disk state survives a crash at any point.

    Every mutation is appended to a per-collection write-ahead log before
    anything else happens; :meth:`commit` seals the staged operations into
    a new epoch (markers in every log, then an atomic rewrite of the
    ``COMMITTED`` file); :meth:`checkpoint` folds the logs into fresh
    atomic JSONL snapshots and truncates them.  Opening an existing
    directory runs recovery — snapshot load, committed-WAL replay,
    torn-tail truncation — and records what happened in
    :attr:`last_recovery`.

    Crash-consistency contract: reloading the directory after a crash
    always yields exactly the state of some committed epoch — never a
    partially applied commit, even across collections.  ``fsync_batch``
    trades power-loss durability of *staged* (uncommitted) operations for
    append throughput: ``1`` fsyncs every record, ``N`` every N records,
    ``0`` only at commits.  Committed epochs are always fsynced.
    """

    def __init__(
        self,
        directory: Path,
        name: str = "db",
        fsync_batch: int = 0,
        shards: int = 1,
        shard_key: str = "ncid",
        auto_compact: Optional[int] = None,
    ) -> None:
        from repro.docstore.storage import (
            MANIFEST_NAME,
            RecoveryReport,
            load_database,
        )
        from repro.docstore.wal import WalWriter, read_committed_epoch

        super().__init__(name, shards=shards, shard_key=shard_key)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_batch = fsync_batch
        if auto_compact is not None and auto_compact < 1:
            raise DocStoreError(
                f"auto_compact must be a positive op count or None, got {auto_compact}"
            )
        #: Checkpoint automatically once this many operations have been
        #: committed since the last checkpoint (``None`` disables).
        self.auto_compact = auto_compact
        self._ops_since_checkpoint = 0
        self._in_checkpoint = False
        #: What recovery did while opening, or ``None`` for a fresh store.
        self.last_recovery: Optional[RecoveryReport] = None
        #: Reports of the most recent :meth:`scrub` / :meth:`repair` runs.
        self.last_scrub = None
        self.last_repair = None
        self._wal_writer = WalWriter  # late-bound for subclass/test hooks
        self._wals: Dict[str, List["WalWriter"]] = {}
        self._dropped_wals: Dict[str, List["WalWriter"]] = {}
        #: Last WAL sequence number issued per (sharded) collection name.
        self._next_seq: Dict[str, int] = {}
        if (self.directory / MANIFEST_NAME).exists() or any(
            self.directory.glob("*.wal")
        ):
            report = RecoveryReport()
            loaded = load_database(
                self.directory, name, report=report, truncate=True, quarantine=True
            )
            self._collections = loaded._collections
            self._next_seq = dict(getattr(loaded, "_wal_max_seq", {}))
            self.last_recovery = report
        self.committed_epoch = read_committed_epoch(self.directory)
        for collection_name in list(self._collections):
            self._attach(collection_name)
        self._publish_all()

    # ------------------------------------------------------------ journaling

    def _attach(self, collection_name: str) -> None:
        from repro.docstore.wal import wal_filename

        collection = self._collections[collection_name]
        shards = collection.nshards
        writers = self._dropped_wals.pop(collection_name, None)
        if writers is None or len(writers) != shards:
            writers = [
                self._wal_writer(
                    self.directory / wal_filename(collection_name, index, shards),
                    fsync_batch=self.fsync_batch,
                )
                for index in range(shards)
            ]
        self._wals[collection_name] = writers

        if shards == 1:
            def journal(op: str, payload: Dict, partition: int, _writer=writers[0]) -> None:
                _writer.log(op, payload)

            def journal_many(
                op: str, entries: List[Tuple[int, Dict]], _writer=writers[0]
            ) -> None:
                _writer.log_many(op, [payload for _partition, payload in entries])
        else:
            # Partition logs replay as one stream ordered by a per-collection
            # sequence number.  The counter lives on the database (seeded
            # from the highest replayed seq) so it keeps rising across
            # reopen *and* across drop/recreate cycles whose old records
            # are still in the logs awaiting a checkpoint.
            self._next_seq[collection_name] = max(
                self._next_seq.get(collection_name, 0), collection._replayed_seq
            )

            def journal(
                op: str, payload: Dict, partition: int,
                _name=collection_name, _writers=writers,
            ) -> None:
                seq = self._next_seq[_name] + 1
                self._next_seq[_name] = seq
                record = dict(payload)
                record["seq"] = seq
                _writers[partition].log(op, record)

            def journal_many(
                op: str, entries: List[Tuple[int, Dict]],
                _name=collection_name, _writers=writers,
            ) -> None:
                # Sequence numbers are stamped in the caller's (interleaved)
                # order *before* grouping by partition: replay merges the
                # partition streams by seq, so contiguous per-partition runs
                # would reorder a cross-partition batch and change replayed
                # internal-id assignment.
                grouped: Dict[int, List[Dict]] = {}
                for partition, payload in entries:
                    seq = self._next_seq[_name] + 1
                    self._next_seq[_name] = seq
                    record = dict(payload)
                    record["seq"] = seq
                    grouped.setdefault(partition, []).append(record)
                for partition in sorted(grouped):
                    _writers[partition].log_many(op, grouped[partition])

        collection._journal = journal
        collection._journal_many = journal_many

    def create_collection(
        self,
        name: str,
        shards: Optional[int] = None,
        shard_key: Optional[str] = None,
    ) -> Collection:
        collection = super().create_collection(name, shards=shards, shard_key=shard_key)
        self._attach(name)
        # Journal the creation so a *committed* empty collection survives
        # reload; staged-only creations are discarded like any other op.
        # Sharded layouts ride along so replay can rebuild the partitioning.
        payload: Dict[str, object] = {}
        if collection.nshards > 1:
            payload = {"shards": collection.nshards, "shard_key": collection.shard_key}
        collection._journal("create", payload, 0)
        return collection

    def drop_collection(self, name: str) -> None:
        """Drop ``name``; the drop is journaled and committed like any op.

        The collection's files stay on disk (still receiving commit
        markers) until the next :meth:`checkpoint` removes them, so
        recovery can tell a committed drop from lost data.
        """
        writers = self._wals.pop(name, None)
        if writers is not None:
            collection = self._collections[name]
            collection._journal("drop", {}, 0)
            collection._journal = None
            collection._journal_many = None
            self._dropped_wals[name] = writers
        super().drop_collection(name)

    # ------------------------------------------------------- commit/snapshot

    def _all_writers(self) -> List["WalWriter"]:
        # Quarantined partitions' writers are excluded: their log files were
        # moved into the quarantine directory, and appending a commit marker
        # through the stale writer would recreate a fresh (history-less) log
        # that recovery would then misread as lost committed records.
        writers: List["WalWriter"] = []
        for name, group in self._wals.items():
            collection = self._collections.get(name)
            quarantined = collection._quarantined if collection is not None else set()
            writers.extend(
                writer for index, writer in enumerate(group)
                if index not in quarantined
            )
        for group in self._dropped_wals.values():
            writers.extend(group)
        return writers

    def commit(self) -> int:
        """Seal staged operations into a new epoch; returns the epoch.

        A no-op (returning the current epoch) when nothing was staged.
        Markers are appended and fsynced in every log *before* the
        ``COMMITTED`` file is atomically rewritten — a crash anywhere in
        between leaves the previous epoch as the recovered state.
        """
        writers = self._all_writers()
        staged_ops = sum(writer.staged for writer in writers)
        if not staged_ops:
            self._publish_all()
            return self.committed_epoch
        from repro.docstore.wal import write_committed_epoch

        epoch = self.committed_epoch + 1
        for writer in writers:
            writer.commit(epoch)
        write_committed_epoch(self.directory, epoch)
        self.committed_epoch = epoch
        # Only a durably committed epoch becomes visible to new snapshots;
        # a crash before this point leaves readers on the previous epoch,
        # matching what recovery would reconstruct.
        self._publish_all()
        self._ops_since_checkpoint += staged_ops
        if (
            self.auto_compact is not None
            and not self._in_checkpoint
            and self._ops_since_checkpoint >= self.auto_compact
        ):
            self.checkpoint()
        return epoch

    def checkpoint(self) -> int:
        """Commit, snapshot every collection atomically, rotate the logs.

        Returns the committed epoch the snapshot captures.  Safe to crash
        at any point: rotation swaps each log for a fresh header-only file
        atomically (checkpoint → write new log → fsync → rename), so a
        crash leaves either the old full log (whose replay over the new
        snapshot is idempotent) or the already-compacted one — never a
        half-truncated file.  Quarantined collections are skipped entirely:
        their snapshot cannot be rewritten (the healthy shards alone would
        masquerade as the whole collection) and their surviving logs must
        keep the history a stale snapshot lacks until :meth:`repair`.
        """
        from repro.docstore.storage import save_database

        self._in_checkpoint = True
        try:
            epoch = self.commit()
            quarantined_collections = frozenset(
                name
                for name, collection in self._collections.items()
                if collection._quarantined
            )
            save_database(self, self.directory, skip=quarantined_collections)
            fs = faults.current_fs()
            for name, writers in sorted(self._dropped_wals.items()):
                for writer in writers:
                    writer.close()
                    fs.remove(writer.path)
                fs.remove(self.directory / f"{name}.jsonl")
            self._dropped_wals.clear()
            for name, writers in self._wals.items():
                if name in quarantined_collections:
                    continue
                for writer in writers:
                    writer.rotate()
            self._ops_since_checkpoint = 0
            return epoch
        finally:
            self._in_checkpoint = False

    # ---------------------------------------------------------- resilience

    def scrub(self, deep: bool = True):
        """Verify on-disk integrity without modifying anything.

        Checks WAL CRC frames, snapshot checksums against the manifest and
        cross-partition sequence continuity; see
        :func:`repro.docstore.scrub.scrub_database`.  ``deep=False`` skips
        per-line snapshot parsing.  Returns (and stores in
        :attr:`last_scrub`) a :class:`~repro.docstore.scrub.ScrubReport`.
        """
        from repro.docstore.scrub import scrub_database

        report = scrub_database(self.directory, self.name, deep=deep)
        self.last_scrub = report
        return report

    def repair(self):
        """Salvage what the damaged files still hold and lift quarantine.

        Commits any healthy staged work, closes the database, re-runs
        recovery in salvage mode over the restored quarantined files,
        rewrites a clean snapshot and reopens in place.  Returns (and
        stores in :attr:`last_repair`) a
        :class:`~repro.docstore.scrub.RepairReport`.  Data in regions the
        salvage pass cannot parse is dropped — the report says what.
        """
        from repro.docstore.errors import StorageError
        from repro.docstore.scrub import repair_database

        try:
            self.commit()
        except StorageError:
            pass  # poisoned writer: staged tail already lost to the fault
        self.close(commit=False)
        report = repair_database(self.directory, self.name)
        self.__init__(
            self.directory,
            self.name,
            fsync_batch=self.fsync_batch,
            shards=self._default_shards,
            shard_key=self._default_shard_key,
            auto_compact=self.auto_compact,
        )
        self.last_repair = report
        return report

    def stats(self) -> dict:
        stats = super().stats()
        scrub = self.last_scrub
        stats["storage"] = {
            "committed_epoch": self.committed_epoch,
            "ops_since_checkpoint": self._ops_since_checkpoint,
            "auto_compact": self.auto_compact,
            "last_scrub": None if scrub is None else {
                "ok": scrub.ok,
                "errors": len(scrub.errors),
                "warnings": len(scrub.warnings),
            },
        }
        return stats

    def save(self, directory: Path) -> None:
        """Checkpoint when saving in place; plain export elsewhere."""
        if Path(directory).resolve() == self.directory.resolve():
            self.checkpoint()
        else:
            super().save(directory)

    def close(self, commit: bool = True) -> None:
        """Release file handles, committing staged operations by default."""
        if commit:
            self.commit()
        for writer in self._all_writers():
            writer.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableDatabase(name={self.name!r}, directory={str(self.directory)!r}, "
            f"epoch={self.committed_epoch})"
        )
