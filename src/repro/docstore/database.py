"""Databases: named groups of collections with persistence."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.docstore.collection import Collection
from repro.docstore.errors import CollectionNotFound, DocStoreError


class Database:
    """A named set of collections.

    Collections are created lazily through item access (``db["clusters"]``)
    or explicitly with :meth:`create_collection`.  :meth:`save` /
    :meth:`Database.load` persist the whole database as JSONL files plus a
    manifest.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._collections: Dict[str, Collection] = {}
        self._analysis_mode = "lax"
        self._schema = None

    def set_analysis_mode(self, mode: str, schema=None) -> None:
        """Switch static query analysis for all collections.

        ``mode`` is ``"lax"`` (default: queries run unchecked) or
        ``"strict"`` (filters, pipelines and updates are validated by
        :mod:`repro.analysis` before any document is scanned; errors raise
        :class:`~repro.docstore.errors.QueryError`).  ``schema`` is an
        optional :class:`~repro.analysis.SchemaPaths` used for field-path
        checking; without one, strict mode still validates operators, stage
        order and operand shapes.  Applies to existing and future
        collections.
        """
        if mode not in ("lax", "strict"):
            raise DocStoreError(
                f"analysis mode must be 'lax' or 'strict', got {mode!r}"
            )
        self._analysis_mode = mode
        self._schema = schema
        for collection in self._collections.values():
            collection.analysis_mode = mode
            collection.schema = schema

    def create_collection(self, name: str) -> Collection:
        """Create collection ``name``; error if it already exists."""
        if name in self._collections:
            raise DocStoreError(f"collection {name!r} already exists")
        collection = Collection(
            name, analysis_mode=self._analysis_mode, schema=self._schema
        )
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str, create: bool = True) -> Collection:
        """Return collection ``name``, creating it unless ``create=False``."""
        collection = self._collections.get(name)
        if collection is None:
            if not create:
                raise CollectionNotFound(f"collection {name!r} does not exist")
            collection = self.create_collection(name)
        return collection

    def drop_collection(self, name: str) -> None:
        """Remove collection ``name`` (no-op when absent)."""
        self._collections.pop(name, None)

    def collection_names(self) -> List[str]:
        """Sorted names of the existing collections."""
        return sorted(self._collections)

    def save(self, directory: Path) -> None:
        """Persist all collections to ``directory`` (JSONL + manifest)."""
        from repro.docstore.storage import save_database

        save_database(self, directory)

    @classmethod
    def load(cls, directory: Path, name: str = "db") -> "Database":
        """Load a database persisted with :meth:`save`."""
        from repro.docstore.storage import load_database

        return load_database(directory, name)

    def __getitem__(self, name: str) -> Collection:
        return self.get_collection(name)

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(name={self.name!r}, collections={self.collection_names()})"
