"""Exception hierarchy of the embedded document store."""

from __future__ import annotations


class DocStoreError(Exception):
    """Base class of every error raised by :mod:`repro.docstore`."""


class DuplicateKeyError(DocStoreError):
    """A document with the same ``_id`` already exists in the collection."""


class QueryError(DocStoreError):
    """A filter, update or pipeline specification is malformed."""


class CollectionNotFound(DocStoreError):
    """The requested collection does not exist and implicit creation is off."""
