"""Exception hierarchy of the embedded document store."""

from __future__ import annotations


class DocStoreError(Exception):
    """Base class of every error raised by :mod:`repro.docstore`."""


class DuplicateKeyError(DocStoreError):
    """A document with the same ``_id`` already exists in the collection."""


class QueryError(DocStoreError):
    """A filter, update or pipeline specification is malformed."""


class CollectionNotFound(DocStoreError):
    """The requested collection does not exist and implicit creation is off."""


class StorageError(DocStoreError, FileNotFoundError):
    """A persisted database is missing or malformed on disk.

    Also a :class:`FileNotFoundError` so callers that probe for a store with
    ``except FileNotFoundError`` keep working.
    """


class StorageCorruptError(StorageError):
    """A persisted file is damaged beyond what recovery may silently fix.

    Raised when a WAL record in the *committed* region fails its CRC32
    check, when a record is malformed mid-file (valid records follow it),
    or when a snapshot JSONL line cannot be parsed and repair was not
    requested.  Carries the precise location so operators can inspect the
    damage: ``path`` (the file), ``offset`` (byte offset, WALs) or ``line``
    (1-based line number, JSONL snapshots), and ``reason``.
    """

    def __init__(
        self,
        path,
        reason: str,
        offset: "int | None" = None,
        line: "int | None" = None,
    ) -> None:
        self.path = str(path)
        self.reason = reason
        self.offset = offset
        self.line = line
        where = ""
        if offset is not None:
            where = f" at byte {offset}"
        elif line is not None:
            where = f" at line {line}"
        super().__init__(f"{self.path}{where}: {reason}")


class QuarantineError(DocStoreError):
    """An operation touched a quarantined (fault-isolated) shard.

    When recovery finds a corrupt partition WAL or snapshot it moves the
    damaged file into a ``<file>.quarantined/`` directory and flags the
    partition in the manifest instead of failing the whole database open
    (see ``docs/durability.md``).  The collection then serves *degraded*:
    operations confined to healthy shards proceed normally, operations
    that would touch a quarantined shard raise a subclass of this error.
    ``Database.repair()`` re-runs salvage and lifts the quarantine.
    """

    def __init__(self, collection: str, shards, operation: str) -> None:
        self.collection = collection
        self.shards = sorted(shards)
        self.operation = operation
        super().__init__(
            f"{operation} on collection {collection!r} touches quarantined "
            f"shard(s) {self.shards}; repair() the database to lift quarantine"
        )


class DegradedReadError(QuarantineError):
    """A read's shard routing includes a quarantined partition.

    Scatter reads can opt into partial results with
    ``allow_degraded=True``, which returns documents from the healthy
    shards and emits a :class:`DegradedReadWarning` instead.
    """


class DegradedWriteError(QuarantineError):
    """A write would land on (or migrate into) a quarantined partition.

    Writes have no degraded opt-in: accepting a write the quarantined
    shard cannot journal would silently diverge from the log.
    """


class DegradedReadWarning(UserWarning):
    """A degraded read returned results from healthy shards only."""


class UnknownIndexKind(DocStoreError, ValueError):
    """An index was requested with an unsupported ``kind``.

    Also a :class:`ValueError` for backwards compatibility with callers that
    treat a bad index kind as an ordinary argument error.
    """
