"""Exception hierarchy of the embedded document store."""

from __future__ import annotations


class DocStoreError(Exception):
    """Base class of every error raised by :mod:`repro.docstore`."""


class DuplicateKeyError(DocStoreError):
    """A document with the same ``_id`` already exists in the collection."""


class QueryError(DocStoreError):
    """A filter, update or pipeline specification is malformed."""


class CollectionNotFound(DocStoreError):
    """The requested collection does not exist and implicit creation is off."""


class StorageError(DocStoreError, FileNotFoundError):
    """A persisted database is missing or malformed on disk.

    Also a :class:`FileNotFoundError` so callers that probe for a store with
    ``except FileNotFoundError`` keep working.
    """


class UnknownIndexKind(DocStoreError, ValueError):
    """An index was requested with an unsupported ``kind``.

    Also a :class:`ValueError` for backwards compatibility with callers that
    treat a bad index kind as an ordinary argument error.
    """
