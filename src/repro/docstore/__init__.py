"""An embedded, aggregate-oriented document store.

The paper stores its test dataset in MongoDB: one document per voter
(duplicate cluster), nested record documents, indexes for selection and an
aggregation pipeline for customisation (Section 5).  This package provides an
embedded Python substitute with the same data model and the three
capabilities the pipeline relies on:

* **aggregate-oriented storage** — documents are arbitrarily nested dicts /
  lists accessed by dotted paths, grouped per cluster;
* **indexes** — hash and sorted indexes that accelerate equality and range
  queries;
* **aggregation pipeline** — multi-stage ``$match/$project/$group/$unwind/
  $sort/$limit/...`` pipelines for filtering, transformation, grouping and
  sorting.

Collections can be hash-partitioned into N shards keyed by a per-collection
shard key (default ``ncid``): point queries on the shard key route to a
single partition, everything else scatter-gathers with bit-identical
results, and readers see snapshot-isolated epochs published atomically at
``commit()``.  See ``docs/data-model.md``.

Persistence is line-delimited JSON per collection plus a database manifest,
so datasets survive process restarts and can be shipped as plain files.

Queries and pipelines can additionally be vetted *before* execution by the
static analyzer in :mod:`repro.analysis`; see
:meth:`Database.set_analysis_mode` and :attr:`Collection.analysis_mode`.
"""

from __future__ import annotations

from repro.docstore.collection import Collection, CollectionSnapshot
from repro.docstore.database import Database, DatabaseReadView, DurableDatabase
from repro.docstore.partition import Partition, fallback_shard, shard_key_shard
from repro.docstore.documents import get_path, set_path, unset_path
from repro.docstore.errors import (
    CollectionNotFound,
    DegradedReadError,
    DegradedReadWarning,
    DegradedWriteError,
    DocStoreError,
    DuplicateKeyError,
    QuarantineError,
    QueryError,
    StorageCorruptError,
    StorageError,
    UnknownIndexKind,
)
from repro.docstore.scrub import (
    RepairReport,
    ScrubFinding,
    ScrubReport,
    repair_database,
    scrub_database,
)
from repro.docstore.storage import RecoveryReport

__all__ = [
    "Database",
    "DatabaseReadView",
    "DurableDatabase",
    "Collection",
    "CollectionSnapshot",
    "Partition",
    "shard_key_shard",
    "fallback_shard",
    "DocStoreError",
    "DuplicateKeyError",
    "QueryError",
    "StorageError",
    "StorageCorruptError",
    "QuarantineError",
    "DegradedReadError",
    "DegradedWriteError",
    "DegradedReadWarning",
    "RecoveryReport",
    "ScrubFinding",
    "ScrubReport",
    "RepairReport",
    "scrub_database",
    "repair_database",
    "UnknownIndexKind",
    "CollectionNotFound",
    "get_path",
    "set_path",
    "unset_path",
]
