"""An embedded, aggregate-oriented document store.

The paper stores its test dataset in MongoDB: one document per voter
(duplicate cluster), nested record documents, indexes for selection and an
aggregation pipeline for customisation (Section 5).  This package provides an
embedded Python substitute with the same data model and the three
capabilities the pipeline relies on:

* **aggregate-oriented storage** — documents are arbitrarily nested dicts /
  lists accessed by dotted paths, grouped per cluster;
* **indexes** — hash and sorted indexes that accelerate equality and range
  queries;
* **aggregation pipeline** — multi-stage ``$match/$project/$group/$unwind/
  $sort/$limit/...`` pipelines for filtering, transformation, grouping and
  sorting.

Persistence is line-delimited JSON per collection plus a database manifest,
so datasets survive process restarts and can be shipped as plain files.
"""

from repro.docstore.collection import Collection
from repro.docstore.database import Database
from repro.docstore.documents import get_path, set_path, unset_path
from repro.docstore.errors import (
    CollectionNotFound,
    DocStoreError,
    DuplicateKeyError,
    QueryError,
)

__all__ = [
    "Database",
    "Collection",
    "DocStoreError",
    "DuplicateKeyError",
    "QueryError",
    "CollectionNotFound",
    "get_path",
    "set_path",
    "unset_path",
]
