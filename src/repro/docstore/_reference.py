"""Naive full-scan reference implementations of collection reads.

These mirror the pre-planner execution paths line for line: scan every
document in ascending internal-id order, evaluate the *full* compiled
filter against each, deep-copy every match, then sort / window / project.
No index is ever consulted.

They exist so property tests and ``benchmarks/docstore_bench.py`` can
assert that planned reads (:mod:`repro.docstore.planner`) are
**bit-identical** to a forced full scan — same documents, same order, same
copies — while measuring the speedup.  Follows the in-tree oracle pattern
of ``repro.textsim._reference`` and ``repro.core._reference``.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, List, Optional

from repro.docstore.aggregation import _sort_key, run_pipeline
from repro.docstore.documents import deep_copy, get_path
from repro.docstore.matching import compile_filter


def scan_ids(collection: Any, filter_doc: Optional[dict] = None) -> Iterator[int]:
    """Ids of matching documents by brute force, in ascending id order."""
    predicate = compile_filter(filter_doc) if filter_doc else None
    for internal_id in sorted(collection._documents):
        document = collection._documents[internal_id]
        if predicate is None or predicate(document):
            yield internal_id


def find_full_scan(
    collection: Any,
    filter_doc: Optional[dict] = None,
    projection: Optional[dict] = None,
    sort: Optional[List[tuple]] = None,
    limit: Optional[int] = None,
    skip: int = 0,
) -> List[dict]:
    """``Collection.find`` semantics with every index ignored."""
    documents = (
        collection._documents[internal_id]
        for internal_id in scan_ids(collection, filter_doc)
    )
    if sort:
        results = [deep_copy(document) for document in documents]
        for field, direction in reversed(sort):
            results.sort(
                key=lambda doc, field=field: _sort_key(get_path(doc, field)),
                reverse=direction == -1,
            )
        if skip:
            results = results[skip:]
        if limit is not None:
            results = results[:limit]
    else:
        stop = None if limit is None else skip + limit
        results = [
            deep_copy(document)
            for document in itertools.islice(documents, skip, stop)
        ]
    if projection:
        results = list(run_pipeline(results, [{"$project": projection}]))
    return results


def count_full_scan(collection: Any, filter_doc: Optional[dict] = None) -> int:
    """``Collection.count_documents`` semantics with every index ignored."""
    if not filter_doc:
        return len(collection._documents)
    return sum(1 for _ in scan_ids(collection, filter_doc))


def distinct_full_scan(
    collection: Any, path: str, filter_doc: Optional[dict] = None
) -> List[Any]:
    """``Collection.distinct`` semantics with every index ignored."""
    seen: dict = {}
    for internal_id in scan_ids(collection, filter_doc):
        document = collection._documents[internal_id]
        value = get_path(document, path, default=None)
        values = value if isinstance(value, list) else [value]
        for element in values:
            if element is not None:
                seen.setdefault(repr(element), element)
    return [seen[key] for key in sorted(seen)]


def aggregate_full_scan(collection: Any, pipeline: List[dict]) -> List[dict]:
    """``Collection.aggregate`` semantics with no pushdown: deep-copy all."""
    source = (
        deep_copy(collection._documents[internal_id])
        for internal_id in sorted(collection._documents)
    )
    return list(run_pipeline(source, pipeline))
