"""Per-collection plan caching keyed by query shape and query value.

Warm reads used to pay the whole planning pipeline on every call:
``compile_filter`` over the full filter, conjunct splitting, option
pricing against every index, candidate materialization, residual
recompilation.  This module memoizes that work at three grains:

* **Predicate cache** (module-level, process-local): ``compile_filter``
  results keyed by a type-tagged deep-freeze of the filter document.
  Compiled predicates are pure closures over the filter, so the cache is
  safe to share across collections and epochs.
* **Shape templates** (per collection): the planner's *decision* — which
  access path wins, which conjuncts it covers, and a constant-free recipe
  for re-fetching the candidate set — keyed by the filter's shape: its
  structure and operator skeleton with every constant replaced by the
  classification the planner actually branches on (``None``-ness,
  list-ness, sorted-range type class).  A template re-binds to any
  partition state and any same-shaped constants via
  :func:`repro.docstore.planner.bind_template`, which recomputes all
  value-dependent pieces, so cached decisions can never change results —
  only skip the pricing pass.
* **Bound plans + routes** (per collection): fully bound per-partition
  plans (candidate ids included) and ``route_shards`` results keyed by the
  frozen query, so an exactly repeated read skips planning entirely.

Shape templates and bound plans are invalidated wholesale whenever the
collection's write epoch moves (every mutation and index build bumps it);
routes depend only on the immutable shard layout and the filter value, so
they survive epochs.  Caches are size-bounded with FIFO eviction.  Like
the collection itself, the caches may only be shared across threads for
*reads*; the write path (which bumps the epoch) requires external
serialization, as documented on :class:`repro.docstore.Collection`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.docstore.matching import Predicate, _is_operator_doc, compile_filter
from repro.docstore.planner import (
    _RANGE_TYPES,
    Plan,
    PlanChoice,
    _range_class,
    _split_conjuncts,
    bind_template,
    plan_read_with_choice,
    plan_states,
    route_shards,
)

__all__ = ["PlanCache", "cached_predicate", "freeze_query", "query_shape"]

#: Sentinels distinguishing "absent" from legitimately-``None`` values.
_UNHASHABLE = object()
_MISSING = object()

#: Process-local memo of compiled filter predicates, keyed by
#: :func:`freeze_query`-style frozen filter documents.  Invariant: a
#: ``Predicate`` is a pure closure over its (logically immutable) filter
#: document, so concurrent lookups may race only on insertion order, never
#: on correctness; the cache must never be keyed by anything that can
#: change meaning across collections, epochs, or processes.
_PREDICATE_CACHE: Dict[Any, Predicate] = {}
_PREDICATE_CACHE_LIMIT = 1024


# ------------------------------------------------------------- freezing


def freeze_value(value: Any) -> Any:
    """A hashable, type-tagged snapshot of a filter value.

    Scalars carry their exact type name so ``1``/``True``/``1.0`` (equal
    and hash-equal in Python) freeze to distinct keys — their compiled
    predicates differ.  Returns the ``_UNHASHABLE`` sentinel when the
    value contains something that cannot be frozen.
    """
    kind = value.__class__
    if value is None or kind is bool or kind is int or kind is float or kind is str:
        return (kind.__name__, value)
    if isinstance(value, dict):
        items = []
        for key, item in value.items():
            frozen = freeze_value(item)
            if frozen is _UNHASHABLE:
                return _UNHASHABLE
            items.append((key, frozen))
        return ("d", tuple(items))
    if isinstance(value, (list, tuple)):
        parts = []
        for item in value:
            frozen = freeze_value(item)
            if frozen is _UNHASHABLE:
                return _UNHASHABLE
            parts.append(frozen)
        return ("l", tuple(parts))
    if isinstance(value, (set, frozenset)):
        frozen_items = [freeze_value(item) for item in value]
        if any(item is _UNHASHABLE for item in frozen_items):
            return _UNHASHABLE
        return ("s", tuple(sorted(frozen_items, key=repr)))
    try:
        hash(value)
    except TypeError:
        return _UNHASHABLE
    return ("o", type(value).__name__, value)


def freeze_query(
    filter_doc: Optional[dict], sort: Optional[Sequence[Tuple[str, int]]]
) -> Any:
    """Cache key for one logical read, or ``_UNHASHABLE``."""
    frozen_filter = freeze_value(filter_doc) if filter_doc else None
    if frozen_filter is _UNHASHABLE:
        return _UNHASHABLE
    frozen_sort: Any = None
    if sort:
        try:
            frozen_sort = tuple(tuple(item) for item in sort)
            hash(frozen_sort)
        except TypeError:
            return _UNHASHABLE
    return (frozen_filter, frozen_sort)


# ---------------------------------------------------------------- shapes


def _operand_tag(op: str, operand: Any) -> Any:
    """The operand classification planning branches on, and nothing more."""
    if op == "$in":
        if isinstance(operand, (list, tuple)):
            return (
                "in",
                tuple(
                    (
                        element is None,
                        isinstance(element, list),
                        _range_class(element),
                        isinstance(element, _RANGE_TYPES),
                    )
                    for element in operand
                ),
            )
        if isinstance(operand, (set, frozenset)):
            tags = sorted(
                (
                    element is None,
                    isinstance(element, list),
                    _range_class(element) or "",
                    isinstance(element, _RANGE_TYPES),
                )
                for element in operand
            )
            return ("in-set", tuple(tags))
        return ("in-other", type(operand).__name__)
    return (
        operand is None,
        isinstance(operand, list),
        _range_class(operand),
        isinstance(operand, _RANGE_TYPES),
    )


def query_shape(filter_doc: dict) -> Any:
    """The filter's structure with constants reduced to planning tags.

    Mirrors ``_split_conjuncts``'s walk exactly, so equal shapes guarantee
    an identical clause/atom skeleton (same clause positions, same atom
    operators and operand classifications) — the invariant that makes a
    cached :class:`~repro.docstore.planner.PlanChoice` sound to re-bind.
    """
    parts: List[Any] = []
    for key, condition in filter_doc.items():
        if (
            key == "$and"
            and isinstance(condition, (list, tuple))
            and condition
            and all(isinstance(sub, dict) for sub in condition)
        ):
            parts.append(("and", tuple(query_shape(sub) for sub in condition)))
        elif isinstance(key, str) and key.startswith("$"):
            # One opaque clause; its content only ever reaches the residual,
            # which is rebuilt from the live filter at bind time.
            parts.append(("top", key, condition.__class__.__name__))
        elif _is_operator_doc(condition):
            parts.append(
                (
                    "ops",
                    key,
                    tuple(
                        (op, _operand_tag(op, operand))
                        for op, operand in condition.items()
                    ),
                )
            )
        else:
            parts.append(("eq", key, _operand_tag("$eq", condition)))
    return tuple(parts)


# ------------------------------------------------------------ predicates


def cached_predicate(filter_doc: dict) -> Predicate:
    """``compile_filter`` through the process-local predicate memo.

    Raises exactly like ``compile_filter`` for malformed filters (only
    successful compiles are cached).
    """
    key = freeze_value(filter_doc)
    if key is _UNHASHABLE:
        return compile_filter(filter_doc)
    predicate = _PREDICATE_CACHE.get(key)
    if predicate is None:
        predicate = compile_filter(filter_doc)
        if len(_PREDICATE_CACHE) >= _PREDICATE_CACHE_LIMIT:
            _PREDICATE_CACHE.pop(next(iter(_PREDICATE_CACHE)), None)
        _PREDICATE_CACHE[key] = predicate
    return predicate


# ------------------------------------------------------------ plan cache


def _fresh_plan(plan: Plan) -> Plan:
    """A copy of a cached plan with its own ``pushdown`` list.

    Callers *reassign* ``plan.pushdown`` (never mutate the other fields),
    so everything else can be shared.  Built by direct construction:
    ``dataclasses.replace`` costs several microseconds of dataclass
    machinery, which is real money on a sub-10µs warm point read.
    """
    return Plan(
        plan.access,
        plan.candidate_ids,
        plan.index_name,
        plan.indexes_used,
        plan.residual,
        plan.residual_predicate,
        plan.order,
        plan.order_index,
        plan.reverse,
        plan.sort_spec,
        [],
    )


class PlanCache:
    """Epoch-invalidated routing + planning memo for one collection."""

    __slots__ = (
        "epoch",
        "hits",
        "misses",
        "invalidated",
        "_plans",
        "_templates",
        "_routes",
    )

    #: FIFO bound for each per-collection map.
    LIMIT = 512

    def __init__(self) -> None:
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        # frozen query -> (routed partition indices, pristine bound plans)
        self._plans: Dict[Any, Tuple[Tuple[int, ...], List[Plan]]] = {}
        # query shape -> Optional[PlanChoice] (None = full-scan decision)
        self._templates: Dict[Any, Optional[PlanChoice]] = {}
        # frozen filter -> Optional[Tuple[int, ...]] route_shards result
        self._routes: Dict[Any, Optional[Tuple[int, ...]]] = {}

    def stats(self) -> Dict[str, int]:
        """The counters ``Collection.explain`` reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
        }

    # -- lookup --------------------------------------------------------

    def routed_plans(
        self,
        collection: Any,
        filter_doc: Optional[dict],
        sort: Optional[Sequence[Tuple[str, int]]] = None,
    ) -> Tuple[List[Any], List[Plan]]:
        """Routed partition states + one bound plan per state, memoized."""
        epoch = collection._write_epoch
        if epoch != self.epoch:
            if self._plans or self._templates:
                self.invalidated += 1
                self._plans.clear()
                self._templates.clear()
            self.epoch = epoch

        if filter_doc is not None and not isinstance(filter_doc, dict):
            return self._cold(collection, filter_doc, sort)
        key = freeze_query(filter_doc, sort)
        if key is _UNHASHABLE:
            return self._cold(collection, filter_doc, sort)

        entry = self._plans.get(key)
        if entry is not None:
            self.hits += 1
            indices, plans = entry
            states = [collection._partitions[i].live for i in indices]
            return states, [_fresh_plan(p) for p in plans]

        self.misses += 1
        indices = self._routed_indices(collection, filter_doc, key[0])
        states = [collection._partitions[i].live for i in indices]
        if not states and filter_doc:
            # Pruned-to-nothing routing must still surface malformed-filter
            # errors exactly like the planned path would.
            cached_predicate(filter_doc)
        plans = self._build_plans(states, filter_doc, sort)
        if plans is None:
            return states, plan_states(states, filter_doc, sort)
        if len(self._plans) >= self.LIMIT:
            self._plans.pop(next(iter(self._plans)), None)
        self._plans[key] = (indices, plans)
        return states, [_fresh_plan(p) for p in plans]

    # -- internals -----------------------------------------------------

    def _cold(
        self,
        collection: Any,
        filter_doc: Optional[dict],
        sort: Optional[Sequence[Tuple[str, int]]],
    ) -> Tuple[List[Any], List[Plan]]:
        """The uncached routing + planning path (unfreezable queries)."""
        states = [
            collection._partitions[index].live
            for index in collection._route(filter_doc)
        ]
        if not states and filter_doc:
            compile_filter(filter_doc)
        return states, plan_states(states, filter_doc, sort)

    def _routed_indices(
        self, collection: Any, filter_doc: Optional[dict], filter_key: Any
    ) -> Tuple[int, ...]:
        shards = collection.nshards
        if shards <= 1:
            return (0,)
        if collection._shard_key_lists:
            return tuple(range(shards))
        routed = self._routes.get(filter_key, _MISSING)
        if routed is _MISSING:
            hit = route_shards(collection.shard_key, shards, filter_doc)
            routed = tuple(hit) if hit is not None else None
            if len(self._routes) >= self.LIMIT:
                self._routes.pop(next(iter(self._routes)), None)
            self._routes[filter_key] = routed
        if routed is None:
            return tuple(range(shards))
        return routed  # type: ignore[return-value]

    def _build_plans(
        self,
        states: List[Any],
        filter_doc: Optional[dict],
        sort: Optional[Sequence[Tuple[str, int]]],
    ) -> Optional[List[Plan]]:
        """Template-driven per-state plans, or ``None`` to fall back cold."""
        if not states:
            return []
        shape = query_shape(filter_doc) if filter_doc else ()
        clauses, atoms = _split_conjuncts(filter_doc) if filter_doc else ([], [])

        template = self._templates.get(shape, _MISSING)
        plans: List[Plan] = []
        if template is _MISSING:
            plan0, choice = plan_read_with_choice(
                states[0], filter_doc, sort, predicate_for=cached_predicate
            )
            if len(self._templates) >= self.LIMIT:
                self._templates.pop(next(iter(self._templates)), None)
            self._templates[shape] = choice
            plans.append(plan0)
            rest = states[1:]
        else:
            choice = template  # type: ignore[assignment]
            rest = states
        for state in rest:
            plan = bind_template(
                state, choice, filter_doc, clauses, atoms, sort, cached_predicate
            )
            if plan is None:
                return None
            plans.append(plan)
        return plans
