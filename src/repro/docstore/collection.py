"""Collections: CRUD, indexes and aggregation over documents.

Storage is partitioned: a collection owns N hash shards
(:class:`~repro.docstore.partition.Partition`), each with its own document
map, ``_id`` map and secondary indexes.  ``shards=1`` (the default) is the
classic single-dict store; sharded collections place documents by the
collection's ``shard_key`` (``ncid`` by default — string values hash to a
shard, everything else falls back to an ``_id`` hash) and reads route:
a filter that pins the shard key touches one shard, anything else
scatter-gathers with k-way merges that reproduce the unsharded order
bit-for-bit (:mod:`repro.docstore.planner`).
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.docstore.aggregation import run_pipeline
from repro.docstore.documents import deep_copy, get_path, set_path, unset_path
from repro.docstore.errors import (
    DegradedReadError,
    DegradedReadWarning,
    DegradedWriteError,
    DuplicateKeyError,
    QueryError,
)
from repro.docstore.indexes import HashIndex, build_index
from repro.docstore.matching import compile_filter
from repro.docstore.partition import Partition, fallback_shard, shard_key_shard
from repro.docstore.plancache import PlanCache
from repro.docstore.planner import (
    count_sharded,
    execute_partial_group,
    execute_sharded_find,
    iter_matching_ids,
    iter_sharded_matching,
    partial_group_spec,
    plan_read,
    plan_states,
    route_shards,
    split_pushdown,
)
from repro.docstore.views import lazy_document, wrap_value

#: Valid ``Collection(copy_mode=...)`` values: lazy copy-on-read views
#: (the default) or the historical deep-copy-every-result behaviour.
_COPY_MODES = ("lazy", "eager")

#: Sentinel for $rename on an absent source path (a silent no-op).
_RENAME_MISSING = object()


class Collection:
    """A named set of documents with optional secondary indexes.

    Documents receive an auto-assigned ``_id`` (an integer) unless the caller
    provides one.  ``_id`` values are unique within the collection.  Reads
    return copy-on-read views (:class:`~repro.docstore.views.DocumentView`)
    so callers can never corrupt the store by mutating a result; pass
    ``copy_mode="eager"`` to restore full deep copies per result.

    ``analysis_mode`` selects how queries are vetted before execution:
    ``"lax"`` (the default) executes them as-is, ``"strict"`` runs the
    static analyzer from :mod:`repro.analysis` first and raises
    :class:`QueryError` — with did-you-mean hints — before a single document
    is scanned.  Attach a :class:`repro.analysis.SchemaPaths` via ``schema``
    to additionally validate dotted field paths in strict mode.

    ``shards``/``shard_key`` select the partition layout (see the module
    docstring); ``read_workers`` > 1 fans scatter-gather reads out over
    threads (:func:`repro.core.parallel.run_read_shards`).
    """

    def __init__(
        self,
        name: str,
        analysis_mode: str = "lax",
        schema: Optional[Any] = None,
        shards: int = 1,
        shard_key: str = "ncid",
        copy_mode: str = "lazy",
    ) -> None:
        if shards < 1:
            raise QueryError(f"shards must be >= 1, got {shards}")
        if copy_mode not in _COPY_MODES:
            raise QueryError(
                f"copy_mode must be one of {_COPY_MODES}, got {copy_mode!r}"
            )
        self.name = name
        self.analysis_mode = analysis_mode
        #: Optional ``repro.analysis.SchemaPaths`` for field-path validation.
        self.schema = schema
        self.shard_key = shard_key
        #: ``"lazy"`` = copy-on-read document views, ``"eager"`` = deep copies.
        self.copy_mode = copy_mode
        #: Thread fan-out for scatter-gather reads (0/1 = sequential).
        self.read_workers = 0
        #: Monotonic write counter: every mutation (and index build) bumps
        #: it, invalidating the plan cache's epoch-scoped entries.
        self._write_epoch = 0
        #: Shape/value plan memo (see :mod:`repro.docstore.plancache`).
        self._plan_cache = PlanCache()
        #: Escape hatch (and benchmark knob): ``False`` forces cold planning.
        self.plan_cache_enabled = True
        self._partitions: List[Partition] = [Partition() for _ in range(shards)]
        #: The last committed epoch as ONE tuple, reassigned atomically at
        #: the end of :meth:`_publish`.  Snapshots read this single
        #: attribute instead of walking ``partition.published`` one shard
        #: at a time, so a snapshot taken while a commit is publishing
        #: sees the whole old epoch or the whole new one — never a mix.
        self._published_states: Tuple[Any, ...] = tuple(
            partition.published for partition in self._partitions
        )
        self._next_internal_id = itertools.count(1)
        #: Sticky count of placements that saw a *list* shard-key value.
        #: Any such document disables shard-key routing permanently (it
        #: matches string equalities but is fallback-placed), which keeps
        #: routing sound for snapshots taken at any epoch.
        self._shard_key_lists = 0
        #: Highest committed WAL sequence number replayed into this
        #: collection (set by recovery; journaling resumes after it).
        self._replayed_seq = 0
        #: Partition indices recovery took dark (corrupt WAL/snapshot).
        #: Reads touching them raise :class:`DegradedReadError` (or skip
        #: them under ``allow_degraded=True``); writes are refused.  Their
        #: partitions are emptied, so ``len``/iteration see healthy shards.
        self._quarantined: set = set()
        #: Reads that opted into degraded results (resilience counter).
        self._degraded_reads = 0
        #: Write-ahead-log hook ``(op, payload, partition) -> None`` set by
        #: :class:`~repro.docstore.database.DurableDatabase`; ``None`` keeps
        #: the collection purely in-memory.  Called *after* the in-memory
        #: mutation succeeds; the hook serializes immediately, so later
        #: mutation of the same document cannot corrupt the journal.
        self._journal: Optional[Any] = None
        #: Batched journal hook ``(op, [(partition, payload), ...]) -> None``
        #: set alongside ``_journal``; one WAL write + one fsync per batch.
        #: Falls back to per-op ``_journal`` calls when unset.
        self._journal_many: Optional[Any] = None

    # ------------------------------------------------------------ partitions

    @property
    def nshards(self) -> int:
        """Number of hash partitions (1 = unsharded)."""
        return len(self._partitions)

    @property
    def _documents(self) -> Dict[int, dict]:
        """The live document map (merged across shards when sharded).

        For ``shards=1`` this is *the* partition's map (same object the
        planner mutates against); sharded collections return a merged copy
        — used only by oracles and tests, never on a hot path.
        """
        if len(self._partitions) == 1:
            return self._partitions[0].live._documents
        merged: Dict[int, dict] = {}
        for partition in self._partitions:
            merged.update(partition.live._documents)
        return merged

    @property
    def _by_user_id(self) -> Dict[Any, int]:
        if len(self._partitions) == 1:
            return self._partitions[0].live._by_user_id
        merged: Dict[Any, int] = {}
        for partition in self._partitions:
            merged.update(partition.live._by_user_id)
        return merged

    @property
    def _indexes(self) -> Dict[str, Any]:
        """Partition 0's live indexes (every partition has the same specs)."""
        return self._partitions[0].live._indexes

    @_indexes.setter
    def _indexes(self, value: Dict[str, Any]) -> None:
        # Test hook (index spies et al.); only meaningful for shards=1.
        self._bump_epoch()
        self._partitions[0].writable()._indexes = value

    def _bump_epoch(self) -> None:
        """Invalidate epoch-scoped plan-cache entries (called before writes)."""
        self._write_epoch += 1

    @property
    def _materialize(self) -> Any:
        """Per-document result materializer for the current copy mode."""
        return deep_copy if self.copy_mode == "eager" else lazy_document

    @property
    def _copy_value(self) -> Any:
        """Extracted-value materializer for the current copy mode."""
        return deep_copy if self.copy_mode == "eager" else wrap_value

    def _expose_for_read(self) -> None:
        """Drop in-place document ownership before handing out lazy views.

        Lazy results share container structure with live documents, so an
        in-place update after a read would rewrite views the caller
        already holds.  Exposing makes the next ``writable_document``
        deep-copy first; pure write runs (no interleaved reads) keep the
        mutate-in-place fast path.  Eager mode returns independent deep
        copies and needs no exposure; snapshot reads serve published
        states, which writers copy rather than mutate.
        """
        if self.copy_mode == "lazy":
            for partition in self._partitions:
                partition.expose()

    def _placement(self, stored: dict) -> int:
        """Partition index a stored document belongs to."""
        shards = len(self._partitions)
        if shards == 1:
            return 0
        value = get_path(stored, self.shard_key, default=None)
        if isinstance(value, list):
            self._shard_key_lists += 1
            value = None
        if isinstance(value, str):
            return shard_key_shard(value, shards)
        return fallback_shard(_freeze_id(stored.get("_id")), shards)

    def _route(self, filter_doc: Optional[dict]) -> List[int]:
        """Partition indices a filter must touch (in index order)."""
        shards = len(self._partitions)
        if shards == 1:
            return [0]
        if self._shard_key_lists:
            return list(range(shards))
        routed = route_shards(self.shard_key, shards, filter_doc)
        return list(range(shards)) if routed is None else routed

    def _plan_routed(
        self,
        filter_doc: Optional[dict],
        sort: Optional[List[tuple]] = None,
    ) -> Tuple[List[Any], List[Any]]:
        """Route, then plan the read per touched partition state.

        Served from the per-collection plan cache when enabled: an exactly
        repeated query replays its routed indices and bound plans, a new
        query of a known shape skips option pricing, and any write since
        the last lookup invalidates both (epoch check).
        """
        if self.plan_cache_enabled:
            return self._plan_cache.routed_plans(self, filter_doc, sort)
        states = [self._partitions[i].live for i in self._route(filter_doc)]
        if not states and filter_doc:
            compile_filter(filter_doc)  # malformed filters raise as usual
        return states, plan_states(states, filter_doc, sort)

    def _read_workers(self, states: List[Any]) -> int:
        return self.read_workers if len(states) > 1 else 0

    # ------------------------------------------------------------ quarantine

    @property
    def quarantined_shards(self) -> List[int]:
        """Partition indices currently quarantined (empty when healthy)."""
        return sorted(self._quarantined)

    def _quarantine_shards(self, indices: Iterable[int]) -> None:
        """Take shards dark: swap in empty partitions with fresh indexes.

        Called by recovery *after* replay.  The partition is replaced, not
        merely flagged, so documents a stale snapshot loaded into the dark
        shard can never be served as live data — the authoritative copy is
        whatever sits in the quarantine directory until ``repair()``.
        """
        specs = self.index_specs()
        self._bump_epoch()
        for index in indices:
            partition = Partition()
            state = partition.live
            for spec in specs:
                built = build_index(spec["kind"], spec["path"])
                built.flush()
                state._indexes[f"{spec['path']}_{spec['kind']}"] = built
            self._partitions[index] = partition
            self._quarantined.add(index)
        # Re-pin the published epoch so snapshots can never resurrect the
        # dark shards' stale states (healthy entries are unchanged).
        self._published_states = tuple(
            partition.published for partition in self._partitions
        )

    def _healthy_route(
        self,
        filter_doc: Optional[dict],
        *,
        allow_degraded: bool = False,
        op: str = "read",
        write: bool = False,
    ) -> List[int]:
        """Route, then enforce the quarantine policy on the touched shards.

        Healthy collections (the overwhelmingly common case) route as
        usual.  When the routing of a degraded collection touches a
        quarantined shard: writes raise :class:`DegradedWriteError`, reads
        raise :class:`DegradedReadError` unless ``allow_degraded`` — which
        instead warns (:class:`DegradedReadWarning`) and returns the
        healthy subset.
        """
        indices = self._route(filter_doc)
        if not self._quarantined:
            return indices
        touched = [index for index in indices if index in self._quarantined]
        if not touched:
            return indices
        if write:
            raise DegradedWriteError(self.name, touched, op)
        if not allow_degraded:
            raise DegradedReadError(self.name, touched, op)
        warnings.warn(
            DegradedReadWarning(
                f"{op} on collection {self.name!r} skipped quarantined "
                f"shard(s) {sorted(touched)}; results cover healthy shards only"
            ),
            stacklevel=3,
        )
        self._degraded_reads += 1
        return [index for index in indices if index not in self._quarantined]

    def _plan_healthy(
        self,
        filter_doc: Optional[dict],
        sort: Optional[List[tuple]] = None,
        *,
        allow_degraded: bool = False,
        op: str = "read",
    ) -> Tuple[List[Any], List[Any]]:
        """:meth:`_plan_routed` with the quarantine policy applied.

        Degraded collections bypass the plan cache entirely: its memoized
        shard routes survive epoch bumps by design and know nothing about
        quarantine, so a cached scatter route could silently read a dark
        shard's (empty) partition without raising.
        """
        if not self._quarantined:
            return self._plan_routed(filter_doc, sort)
        indices = self._healthy_route(
            filter_doc, allow_degraded=allow_degraded, op=op
        )
        states = [self._partitions[i].live for i in indices]
        if not states and filter_doc:
            compile_filter(filter_doc)
        return states, plan_states(states, filter_doc, sort)

    def snapshot(self) -> "CollectionSnapshot":
        """A consistent read-only view of the last published epoch.

        The view pins every partition's ``published`` state: a concurrent
        writer copies before mutating (copy-on-write), so the snapshot's
        results never change — even while a commit publishes a new epoch.
        """
        return CollectionSnapshot(self)

    def _publish(self) -> None:
        """Publish the live state of every partition (commit barrier).

        Per-partition publication (index flushes included) happens first;
        the final tuple assignment is the single atomic step that makes
        the new epoch visible to :meth:`snapshot`.
        """
        for partition in self._partitions:
            partition.publish()
        self._published_states = tuple(
            partition.published for partition in self._partitions
        )

    # ------------------------------------------------------------------ CRUD

    def insert_one(self, document: dict) -> Any:
        """Insert ``document`` and return its ``_id``."""
        if not isinstance(document, dict):
            raise QueryError(f"documents must be dicts, got {type(document).__name__}")
        self._bump_epoch()
        stored = deep_copy(document)
        internal_id = next(self._next_internal_id)
        if "_id" not in stored:
            stored["_id"] = internal_id
        user_id = _freeze_id(stored["_id"])
        for partition in self._partitions:
            if user_id in partition.live._by_user_id:
                raise DuplicateKeyError(
                    f"duplicate _id {stored['_id']!r} in collection {self.name!r}"
                )
        target = self._placement(stored)
        if target in self._quarantined:
            raise DegradedWriteError(self.name, [target], "insert")
        partition = self._partitions[target]
        state = partition.writable()
        state._documents[internal_id] = stored
        state._by_user_id[user_id] = internal_id
        for index in state._indexes.values():
            index.add(internal_id, stored)
            index.flush()
        partition.own(internal_id)
        self._log("insert", {"doc": stored}, target)
        return stored["_id"]

    def insert_many(self, documents: Iterable[dict]) -> List[Any]:
        """Insert every document; returns the list of assigned ``_id``s.

        Bulk path: documents are validated, placed and id-assigned in
        order, then applied per partition in one pass (one copy-on-write
        clone per partition, one index delta per document, one batched
        journal append per partition instead of one WAL write + fsync per
        op).  Error semantics match the per-op loop exactly: on the first
        invalid document the already-validated prefix is inserted and
        journaled, then the error raises.
        """
        self._bump_epoch()
        assigned: List[Any] = []
        staged: List[Tuple[int, dict, int]] = []  # (partition, stored, iid)
        batch_user_ids: set = set()
        error: Optional[Exception] = None
        for document in documents:
            if not isinstance(document, dict):
                error = QueryError(
                    f"documents must be dicts, got {type(document).__name__}"
                )
                break
            stored = deep_copy(document)
            internal_id = next(self._next_internal_id)
            if "_id" not in stored:
                stored["_id"] = internal_id
            user_id = _freeze_id(stored["_id"])
            duplicate = user_id in batch_user_ids or any(
                user_id in partition.live._by_user_id
                for partition in self._partitions
            )
            if duplicate:
                error = DuplicateKeyError(
                    f"duplicate _id {stored['_id']!r} in collection {self.name!r}"
                )
                break
            batch_user_ids.add(user_id)
            target = self._placement(stored)
            if target in self._quarantined:
                error = DegradedWriteError(self.name, [target], "insert")
                break
            staged.append((target, stored, internal_id))
            assigned.append(stored["_id"])

        touched: Dict[int, Any] = {}
        for target, stored, internal_id in staged:
            state = touched.get(target)
            if state is None:
                state = touched[target] = self._partitions[target].writable()
            state._documents[internal_id] = stored
            state._by_user_id[_freeze_id(stored["_id"])] = internal_id
            for index in state._indexes.values():
                index.add(internal_id, stored)
            self._partitions[target].own(internal_id)
        # One sorted-run merge per touched partition for the whole batch;
        # flushing here (not on first read) keeps shared-state reads
        # logically read-only, so concurrent ``find``s never race.
        for state in touched.values():
            for index in state._indexes.values():
                index.flush()
        if staged:
            self._log_many(
                "insert",
                [(target, {"doc": stored}) for target, stored, _ in staged],
            )
        if error is not None:
            # Always a QueryError, DuplicateKeyError or DegradedWriteError
            # staged above; raised here so the validated prefix lands first
            # (per-op parity).
            raise error  # repro: ignore[L004]
        return assigned

    def find(
        self,
        filter_doc: Optional[dict] = None,
        projection: Optional[dict] = None,
        sort: Optional[List[tuple]] = None,
        limit: Optional[int] = None,
        skip: int = 0,
        *,
        allow_degraded: bool = False,
    ) -> List[dict]:
        """Return matching documents (deep copies), optionally projected.

        Reads are planned (:mod:`repro.docstore.planner`): equality and
        range conditions resolve through hash/sorted indexes, a
        single-field ``sort`` matching a sorted index streams in index
        order with no sorting, and only the returned ``skip``/``limit``
        window is ever deep-copied.  On a sharded collection a filter
        pinning the shard key routes to a single partition; anything else
        scatter-gathers with an order-preserving k-way merge.

        On a degraded (partially quarantined) collection a query whose
        routing touches a dark shard raises :class:`DegradedReadError`;
        ``allow_degraded=True`` instead returns the healthy shards'
        results with a :class:`DegradedReadWarning`.
        """
        self._check_filter(filter_doc)
        self._expose_for_read()
        states, plans = self._plan_healthy(
            filter_doc, sort, allow_degraded=allow_degraded, op="find"
        )
        results = list(
            execute_sharded_find(
                states,
                plans,
                skip=skip,
                limit=limit,
                max_workers=self._read_workers(states),
                materialize=self._materialize,
            )
        )
        if projection:
            results = list(run_pipeline(results, [{"$project": projection}]))
        return results

    def distinct(
        self,
        path: str,
        filter_doc: Optional[dict] = None,
        *,
        allow_degraded: bool = False,
    ) -> List[Any]:
        """Distinct values of ``path`` over matching documents.

        Array values are expanded element-wise (MongoDB semantics); the
        result is sorted by ``repr`` for determinism.  Without a filter,
        hash indexes on ``path`` whose keys are all strings answer straight
        from the indexes, never touching a document.
        """
        self._check_filter(filter_doc)
        indices = self._healthy_route(
            filter_doc, allow_degraded=allow_degraded, op="distinct"
        )
        if not filter_doc:
            indexes = [
                self._partitions[i].live._indexes.get(f"{path}_hash")
                for i in indices
            ]
            if all(isinstance(index, HashIndex) for index in indexes):
                keys = [key for index in indexes for key in index.keys()]
                if all(key is None or isinstance(key, str) for key in keys):
                    seen = {repr(key): key for key in keys if key is not None}
                    return [seen[key] for key in sorted(seen)]
        seen = {}
        copy_value = self._copy_value
        self._expose_for_read()
        for document in self._scan(filter_doc, indices=indices):
            value = get_path(document, path, default=None)
            values = value if isinstance(value, list) else [value]
            for element in values:
                if element is not None:
                    seen.setdefault(repr(element), element)
        return [copy_value(seen[key]) for key in sorted(seen)]

    def find_one(
        self,
        filter_doc: Optional[dict] = None,
        *,
        allow_degraded: bool = False,
    ) -> Optional[dict]:
        """Return the first matching document or ``None``."""
        materialize = self._materialize
        self._expose_for_read()
        for document in self._scan(
            filter_doc, allow_degraded=allow_degraded, op="find_one"
        ):
            return materialize(document)
        return None

    def count_documents(
        self,
        filter_doc: Optional[dict] = None,
        *,
        allow_degraded: bool = False,
    ) -> int:
        """Number of documents matching ``filter_doc``.

        When the filter is fully covered by the chosen index access (no
        residual predicate), this is a pure index count — no document is
        loaded or matched.  Sharded counts sum the per-partition counts.
        """
        if not filter_doc:
            if not self._quarantined:
                return len(self)
            indices = self._healthy_route(
                None, allow_degraded=allow_degraded, op="count_documents"
            )
            return sum(
                len(self._partitions[i].live._documents) for i in indices
            )
        self._check_filter(filter_doc)
        states, plans = self._plan_healthy(
            filter_doc, allow_degraded=allow_degraded, op="count_documents"
        )
        return count_sharded(states, plans)

    def _check_update(self, update: dict) -> None:
        if self.analysis_mode == "strict":
            from repro.analysis import analyze_update, require_clean

            require_clean(
                analyze_update(update, self.schema),
                f"update for collection {self.name!r}",
            )

    def update_one(self, filter_doc: dict, update: dict) -> int:
        """Apply ``update`` to the first match; returns 0 or 1."""
        self._check_update(update)
        self._bump_epoch()
        for index, internal_id in self._scan_partitions(
            filter_doc, write=True, op="update_one"
        ):
            document = self._partitions[index].writable_document(internal_id)
            self._apply_update(index, internal_id, document, update)
            index = self._migrate_if_moved(index, internal_id, document)
            self._log("replace", {"id": document["_id"], "doc": document}, index)
            return 1
        return 0

    def update_many(self, filter_doc: dict, update: dict) -> int:
        """Apply ``update`` to every match; returns the match count."""
        self._check_update(update)
        self._bump_epoch()
        touched = list(
            self._scan_partitions(filter_doc, write=True, op="update_many")
        )
        for index, internal_id in touched:
            document = self._partitions[index].writable_document(internal_id)
            self._apply_update(index, internal_id, document, update)
            index = self._migrate_if_moved(index, internal_id, document)
            self._log("replace", {"id": document["_id"], "doc": document}, index)
        return len(touched)

    def replace_one(self, filter_doc: dict, replacement: dict) -> int:
        """Replace the first matching document wholesale (keeps its ``_id``)."""
        self._bump_epoch()
        for index, internal_id in self._scan_partitions(
            filter_doc, write=True, op="replace_one"
        ):
            partition = self._partitions[index]
            state = partition.writable()
            document = state._documents[internal_id]
            for spec_index in state._indexes.values():
                spec_index.remove(internal_id, document)
            stored = deep_copy(replacement)
            stored["_id"] = document["_id"]
            state._documents[internal_id] = stored
            for spec_index in state._indexes.values():
                spec_index.add(internal_id, stored)
                spec_index.flush()
            partition.own(internal_id)
            index = self._migrate_if_moved(index, internal_id, stored)
            self._log("replace", {"id": stored["_id"], "doc": stored}, index)
            return 1
        return 0

    def delete_many(self, filter_doc: dict) -> int:
        """Delete every matching document; returns the delete count."""
        self._bump_epoch()
        doomed = list(
            self._scan_partitions(filter_doc, write=True, op="delete_many")
        )
        for index, internal_id in doomed:
            partition = self._partitions[index]
            state = partition.writable()
            document = state._documents[internal_id]
            for spec_index in state._indexes.values():
                spec_index.remove(internal_id, document)
            del state._by_user_id[_freeze_id(document["_id"])]
            del state._documents[internal_id]
            partition._owned.discard(internal_id)
            self._log("delete", {"id": document["_id"]}, index)
        return len(doomed)

    def _migrate_if_moved(
        self, partition_index: int, internal_id: int, document: dict
    ) -> int:
        """Re-place a document whose shard-key value changed; returns shard."""
        if len(self._partitions) == 1:
            return partition_index
        target = self._placement(document)
        if target == partition_index:
            return partition_index
        if target in self._quarantined:
            # Fail-stop: a shard-key rewrite cannot move a document into a
            # shard whose journal is dark (the op could never be replayed).
            raise DegradedWriteError(self.name, [target], "migrate")
        source_partition = self._partitions[partition_index]
        source = source_partition.writable()
        for index in source._indexes.values():
            index.remove(internal_id, document)
        del source._documents[internal_id]
        del source._by_user_id[_freeze_id(document["_id"])]
        source_partition._owned.discard(internal_id)
        target_partition = self._partitions[target]
        state = target_partition.writable()
        state._documents[internal_id] = document
        state._by_user_id[_freeze_id(document["_id"])] = internal_id
        for index in state._indexes.values():
            index.add(internal_id, document)
            index.flush()
        target_partition.own(internal_id)
        return target

    def aggregate(
        self, pipeline: List[dict], *, allow_degraded: bool = False
    ) -> List[dict]:
        """Run an aggregation ``pipeline`` over the collection.

        In strict analysis mode the pipeline is statically vetted first —
        unknown stages/operators, malformed specs, unknown field paths and
        stage-order hazards raise :class:`QueryError` before any document is
        streamed.

        Leading ``$match``/``$sort``/``$skip``/``$limit`` stages are pushed
        down into the query planner: they run through index accesses and
        windowed, lazily-copied reads, so the remaining stages see an
        already-narrowed stream instead of a deep copy of the whole
        collection.  On a sharded scatter, an eligible ``$group`` (or
        ``$count``) immediately after the pushdown is computed as exact
        per-partition partials and combined — bit-identical to streaming
        the merged scan through the stage.
        """
        if self.analysis_mode == "strict":
            from repro.analysis import analyze_pipeline, require_clean

            require_clean(
                analyze_pipeline(pipeline, self.schema),
                f"pipeline for collection {self.name!r}",
            )
        pushdown = split_pushdown(pipeline)
        rest = pushdown.rest
        self._expose_for_read()
        states, plans = self._plan_healthy(
            pushdown.filter_doc,
            pushdown.sort_spec,
            allow_degraded=allow_degraded,
            op="aggregate",
        )
        for plan in plans:
            plan.pushdown = list(pushdown.pushed)
        if (
            len(states) > 1
            and rest
            and pushdown.sort_spec is None
            and pushdown.skip == 0
            and pushdown.limit is None
            and isinstance(rest[0], dict)
            and len(rest[0]) == 1
        ):
            (stage_name, stage_spec), = rest[0].items()
            if stage_name == "$group":
                parsed = partial_group_spec(stage_spec)
                if parsed is not None:
                    groups = execute_partial_group(
                        states, plans, parsed, copy_value=self._copy_value
                    )
                    return list(run_pipeline(groups, rest[1:]))
            elif stage_name == "$count" and isinstance(stage_spec, str):
                count = count_sharded(states, plans)
                return list(run_pipeline([{stage_spec: count}], rest[1:]))
        source: Iterable[dict] = execute_sharded_find(
            states,
            plans,
            skip=pushdown.skip,
            limit=pushdown.limit,
            max_workers=self._read_workers(states),
            materialize=self._materialize,
        )
        return list(run_pipeline(source, rest))

    def all(self, *, allow_degraded: bool = False) -> Iterator[dict]:
        """Iterate every document (materialized views) in insertion order.

        On a degraded collection this raises :class:`DegradedReadError`
        up front (unless ``allow_degraded``, which warns): quarantined
        partitions are empty, so the iteration itself is naturally
        healthy-shards-only either way.
        """
        if self._quarantined:
            self._healthy_route(None, allow_degraded=allow_degraded, op="all")
        materialize = self._materialize
        if self.copy_mode == "eager":
            return (materialize(doc) for doc in self._ordered_documents())

        def generate() -> Iterator[dict]:
            # Re-exposed per yield: the generator can be interleaved with
            # writes, and every view handed out must stay write-stable.
            for document in self._ordered_documents():
                self._expose_for_read()
                yield materialize(document)

        return generate()

    # --------------------------------------------------------------- indexes

    def create_index(self, path: str, kind: str = "hash") -> str:
        """Create (or return) an index on dotted ``path``.

        ``kind`` is ``"hash"`` for equality lookups or ``"sorted"`` for range
        scans.  Returns the index name ``{path}_{kind}``.  On a sharded
        collection every partition gets its own index over its documents.
        """
        name = f"{path}_{kind}"
        if name in self._partitions[0].live._indexes:
            return name
        if self._quarantined:
            # An index build touches every partition (and is journaled to
            # partition 0's WAL), so a degraded collection refuses it.
            raise DegradedWriteError(
                self.name, sorted(self._quarantined), "create_index"
            )
        self._bump_epoch()
        for partition in self._partitions:
            state = partition.writable()
            if name in state._indexes:
                continue
            index = build_index(kind, path)
            for internal_id, document in state._documents.items():
                index.add(internal_id, document)
            index.flush()
            state._indexes[name] = index
        self._log("index", {"path": path, "kind": kind}, 0)
        return name

    def index_names(self) -> List[str]:
        """Sorted names of the collection's indexes."""
        return sorted(self._partitions[0].live._indexes)

    def explain(
        self,
        filter_doc: Optional[dict] = None,
        sort: Optional[List[tuple]] = None,
        pipeline: Optional[List[dict]] = None,
    ) -> dict:
        """Describe how a query (or pipeline) would execute.

        Returns the chosen plan — ``"full_scan"`` / ``"id_lookup"`` /
        ``"index_lookup"`` / ``"index_range"`` / ``"index_order"`` (or
        ``"mixed"`` when a scatter picks different plans per shard) — plus
        the index used, the residual predicate the candidates are matched
        against, the candidate count (how many documents would actually be
        examined), pushed-down pipeline stages when ``pipeline`` is given,
        sharding telemetry (``shards_touched`` / ``total_shards`` /
        ``routing``), and index-usage hints from
        :func:`repro.analysis.analyze_index_usage`.
        """
        remaining: List[dict] = []
        pushed: List[str] = []
        if pipeline is not None:
            pushdown = split_pushdown(pipeline)
            query_filter, query_sort = pushdown.filter_doc, pushdown.sort_spec
            pushed = pushdown.pushed
            remaining = pushdown.rest
        else:
            query_filter, query_sort = filter_doc, sort
        states, plans = self._plan_routed(query_filter, query_sort)
        for plan in plans:
            plan.pushdown = list(pushed)
        total = len(self)
        shards = len(self._partitions)
        if plans:
            description = plans[0].describe(total)
            description["candidates"] = sum(
                len(plan.candidate_ids)
                if plan.candidate_ids is not None
                else len(state._documents)
                for plan, state in zip(plans, states)
            )
            if len(plans) > 1:
                names = {plan.plan_name for plan in plans}
                if len(names) > 1:
                    description["plan"] = "mixed"
                description["indexes_used"] = sorted(
                    {name for plan in plans for name in plan.indexes_used}
                )
        else:  # routing proved the result empty; no partition is read
            description = {
                "plan": "pruned",
                "candidates": 0,
                "documents": total,
                "index": None,
                "indexes_used": [],
                "residual": query_filter,
                "order": "none",
                "order_index": None,
                "pushdown": list(pushed),
            }
        description["shards_touched"] = len(states)
        description["total_shards"] = shards
        if len(states) == shards:
            description["routing"] = "scatter" if shards > 1 else "single"
        elif not states:
            description["routing"] = "pruned"
        else:
            description["routing"] = "single" if len(states) == 1 else "subset"
        description["remaining_stages"] = [
            next(iter(stage)) if isinstance(stage, dict) and stage else "?"
            for stage in remaining
        ]
        description["plan_cache"] = self._plan_cache.stats()
        description["materialization"] = self.copy_mode
        description["quarantined_shards"] = sorted(self._quarantined)
        from repro.analysis import analyze_index_usage

        description["hints"] = [
            diagnostic.render()
            for diagnostic in analyze_index_usage(
                filter_doc=filter_doc,
                sort=sort,
                pipeline=pipeline,
                indexes=self.index_specs(),
                shard_key=self.shard_key if shards > 1 else None,
                shards=shards,
            )
        ]
        return description

    def index_specs(self) -> List[dict]:
        """Serializable descriptions of the collection's indexes."""
        return [
            {"path": index.path, "kind": index.kind}
            for index in self._partitions[0].live._indexes.values()
        ]

    # ------------------------------------------------------------- internals

    def _log(self, op: str, payload: dict, partition_index: int) -> None:
        journal = self._journal
        if journal is not None:
            journal(op, payload, partition_index)

    def _log_many(self, op: str, entries: List[Tuple[int, dict]]) -> None:
        """Journal a batch of ``(partition, payload)`` records in order.

        Prefers the batched hook (one WAL write + one fsync per partition
        per batch); falls back to per-op journaling when only the plain
        hook is attached.
        """
        journal_many = self._journal_many
        if journal_many is not None:
            journal_many(op, entries)
            return
        journal = self._journal
        if journal is not None:
            for partition_index, payload in entries:
                journal(op, payload, partition_index)

    def _ordered_documents(self) -> Iterator[dict]:
        if len(self._partitions) == 1:
            documents = self._partitions[0].live._documents
            for internal_id in sorted(documents):
                yield documents[internal_id]
            return
        states = [partition.live for partition in self._partitions]
        streams = [_sorted_id_state_pairs(state) for state in states]
        for _internal_id, state in heapq.merge(*streams, key=lambda pair: pair[0]):
            yield state._documents[_internal_id]

    def _check_filter(self, filter_doc: Optional[dict]) -> None:
        if self.analysis_mode == "strict" and filter_doc:
            from repro.analysis import analyze_filter, require_clean

            require_clean(
                analyze_filter(filter_doc, self.schema),
                f"filter for collection {self.name!r}",
            )

    def _scan(
        self,
        filter_doc: Optional[dict],
        *,
        allow_degraded: bool = False,
        op: str = "read",
        indices: Optional[List[int]] = None,
    ) -> Iterator[dict]:
        for index, internal_id in self._scan_partitions(
            filter_doc, allow_degraded=allow_degraded, op=op, indices=indices
        ):
            yield self._partitions[index].live._documents[internal_id]

    def _scan_partitions(
        self,
        filter_doc: Optional[dict],
        *,
        allow_degraded: bool = False,
        op: str = "read",
        write: bool = False,
        indices: Optional[List[int]] = None,
    ) -> Iterator[Tuple[int, int]]:
        """``(partition index, internal id)`` of matches, ascending by id.

        Pass ``indices`` to reuse an already-policy-checked route (avoids
        a second :class:`DegradedReadWarning` from e.g. ``distinct``).
        """
        self._check_filter(filter_doc)
        if indices is None:
            indices = self._healthy_route(
                filter_doc, allow_degraded=allow_degraded, op=op, write=write
            )
        if not indices and filter_doc:
            compile_filter(filter_doc)
        if len(indices) == 1:
            state = self._partitions[indices[0]].live
            plan = plan_read(state, filter_doc)
            for internal_id in iter_matching_ids(state, plan):
                yield indices[0], internal_id
            return
        states = [self._partitions[i].live for i in indices]
        plans = plan_states(states, filter_doc)
        by_state = {id(state): index for state, index in zip(states, indices)}
        for state, internal_id in iter_sharded_matching(states, plans):
            yield by_state[id(state)], internal_id

    def _apply_update(
        self, partition_index: int, internal_id: int, document: dict, update: dict
    ) -> None:
        if not update or not all(key.startswith("$") for key in update):
            raise QueryError("updates must use operators like $set / $unset / $inc / $push")
        state = self._partitions[partition_index].live
        # Only indexes whose path the update spec can touch are maintained;
        # removing/re-adding every index on every update made single-field
        # updates cost O(indexes) instead of O(touched paths).
        touched = _update_touched_paths(update)
        if touched is None:
            affected = list(state._indexes.values())
        else:
            affected = [
                index
                for index in state._indexes.values()
                if any(_paths_overlap(path, index.path) for path in touched)
            ]
        for index in affected:
            index.remove(internal_id, document)
        try:
            for op, spec in update.items():
                if op == "$set":
                    for path, value in spec.items():
                        if path == "_id":
                            raise QueryError("_id is immutable")
                        set_path(document, path, deep_copy({"v": value})["v"])
                elif op == "$unset":
                    for path in spec:
                        if path == "_id":
                            raise QueryError("_id is immutable")
                        unset_path(document, path)
                elif op == "$inc":
                    for path, delta in spec.items():
                        current = get_path(document, path, 0) or 0
                        set_path(document, path, current + delta)
                elif op == "$push":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            current = []
                        if not isinstance(current, list):
                            raise QueryError(f"$push target {path!r} is not an array")
                        current.append(deep_copy({"v": value})["v"])
                        set_path(document, path, current)
                elif op == "$addToSet":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            current = []
                        if not isinstance(current, list):
                            raise QueryError(
                                f"$addToSet target {path!r} is not an array"
                            )
                        if value not in current:
                            current.append(deep_copy({"v": value})["v"])
                        set_path(document, path, current)
                elif op == "$pull":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            continue
                        if not isinstance(current, list):
                            raise QueryError(f"$pull target {path!r} is not an array")
                        set_path(
                            document,
                            path,
                            [element for element in current if element != value],
                        )
                elif op == "$rename":
                    for path, new_path in spec.items():
                        if path == "_id" or new_path == "_id":
                            raise QueryError("_id is immutable")
                        value = get_path(document, path, default=_RENAME_MISSING)
                        if value is _RENAME_MISSING:
                            continue
                        unset_path(document, path)
                        set_path(document, new_path, value)
                else:
                    raise QueryError(f"unknown update operator {op!r}")
        finally:
            for index in affected:
                index.add(internal_id, document)
                index.flush()

    def __len__(self) -> int:
        return sum(len(partition.live._documents) for partition in self._partitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Collection(name={self.name!r}, documents={len(self)}, "
            f"shards={len(self._partitions)})"
        )


class CollectionSnapshot:
    """A consistent, lock-free read view over the last published epoch.

    Pins every partition's ``published`` state at construction time.
    Writers never mutate a published state (the first write after a commit
    copies it), so every read through the snapshot sees exactly the epoch
    that was committed when the snapshot was taken — while the live
    collection keeps changing underneath.  Reads are bit-identical to the
    same queries against an unsharded collection holding that epoch.
    """

    def __init__(self, collection: Collection) -> None:
        self.name = collection.name
        self.shard_key = collection.shard_key
        #: Inherited at snapshot time; lazy views over a *published* state
        #: are stable forever (writers copy-on-write, never mutate it).
        self.copy_mode = collection.copy_mode
        self._collection = collection
        # One attribute read pins the whole epoch: `_published_states` is
        # reassigned as a single tuple at commit time, so a concurrent
        # publish can never hand this snapshot a cross-partition mix.
        self._states = list(collection._published_states)
        #: Quarantine set pinned at snapshot time.  Snapshots are strict:
        #: there is no degraded opt-in — a scatter over a degraded epoch
        #: raises, because a snapshot is exactly the API that promises a
        #: complete, consistent epoch.
        self._quarantined = frozenset(collection._quarantined)

    @property
    def _materialize(self) -> Any:
        return deep_copy if self.copy_mode == "eager" else lazy_document

    @property
    def _copy_value(self) -> Any:
        return deep_copy if self.copy_mode == "eager" else wrap_value

    def _routed(
        self,
        filter_doc: Optional[dict],
        sort: Optional[List[tuple]] = None,
    ) -> Tuple[List[Any], List[Any]]:
        shards = len(self._states)
        routed: Optional[List[int]] = None
        # _shard_key_lists is sticky (never decremented), so a flag read at
        # query time can only be *more* conservative than at snapshot time.
        if shards > 1 and not self._collection._shard_key_lists:
            routed = route_shards(self.shard_key, shards, filter_doc)
        if self._quarantined:
            touched = [
                index
                for index in (routed if routed is not None else range(shards))
                if index in self._quarantined
            ]
            if touched:
                raise DegradedReadError(self.name, touched, "snapshot read")
        states = (
            self._states if routed is None else [self._states[i] for i in routed]
        )
        if not states and filter_doc:
            compile_filter(filter_doc)
        return states, plan_states(states, filter_doc, sort)

    def find(
        self,
        filter_doc: Optional[dict] = None,
        projection: Optional[dict] = None,
        sort: Optional[List[tuple]] = None,
        limit: Optional[int] = None,
        skip: int = 0,
    ) -> List[dict]:
        """Planned read over the snapshot (same semantics as live ``find``)."""
        states, plans = self._routed(filter_doc, sort)
        results = list(
            execute_sharded_find(
                states, plans, skip=skip, limit=limit,
                materialize=self._materialize,
            )
        )
        if projection:
            results = list(run_pipeline(results, [{"$project": projection}]))
        return results

    def find_one(self, filter_doc: Optional[dict] = None) -> Optional[dict]:
        states, plans = self._routed(filter_doc)
        materialize = self._materialize
        for state, internal_id in iter_sharded_matching(states, plans):
            return materialize(state._documents[internal_id])
        return None

    def count_documents(self, filter_doc: Optional[dict] = None) -> int:
        if not filter_doc:
            return len(self)
        states, plans = self._routed(filter_doc)
        return count_sharded(states, plans)

    def distinct(self, path: str, filter_doc: Optional[dict] = None) -> List[Any]:
        seen: Dict[str, Any] = {}
        states, plans = self._routed(filter_doc)
        for state, internal_id in iter_sharded_matching(states, plans):
            value = get_path(state._documents[internal_id], path, default=None)
            values = value if isinstance(value, list) else [value]
            for element in values:
                if element is not None:
                    seen.setdefault(repr(element), element)
        return [seen[key] for key in sorted(seen)]

    def aggregate(self, pipeline: List[dict]) -> List[dict]:
        """Aggregation over the snapshot, with the same pushdown rules."""
        pushdown = split_pushdown(pipeline)
        rest = pushdown.rest
        states, plans = self._routed(pushdown.filter_doc, pushdown.sort_spec)
        for plan in plans:
            plan.pushdown = list(pushdown.pushed)
        if (
            len(states) > 1
            and rest
            and pushdown.sort_spec is None
            and pushdown.skip == 0
            and pushdown.limit is None
            and isinstance(rest[0], dict)
            and len(rest[0]) == 1
        ):
            (stage_name, stage_spec), = rest[0].items()
            if stage_name == "$group":
                parsed = partial_group_spec(stage_spec)
                if parsed is not None:
                    groups = execute_partial_group(
                        states, plans, parsed, copy_value=self._copy_value
                    )
                    return list(run_pipeline(groups, rest[1:]))
            elif stage_name == "$count" and isinstance(stage_spec, str):
                count = count_sharded(states, plans)
                return list(run_pipeline([{stage_spec: count}], rest[1:]))
        source: Iterable[dict] = execute_sharded_find(
            states, plans, skip=pushdown.skip, limit=pushdown.limit,
            materialize=self._materialize,
        )
        return list(run_pipeline(source, rest))

    def all(self) -> Iterator[dict]:
        """Iterate the epoch's documents (materialized) in insertion order."""
        if self._quarantined:
            raise DegradedReadError(
                self.name, sorted(self._quarantined), "snapshot all"
            )
        materialize = self._materialize
        streams = [_sorted_id_state_pairs(state) for state in self._states]
        for _internal_id, state in heapq.merge(*streams, key=lambda pair: pair[0]):
            yield materialize(state._documents[_internal_id])

    def __len__(self) -> int:
        return sum(len(state._documents) for state in self._states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CollectionSnapshot(name={self.name!r}, documents={len(self)})"


def _sorted_id_state_pairs(state: Any) -> Iterator[Tuple[int, Any]]:
    """One partition's ``(internal id, state)`` pairs in ascending id order.

    A generator *function* (not an inline genexp) so each stream captures
    its own ``state`` — a comprehension-scoped closure would late-bind it.
    """
    for internal_id in sorted(state._documents):
        yield internal_id, state


def _update_touched_paths(update: dict) -> Optional[set]:
    """Dotted paths an update spec may modify, or ``None`` when unknowable.

    ``$rename`` touches both its source and its target path.  A malformed
    spec (non-dict operand) returns ``None`` so the caller falls back to
    maintaining every index — ``_apply_update`` will raise on it anyway, and
    the try/finally there must still restore whatever was removed.
    """
    paths: set = set()
    for op, spec in update.items():
        if not isinstance(spec, dict):
            return None
        for path, value in spec.items():
            paths.add(str(path))
            if op == "$rename" and isinstance(value, str):
                paths.add(value)
    return paths


def _strip_numeric_segments(path: str) -> str:
    return ".".join(part for part in path.split(".") if not part.isdigit())


def _paths_overlap(update_path: str, index_path: str) -> bool:
    """Whether writing ``update_path`` can change keys at ``index_path``.

    True when either is a dotted prefix of the other (writing ``a`` rewrites
    ``a.b``; writing ``a.b`` changes what an index on ``a`` sees).  Numeric
    segments are stripped first so ``tags.0`` overlaps an index on ``tags``.
    """
    a = _strip_numeric_segments(update_path)
    b = _strip_numeric_segments(index_path)
    return a == b or a.startswith(b + ".") or b.startswith(a + ".")


def _freeze_id(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_id(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze_id(v) for v in value)
    return value
