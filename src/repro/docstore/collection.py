"""Collections: CRUD, indexes and aggregation over documents."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.docstore.aggregation import run_pipeline
from repro.docstore.documents import deep_copy, get_path, set_path, unset_path
from repro.docstore.errors import DuplicateKeyError, QueryError
from repro.docstore.indexes import HashIndex, build_index
from repro.docstore.planner import execute_find, iter_matching_ids, plan_read, split_pushdown

#: Sentinel for $rename on an absent source path (a silent no-op).
_RENAME_MISSING = object()


class Collection:
    """A named set of documents with optional secondary indexes.

    Documents receive an auto-assigned ``_id`` (an integer) unless the caller
    provides one.  ``_id`` values are unique within the collection.  Reads
    return deep copies so callers can never corrupt the store by mutating a
    result.

    ``analysis_mode`` selects how queries are vetted before execution:
    ``"lax"`` (the default) executes them as-is, ``"strict"`` runs the
    static analyzer from :mod:`repro.analysis` first and raises
    :class:`QueryError` — with did-you-mean hints — before a single document
    is scanned.  Attach a :class:`repro.analysis.SchemaPaths` via ``schema``
    to additionally validate dotted field paths in strict mode.
    """

    def __init__(
        self,
        name: str,
        analysis_mode: str = "lax",
        schema: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.analysis_mode = analysis_mode
        #: Optional ``repro.analysis.SchemaPaths`` for field-path validation.
        self.schema = schema
        self._documents: Dict[int, dict] = {}
        self._by_user_id: Dict[Any, int] = {}
        self._indexes: Dict[str, Any] = {}
        self._next_internal_id = itertools.count(1)
        #: Write-ahead-log hook ``(op, payload) -> None`` set by
        #: :class:`~repro.docstore.database.DurableDatabase`; ``None`` keeps
        #: the collection purely in-memory.  Called *after* the in-memory
        #: mutation succeeds; the hook serializes immediately, so later
        #: mutation of the same document cannot corrupt the journal.
        self._journal: Optional[Any] = None

    # ------------------------------------------------------------------ CRUD

    def insert_one(self, document: dict) -> Any:
        """Insert ``document`` and return its ``_id``."""
        if not isinstance(document, dict):
            raise QueryError(f"documents must be dicts, got {type(document).__name__}")
        stored = deep_copy(document)
        internal_id = next(self._next_internal_id)
        if "_id" not in stored:
            stored["_id"] = internal_id
        user_id = _freeze_id(stored["_id"])
        if user_id in self._by_user_id:
            raise DuplicateKeyError(
                f"duplicate _id {stored['_id']!r} in collection {self.name!r}"
            )
        self._documents[internal_id] = stored
        self._by_user_id[user_id] = internal_id
        for index in self._indexes.values():
            index.add(internal_id, stored)
        if self._journal is not None:
            self._journal("insert", {"doc": stored})
        return stored["_id"]

    def insert_many(self, documents: Iterable[dict]) -> List[Any]:
        """Insert every document; returns the list of assigned ``_id``s."""
        return [self.insert_one(document) for document in documents]

    def find(
        self,
        filter_doc: Optional[dict] = None,
        projection: Optional[dict] = None,
        sort: Optional[List[tuple]] = None,
        limit: Optional[int] = None,
        skip: int = 0,
    ) -> List[dict]:
        """Return matching documents (deep copies), optionally projected.

        Reads are planned (:mod:`repro.docstore.planner`): equality and
        range conditions resolve through hash/sorted indexes, a
        single-field ``sort`` matching a sorted index streams in index
        order with no sorting, and only the returned ``skip``/``limit``
        window is ever deep-copied.
        """
        self._check_filter(filter_doc)
        plan = plan_read(self, filter_doc, sort)
        results = list(execute_find(self, plan, skip=skip, limit=limit))
        if projection:
            results = list(run_pipeline(results, [{"$project": projection}]))
        return results

    def distinct(self, path: str, filter_doc: Optional[dict] = None) -> List[Any]:
        """Distinct values of ``path`` over matching documents.

        Array values are expanded element-wise (MongoDB semantics); the
        result is sorted by ``repr`` for determinism.  Without a filter, a
        hash index on ``path`` whose keys are all strings answers straight
        from the index, never touching a document.
        """
        if not filter_doc:
            index = self._indexes.get(f"{path}_hash")
            if isinstance(index, HashIndex):
                keys = list(index.keys())
                if all(key is None or isinstance(key, str) for key in keys):
                    seen = {repr(key): key for key in keys if key is not None}
                    return [seen[key] for key in sorted(seen)]
        seen = {}
        for document in self._scan(filter_doc):
            value = get_path(document, path, default=None)
            values = value if isinstance(value, list) else [value]
            for element in values:
                if element is not None:
                    seen.setdefault(repr(element), element)
        return [seen[key] for key in sorted(seen)]

    def find_one(self, filter_doc: Optional[dict] = None) -> Optional[dict]:
        """Return the first matching document or ``None``."""
        for document in self._scan(filter_doc):
            return deep_copy(document)
        return None

    def count_documents(self, filter_doc: Optional[dict] = None) -> int:
        """Number of documents matching ``filter_doc``.

        When the filter is fully covered by the chosen index access (no
        residual predicate), this is a pure index count — no document is
        loaded or matched.
        """
        if not filter_doc:
            return len(self._documents)
        self._check_filter(filter_doc)
        plan = plan_read(self, filter_doc)
        if plan.residual is None and plan.candidate_ids is not None:
            return len(plan.candidate_ids)
        return sum(1 for _ in iter_matching_ids(self, plan))

    def _check_update(self, update: dict) -> None:
        if self.analysis_mode == "strict":
            from repro.analysis import analyze_update, require_clean

            require_clean(
                analyze_update(update, self.schema),
                f"update for collection {self.name!r}",
            )

    def update_one(self, filter_doc: dict, update: dict) -> int:
        """Apply ``update`` to the first match; returns 0 or 1."""
        self._check_update(update)
        for internal_id, document in self._scan_with_ids(filter_doc):
            self._apply_update(internal_id, document, update)
            if self._journal is not None:
                self._journal("replace", {"id": document["_id"], "doc": document})
            return 1
        return 0

    def update_many(self, filter_doc: dict, update: dict) -> int:
        """Apply ``update`` to every match; returns the match count."""
        self._check_update(update)
        touched = list(self._scan_with_ids(filter_doc))
        for internal_id, document in touched:
            self._apply_update(internal_id, document, update)
            if self._journal is not None:
                self._journal("replace", {"id": document["_id"], "doc": document})
        return len(touched)

    def replace_one(self, filter_doc: dict, replacement: dict) -> int:
        """Replace the first matching document wholesale (keeps its ``_id``)."""
        for internal_id, document in self._scan_with_ids(filter_doc):
            for index in self._indexes.values():
                index.remove(internal_id, document)
            stored = deep_copy(replacement)
            stored["_id"] = document["_id"]
            self._documents[internal_id] = stored
            for index in self._indexes.values():
                index.add(internal_id, stored)
            if self._journal is not None:
                self._journal("replace", {"id": stored["_id"], "doc": stored})
            return 1
        return 0

    def delete_many(self, filter_doc: dict) -> int:
        """Delete every matching document; returns the delete count."""
        doomed = list(self._scan_with_ids(filter_doc))
        for internal_id, document in doomed:
            for index in self._indexes.values():
                index.remove(internal_id, document)
            del self._by_user_id[_freeze_id(document["_id"])]
            del self._documents[internal_id]
            if self._journal is not None:
                self._journal("delete", {"id": document["_id"]})
        return len(doomed)

    def aggregate(self, pipeline: List[dict]) -> List[dict]:
        """Run an aggregation ``pipeline`` over the collection.

        In strict analysis mode the pipeline is statically vetted first —
        unknown stages/operators, malformed specs, unknown field paths and
        stage-order hazards raise :class:`QueryError` before any document is
        streamed.

        Leading ``$match``/``$sort``/``$skip``/``$limit`` stages are pushed
        down into the query planner: they run through index accesses and
        windowed, lazily-copied reads, so the remaining stages see an
        already-narrowed stream instead of a deep copy of the whole
        collection.
        """
        if self.analysis_mode == "strict":
            from repro.analysis import analyze_pipeline, require_clean

            require_clean(
                analyze_pipeline(pipeline, self.schema),
                f"pipeline for collection {self.name!r}",
            )
        pushdown = split_pushdown(pipeline)
        if pushdown.pushed:
            plan = plan_read(self, pushdown.filter_doc, pushdown.sort_spec)
            plan.pushdown = pushdown.pushed
            source: Iterable[dict] = execute_find(
                self, plan, skip=pushdown.skip, limit=pushdown.limit
            )
        else:
            source = (deep_copy(doc) for doc in self._ordered_documents())
        return list(run_pipeline(source, pushdown.rest))

    def all(self) -> Iterator[dict]:
        """Iterate deep copies of every document in insertion order."""
        return (deep_copy(doc) for doc in self._ordered_documents())

    # --------------------------------------------------------------- indexes

    def create_index(self, path: str, kind: str = "hash") -> str:
        """Create (or return) an index on dotted ``path``.

        ``kind`` is ``"hash"`` for equality lookups or ``"sorted"`` for range
        scans.  Returns the index name ``{path}_{kind}``.
        """
        name = f"{path}_{kind}"
        if name in self._indexes:
            return name
        index = build_index(kind, path)
        for internal_id, document in self._documents.items():
            index.add(internal_id, document)
        self._indexes[name] = index
        if self._journal is not None:
            self._journal("index", {"path": path, "kind": kind})
        return name

    def index_names(self) -> List[str]:
        """Sorted names of the collection's indexes."""
        return sorted(self._indexes)

    def explain(
        self,
        filter_doc: Optional[dict] = None,
        sort: Optional[List[tuple]] = None,
        pipeline: Optional[List[dict]] = None,
    ) -> dict:
        """Describe how a query (or pipeline) would execute.

        Returns the chosen plan — ``"full_scan"`` / ``"id_lookup"`` /
        ``"index_lookup"`` / ``"index_range"`` / ``"index_order"`` — plus
        the index used, the residual predicate the candidates are matched
        against, the candidate count (how many documents would actually be
        examined), pushed-down pipeline stages when ``pipeline`` is given,
        and index-usage hints from :func:`repro.analysis.analyze_index_usage`.
        """
        remaining: List[dict] = []
        if pipeline is not None:
            pushdown = split_pushdown(pipeline)
            plan = plan_read(self, pushdown.filter_doc, pushdown.sort_spec)
            plan.pushdown = pushdown.pushed
            remaining = pushdown.rest
        else:
            plan = plan_read(self, filter_doc, sort)
        description = plan.describe(len(self._documents))
        description["remaining_stages"] = [
            next(iter(stage)) if isinstance(stage, dict) and stage else "?"
            for stage in remaining
        ]
        from repro.analysis import analyze_index_usage

        description["hints"] = [
            diagnostic.render()
            for diagnostic in analyze_index_usage(
                filter_doc=filter_doc,
                sort=sort,
                pipeline=pipeline,
                indexes=self.index_specs(),
            )
        ]
        return description

    def index_specs(self) -> List[dict]:
        """Serializable descriptions of the collection's indexes."""
        return [
            {"path": index.path, "kind": index.kind}
            for index in self._indexes.values()
        ]

    # ------------------------------------------------------------- internals

    def _ordered_documents(self) -> Iterator[dict]:
        for internal_id in sorted(self._documents):
            yield self._documents[internal_id]

    def _check_filter(self, filter_doc: Optional[dict]) -> None:
        if self.analysis_mode == "strict" and filter_doc:
            from repro.analysis import analyze_filter, require_clean

            require_clean(
                analyze_filter(filter_doc, self.schema),
                f"filter for collection {self.name!r}",
            )

    def _scan(self, filter_doc: Optional[dict]) -> Iterator[dict]:
        for _internal_id, document in self._scan_with_ids(filter_doc):
            yield document

    def _scan_with_ids(self, filter_doc: Optional[dict]) -> Iterator[tuple]:
        self._check_filter(filter_doc)
        plan = plan_read(self, filter_doc)
        for internal_id in iter_matching_ids(self, plan):
            yield internal_id, self._documents[internal_id]

    def _apply_update(self, internal_id: int, document: dict, update: dict) -> None:
        if not update or not all(key.startswith("$") for key in update):
            raise QueryError("updates must use operators like $set / $unset / $inc / $push")
        # Only indexes whose path the update spec can touch are maintained;
        # removing/re-adding every index on every update made single-field
        # updates cost O(indexes) instead of O(touched paths).
        touched = _update_touched_paths(update)
        if touched is None:
            affected = list(self._indexes.values())
        else:
            affected = [
                index
                for index in self._indexes.values()
                if any(_paths_overlap(path, index.path) for path in touched)
            ]
        for index in affected:
            index.remove(internal_id, document)
        try:
            for op, spec in update.items():
                if op == "$set":
                    for path, value in spec.items():
                        if path == "_id":
                            raise QueryError("_id is immutable")
                        set_path(document, path, deep_copy({"v": value})["v"])
                elif op == "$unset":
                    for path in spec:
                        if path == "_id":
                            raise QueryError("_id is immutable")
                        unset_path(document, path)
                elif op == "$inc":
                    for path, delta in spec.items():
                        current = get_path(document, path, 0) or 0
                        set_path(document, path, current + delta)
                elif op == "$push":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            current = []
                        if not isinstance(current, list):
                            raise QueryError(f"$push target {path!r} is not an array")
                        current.append(deep_copy({"v": value})["v"])
                        set_path(document, path, current)
                elif op == "$addToSet":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            current = []
                        if not isinstance(current, list):
                            raise QueryError(
                                f"$addToSet target {path!r} is not an array"
                            )
                        if value not in current:
                            current.append(deep_copy({"v": value})["v"])
                        set_path(document, path, current)
                elif op == "$pull":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            continue
                        if not isinstance(current, list):
                            raise QueryError(f"$pull target {path!r} is not an array")
                        set_path(
                            document,
                            path,
                            [element for element in current if element != value],
                        )
                elif op == "$rename":
                    for path, new_path in spec.items():
                        if path == "_id" or new_path == "_id":
                            raise QueryError("_id is immutable")
                        value = get_path(document, path, default=_RENAME_MISSING)
                        if value is _RENAME_MISSING:
                            continue
                        unset_path(document, path)
                        set_path(document, new_path, value)
                else:
                    raise QueryError(f"unknown update operator {op!r}")
        finally:
            for index in affected:
                index.add(internal_id, document)

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Collection(name={self.name!r}, documents={len(self)})"


def _update_touched_paths(update: dict) -> Optional[set]:
    """Dotted paths an update spec may modify, or ``None`` when unknowable.

    ``$rename`` touches both its source and its target path.  A malformed
    spec (non-dict operand) returns ``None`` so the caller falls back to
    maintaining every index — ``_apply_update`` will raise on it anyway, and
    the try/finally there must still restore whatever was removed.
    """
    paths: set = set()
    for op, spec in update.items():
        if not isinstance(spec, dict):
            return None
        for path, value in spec.items():
            paths.add(str(path))
            if op == "$rename" and isinstance(value, str):
                paths.add(value)
    return paths


def _strip_numeric_segments(path: str) -> str:
    return ".".join(part for part in path.split(".") if not part.isdigit())


def _paths_overlap(update_path: str, index_path: str) -> bool:
    """Whether writing ``update_path`` can change keys at ``index_path``.

    True when either is a dotted prefix of the other (writing ``a`` rewrites
    ``a.b``; writing ``a.b`` changes what an index on ``a`` sees).  Numeric
    segments are stripped first so ``tags.0`` overlaps an index on ``tags``.
    """
    a = _strip_numeric_segments(update_path)
    b = _strip_numeric_segments(index_path)
    return a == b or a.startswith(b + ".") or b.startswith(a + ".")


def _freeze_id(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_id(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze_id(v) for v in value)
    return value
