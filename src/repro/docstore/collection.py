"""Collections: CRUD, indexes and aggregation over documents."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.docstore.aggregation import run_pipeline
from repro.docstore.documents import deep_copy, get_path, set_path, unset_path
from repro.docstore.errors import DuplicateKeyError, QueryError
from repro.docstore.indexes import HashIndex, build_index
from repro.docstore.matching import compile_filter, equality_conditions

#: Sentinel for $rename on an absent source path (a silent no-op).
_RENAME_MISSING = object()


class Collection:
    """A named set of documents with optional secondary indexes.

    Documents receive an auto-assigned ``_id`` (an integer) unless the caller
    provides one.  ``_id`` values are unique within the collection.  Reads
    return deep copies so callers can never corrupt the store by mutating a
    result.

    ``analysis_mode`` selects how queries are vetted before execution:
    ``"lax"`` (the default) executes them as-is, ``"strict"`` runs the
    static analyzer from :mod:`repro.analysis` first and raises
    :class:`QueryError` — with did-you-mean hints — before a single document
    is scanned.  Attach a :class:`repro.analysis.SchemaPaths` via ``schema``
    to additionally validate dotted field paths in strict mode.
    """

    def __init__(
        self,
        name: str,
        analysis_mode: str = "lax",
        schema: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.analysis_mode = analysis_mode
        #: Optional ``repro.analysis.SchemaPaths`` for field-path validation.
        self.schema = schema
        self._documents: Dict[int, dict] = {}
        self._by_user_id: Dict[Any, int] = {}
        self._indexes: Dict[str, Any] = {}
        self._next_internal_id = itertools.count(1)

    # ------------------------------------------------------------------ CRUD

    def insert_one(self, document: dict) -> Any:
        """Insert ``document`` and return its ``_id``."""
        if not isinstance(document, dict):
            raise QueryError(f"documents must be dicts, got {type(document).__name__}")
        stored = deep_copy(document)
        internal_id = next(self._next_internal_id)
        if "_id" not in stored:
            stored["_id"] = internal_id
        user_id = _freeze_id(stored["_id"])
        if user_id in self._by_user_id:
            raise DuplicateKeyError(
                f"duplicate _id {stored['_id']!r} in collection {self.name!r}"
            )
        self._documents[internal_id] = stored
        self._by_user_id[user_id] = internal_id
        for index in self._indexes.values():
            index.add(internal_id, stored)
        return stored["_id"]

    def insert_many(self, documents: Iterable[dict]) -> List[Any]:
        """Insert every document; returns the list of assigned ``_id``s."""
        return [self.insert_one(document) for document in documents]

    def find(
        self,
        filter_doc: Optional[dict] = None,
        projection: Optional[dict] = None,
        sort: Optional[List[tuple]] = None,
        limit: Optional[int] = None,
        skip: int = 0,
    ) -> List[dict]:
        """Return matching documents (deep copies), optionally projected."""
        if sort:
            results = [deep_copy(doc) for doc in self._scan(filter_doc)]
            from repro.docstore.aggregation import _sort_key
            for field, direction in reversed(sort):
                results.sort(
                    key=lambda doc, field=field: _sort_key(get_path(doc, field)),
                    reverse=direction == -1,
                )
            if skip:
                results = results[skip:]
            if limit is not None:
                results = results[:limit]
        else:
            # Unsorted reads keep scan order, so skip/limit can be applied to
            # the raw scan — only the returned window is ever deep-copied.
            stop = None if limit is None else skip + limit
            results = [
                deep_copy(doc)
                for doc in itertools.islice(self._scan(filter_doc), skip, stop)
            ]
        if projection:
            results = list(run_pipeline(results, [{"$project": projection}]))
        return results

    def distinct(self, path: str, filter_doc: Optional[dict] = None) -> List[Any]:
        """Distinct values of ``path`` over matching documents.

        Array values are expanded element-wise (MongoDB semantics); the
        result is sorted by ``repr`` for determinism.
        """
        seen = {}
        for document in self._scan(filter_doc):
            value = get_path(document, path, default=None)
            values = value if isinstance(value, list) else [value]
            for element in values:
                if element is not None:
                    seen.setdefault(repr(element), element)
        return [seen[key] for key in sorted(seen)]

    def find_one(self, filter_doc: Optional[dict] = None) -> Optional[dict]:
        """Return the first matching document or ``None``."""
        for document in self._scan(filter_doc):
            return deep_copy(document)
        return None

    def count_documents(self, filter_doc: Optional[dict] = None) -> int:
        """Number of documents matching ``filter_doc``."""
        if not filter_doc:
            return len(self._documents)
        return sum(1 for _ in self._scan(filter_doc))

    def _check_update(self, update: dict) -> None:
        if self.analysis_mode == "strict":
            from repro.analysis import analyze_update, require_clean

            require_clean(
                analyze_update(update, self.schema),
                f"update for collection {self.name!r}",
            )

    def update_one(self, filter_doc: dict, update: dict) -> int:
        """Apply ``update`` to the first match; returns 0 or 1."""
        self._check_update(update)
        for internal_id, document in self._scan_with_ids(filter_doc):
            self._apply_update(internal_id, document, update)
            return 1
        return 0

    def update_many(self, filter_doc: dict, update: dict) -> int:
        """Apply ``update`` to every match; returns the match count."""
        self._check_update(update)
        touched = list(self._scan_with_ids(filter_doc))
        for internal_id, document in touched:
            self._apply_update(internal_id, document, update)
        return len(touched)

    def replace_one(self, filter_doc: dict, replacement: dict) -> int:
        """Replace the first matching document wholesale (keeps its ``_id``)."""
        for internal_id, document in self._scan_with_ids(filter_doc):
            for index in self._indexes.values():
                index.remove(internal_id, document)
            stored = deep_copy(replacement)
            stored["_id"] = document["_id"]
            self._documents[internal_id] = stored
            for index in self._indexes.values():
                index.add(internal_id, stored)
            return 1
        return 0

    def delete_many(self, filter_doc: dict) -> int:
        """Delete every matching document; returns the delete count."""
        doomed = list(self._scan_with_ids(filter_doc))
        for internal_id, document in doomed:
            for index in self._indexes.values():
                index.remove(internal_id, document)
            del self._by_user_id[_freeze_id(document["_id"])]
            del self._documents[internal_id]
        return len(doomed)

    def aggregate(self, pipeline: List[dict]) -> List[dict]:
        """Run an aggregation ``pipeline`` over the collection.

        In strict analysis mode the pipeline is statically vetted first —
        unknown stages/operators, malformed specs, unknown field paths and
        stage-order hazards raise :class:`QueryError` before any document is
        streamed.
        """
        if self.analysis_mode == "strict":
            from repro.analysis import analyze_pipeline, require_clean

            require_clean(
                analyze_pipeline(pipeline, self.schema),
                f"pipeline for collection {self.name!r}",
            )
        source = (deep_copy(doc) for doc in self._ordered_documents())
        return list(run_pipeline(source, pipeline))

    def all(self) -> Iterator[dict]:
        """Iterate deep copies of every document in insertion order."""
        return (deep_copy(doc) for doc in self._ordered_documents())

    # --------------------------------------------------------------- indexes

    def create_index(self, path: str, kind: str = "hash") -> str:
        """Create (or return) an index on dotted ``path``.

        ``kind`` is ``"hash"`` for equality lookups or ``"sorted"`` for range
        scans.  Returns the index name ``{path}_{kind}``.
        """
        name = f"{path}_{kind}"
        if name in self._indexes:
            return name
        index = build_index(kind, path)
        for internal_id, document in self._documents.items():
            index.add(internal_id, document)
        self._indexes[name] = index
        return name

    def index_names(self) -> List[str]:
        """Sorted names of the collection's indexes."""
        return sorted(self._indexes)

    def explain(self, filter_doc: Optional[dict] = None) -> dict:
        """Describe how a query would execute (index vs full scan).

        Returns ``{"plan": "index_lookup" | "id_lookup" | "full_scan",
        "candidates": n, "documents": total}`` — the candidate count is how
        many documents the filter predicate would actually be evaluated on.
        """
        candidates = self._candidate_ids(filter_doc)
        total = len(self._documents)
        if candidates is None:
            return {"plan": "full_scan", "candidates": total, "documents": total}
        equalities = equality_conditions(filter_doc or {})
        plan = "id_lookup" if "_id" in equalities else "index_lookup"
        return {"plan": plan, "candidates": len(candidates), "documents": total}

    def index_specs(self) -> List[dict]:
        """Serializable descriptions of the collection's indexes."""
        return [
            {"path": index.path, "kind": index.kind}
            for index in self._indexes.values()
        ]

    # ------------------------------------------------------------- internals

    def _ordered_documents(self) -> Iterator[dict]:
        for internal_id in sorted(self._documents):
            yield self._documents[internal_id]

    def _candidate_ids(self, filter_doc: Optional[dict]) -> Optional[List[int]]:
        """Use indexes to narrow the scan; None means full scan."""
        if not filter_doc:
            return None
        equalities = equality_conditions(filter_doc)
        if "_id" in equalities:
            internal_id = self._by_user_id.get(_freeze_id(equalities["_id"]))
            return [internal_id] if internal_id is not None else []
        best: Optional[set] = None
        for path, value in equalities.items():
            index = self._indexes.get(f"{path}_hash")
            if isinstance(index, HashIndex):
                from repro.docstore.documents import _freeze

                hits = index.lookup(_freeze(value))
                if best is None or len(hits) < len(best):
                    best = hits
        if best is None:
            return None
        return sorted(best)

    def _scan(self, filter_doc: Optional[dict]) -> Iterator[dict]:
        for _internal_id, document in self._scan_with_ids(filter_doc):
            yield document

    def _scan_with_ids(self, filter_doc: Optional[dict]) -> Iterator[tuple]:
        if self.analysis_mode == "strict" and filter_doc:
            from repro.analysis import analyze_filter, require_clean

            require_clean(
                analyze_filter(filter_doc, self.schema),
                f"filter for collection {self.name!r}",
            )
        predicate = compile_filter(filter_doc or {})
        candidates = self._candidate_ids(filter_doc)
        if candidates is None:
            ids: Iterable[int] = sorted(self._documents)
        else:
            ids = candidates
        for internal_id in ids:
            document = self._documents.get(internal_id)
            if document is not None and predicate(document):
                yield internal_id, document

    def _apply_update(self, internal_id: int, document: dict, update: dict) -> None:
        if not update or not all(key.startswith("$") for key in update):
            raise QueryError("updates must use operators like $set / $unset / $inc / $push")
        for index in self._indexes.values():
            index.remove(internal_id, document)
        try:
            for op, spec in update.items():
                if op == "$set":
                    for path, value in spec.items():
                        if path == "_id":
                            raise QueryError("_id is immutable")
                        set_path(document, path, deep_copy({"v": value})["v"])
                elif op == "$unset":
                    for path in spec:
                        if path == "_id":
                            raise QueryError("_id is immutable")
                        unset_path(document, path)
                elif op == "$inc":
                    for path, delta in spec.items():
                        current = get_path(document, path, 0) or 0
                        set_path(document, path, current + delta)
                elif op == "$push":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            current = []
                        if not isinstance(current, list):
                            raise QueryError(f"$push target {path!r} is not an array")
                        current.append(deep_copy({"v": value})["v"])
                        set_path(document, path, current)
                elif op == "$addToSet":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            current = []
                        if not isinstance(current, list):
                            raise QueryError(
                                f"$addToSet target {path!r} is not an array"
                            )
                        if value not in current:
                            current.append(deep_copy({"v": value})["v"])
                        set_path(document, path, current)
                elif op == "$pull":
                    for path, value in spec.items():
                        current = get_path(document, path)
                        if current is None:
                            continue
                        if not isinstance(current, list):
                            raise QueryError(f"$pull target {path!r} is not an array")
                        set_path(
                            document,
                            path,
                            [element for element in current if element != value],
                        )
                elif op == "$rename":
                    for path, new_path in spec.items():
                        if path == "_id" or new_path == "_id":
                            raise QueryError("_id is immutable")
                        value = get_path(document, path, default=_RENAME_MISSING)
                        if value is _RENAME_MISSING:
                            continue
                        unset_path(document, path)
                        set_path(document, new_path, value)
                else:
                    raise QueryError(f"unknown update operator {op!r}")
        finally:
            for index in self._indexes.values():
                index.add(internal_id, document)

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Collection(name={self.name!r}, documents={len(self)})"


def _freeze_id(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_id(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze_id(v) for v in value)
    return value
