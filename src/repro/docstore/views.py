"""Copy-on-read document materialization.

Reads used to hand every matching document through ``deep_copy`` before
yielding it, which made result sets safe to mutate but dominated the cost
of warm point reads and scan-heavy pipelines.  ``DocumentView`` and
``ListView`` keep the safety contract while deferring the copying: a view
is a ``dict``/``list`` *subclass* whose own storage is a cheap C-level
shallow copy of the stored container, so

* top-level mutations land in the view's private table, never in the
  partition state;
* nested containers are wrapped lazily on first access (and memoized), so
  a mutation at any depth only ever touches view-owned storage;
* equality, iteration, ``json.dumps`` and pickling all behave exactly like
  the plain containers the eager path produced (``__reduce__`` rebuilds
  plain ``dict``/``list``, so ``copy.deepcopy`` and pickle escape the view
  types entirely);
* raw-copy APIs — ``dict(view)``, ``{**view}``, ``plain.update(view)``,
  ``view.copy()``, ``view | other``, list concatenation / repetition /
  slicing — produce plain containers whose nested values are themselves
  views, never the stored containers.  The ``DocumentView.__iter__``
  override opts out of CPython's raw dict-copy fast path (taken only when
  ``tp_iter`` is dict's own), routing those APIs through the wrapping
  accessors; ``list(view)`` already iterates because the list fast path
  requires an exact ``list``.

The stored document is only copied level-by-level along the paths a caller
actually touches — untouched subtrees are shared with the published
partition state, riding the same copy-on-write epoch machinery snapshot
readers already rely on.  ``thaw`` forces a fully independent plain-dict
deep copy, and ``Collection(copy_mode="eager")`` restores the historical
deep-copy-per-document behaviour as an escape hatch.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from .documents import deep_copy

__all__ = ["DocumentView", "ListView", "lazy_document", "thaw", "wrap_value"]


class DocumentView(dict):
    """A lazily-copying read view over a stored document.

    Invariant: every container reachable through this view's accessors is
    either view-owned (a fresh shallow copy) or itself a view, so no
    mutation made through the mapping API can reach the stored document.
    """

    __slots__ = ("_wrapped_all",)

    def __init__(self, source: Dict[str, Any]) -> None:
        dict.__init__(self, source)
        self._wrapped_all = False

    # -- lazy wrapping ------------------------------------------------

    def _wrap_everything(self) -> None:
        if self._wrapped_all:
            return
        for key, value in dict.items(self):
            kind = value.__class__
            if kind is dict:
                dict.__setitem__(self, key, DocumentView(value))
            elif kind is list:
                dict.__setitem__(self, key, ListView(value))
        self._wrapped_all = True

    def __getitem__(self, key: Any) -> Any:
        value = dict.__getitem__(self, key)
        kind = value.__class__
        if kind is dict:
            value = DocumentView(value)
            dict.__setitem__(self, key, value)
        elif kind is list:
            value = ListView(value)
            dict.__setitem__(self, key, value)
        return value

    # -- accessors that must not leak raw stored containers -----------

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def setdefault(self, key: Any, default: Any = None) -> Any:
        if dict.__contains__(self, key):
            return self[key]
        dict.__setitem__(self, key, default)
        return default

    def pop(self, *args: Any) -> Any:
        value = dict.pop(self, *args)
        return wrap_value(value)

    def popitem(self) -> Tuple[Any, Any]:
        key, value = dict.popitem(self)
        return key, wrap_value(value)

    def items(self) -> Any:
        self._wrap_everything()
        return dict.items(self)

    def values(self) -> Any:
        self._wrap_everything()
        return dict.values(self)

    def __iter__(self) -> Iterator[Any]:
        # Overriding ``__iter__`` does double duty: CPython's dict-merge
        # fast path (behind ``dict(view)``, ``{**view}`` and
        # ``plain.update(view)``) only copies the raw table when the
        # source's ``tp_iter`` is dict's own, so this override routes all
        # of those through ``keys()`` + ``__getitem__`` — which wrap — and
        # no raw stored container can leak through a C-level copy.
        return dict.__iter__(self)

    # -- raw-copy APIs that would bypass the wrapping accessors --------

    def copy(self) -> Dict[str, Any]:
        """A plain dict whose container values are (safe) views."""
        self._wrap_everything()
        return dict.copy(self)

    def __or__(self, other: Any) -> Dict[str, Any]:
        result = self.copy()
        result.update(other)
        return result

    def __ror__(self, other: Any) -> Dict[str, Any]:
        result = dict(other)
        result.update(self)
        return result

    # -- escape back to plain containers -------------------------------

    def __reduce__(self) -> Tuple[Any, ...]:
        # deepcopy/pickle rebuild a plain, fully independent dict.
        return (dict, (), None, None, iter(self.items()))


class ListView(list):
    """The array analogue of :class:`DocumentView`."""

    __slots__ = ("_wrapped_all",)

    def __init__(self, source: List[Any]) -> None:
        list.__init__(self, source)
        self._wrapped_all = False

    def _wrap_everything(self) -> None:
        if self._wrapped_all:
            return
        for position in range(list.__len__(self)):
            value = list.__getitem__(self, position)
            kind = value.__class__
            if kind is dict:
                list.__setitem__(self, position, DocumentView(value))
            elif kind is list:
                list.__setitem__(self, position, ListView(value))
        self._wrapped_all = True

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            self._wrap_everything()
            return list.__getitem__(self, index)
        value = list.__getitem__(self, index)
        kind = value.__class__
        if kind is dict:
            value = DocumentView(value)
            list.__setitem__(self, index, value)
        elif kind is list:
            value = ListView(value)
            list.__setitem__(self, index, value)
        return value

    def __iter__(self) -> Iterator[Any]:
        self._wrap_everything()
        return list.__iter__(self)

    def __reversed__(self) -> Iterator[Any]:
        self._wrap_everything()
        return list.__reversed__(self)

    def pop(self, index: int = -1) -> Any:
        return wrap_value(list.pop(self, index))

    def sort(self, *args: Any, **kwargs: Any) -> None:
        # Wrap first so ``key=`` callables never see raw stored containers.
        self._wrap_everything()
        list.sort(self, *args, **kwargs)

    # -- raw-copy APIs that would bypass the wrapping accessors --------
    # (``list(view)`` / ``plain.extend(view)`` need no override: CPython's
    # list fast path requires an *exact* list, so they already iterate.)

    def copy(self) -> List[Any]:
        """A plain list whose container elements are (safe) views."""
        self._wrap_everything()
        return list.copy(self)

    def __add__(self, other: Any) -> List[Any]:
        if isinstance(other, ListView):
            other = other.copy()
        return self.copy() + other

    def __radd__(self, other: Any) -> List[Any]:
        # Reached for ``plain + view``: reflected ops run first because
        # ``ListView`` subclasses ``list``.
        return other + self.copy()

    def __mul__(self, count: Any) -> List[Any]:
        return self.copy() * count

    __rmul__ = __mul__

    def __reduce__(self) -> Tuple[Any, ...]:
        self._wrap_everything()
        return (list, (), None, iter(list.__iter__(self)), None)


def wrap_value(value: Any) -> Any:
    """Wrap a container extracted from a stored document; scalars pass through."""
    kind = value.__class__
    if kind is dict:
        return DocumentView(value)
    if kind is list:
        return ListView(value)
    return value


def lazy_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """The default read materializer: a :class:`DocumentView` over ``document``."""
    return DocumentView(document)


def thaw(document: Any) -> Any:
    """Force a fully independent plain-container deep copy of ``document``."""
    return deep_copy(document)
