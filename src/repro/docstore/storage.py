"""JSONL persistence for databases and collections.

Layout of a persisted database directory::

    manifest.json        collection names, index specs, checkpoint epoch
    <collection>.jsonl   snapshot: one document per line, insertion order
    <collection>.wal     write-ahead log of operations since the snapshot
    COMMITTED            database-wide last committed epoch

Plain (non-durable) databases only ever produce the first two entries; the
WAL and epoch files are written by
:class:`~repro.docstore.database.DurableDatabase`.  Every file is written
atomically (tmp file → fsync → rename → directory fsync, see
:func:`repro.docstore.wal.atomic_write_text`), so an interrupted save
never leaves a half-written JSONL/manifest mix on disk.

:func:`load_database` is also the crash-recovery path: it loads the
snapshot, replays any committed WAL operations on top (idempotently, so a
stale WAL left by a crash between a checkpoint's snapshot rename and its
log truncation is harmless), truncates torn WAL tails and reports every
repair through an optional :class:`RecoveryReport`.  Damage it cannot
prove harmless raises :class:`~repro.docstore.errors.StorageCorruptError`
with file/offset/line context; ``repair=True`` additionally salvages the
parseable lines of a damaged snapshot instead of raising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.docstore.errors import StorageCorruptError, StorageError
from repro.docstore.wal import (
    atomic_write_text,
    read_committed_epoch,
    read_wal,
    split_wal_stem,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.docstore.collection import Collection
    from repro.docstore.database import Database

MANIFEST_NAME = "manifest.json"


@dataclass
class RecoveryReport:
    """What recovery did while loading a database directory."""

    #: WAL operations replayed on top of the snapshot, per collection.
    replayed: Dict[str, int] = field(default_factory=dict)
    #: Last committed epoch observed (0 for plain snapshots).
    committed_epoch: int = 0
    #: Snapshot lines dropped by ``repair=True``, per file.
    salvaged: Dict[str, int] = field(default_factory=dict)
    #: Human-readable notes: torn tails truncated, operations discarded...
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing had to be repaired, truncated or discarded."""
        return not self.notes and not self.salvaged

    def render(self) -> str:
        """Multi-line human-readable summary (used by ``recover``)."""
        lines = [f"committed epoch: {self.committed_epoch}"]
        for name in sorted(self.replayed):
            lines.append(f"replayed {self.replayed[name]} op(s) into {name!r}")
        for path in sorted(self.salvaged):
            lines.append(f"salvaged {path}: dropped {self.salvaged[path]} bad line(s)")
        lines.extend(self.notes)
        return "\n".join(lines)


def save_database(database: "Database", directory: Path) -> None:
    """Write every collection of ``database`` to ``directory`` atomically.

    Layout: one ``<collection>.jsonl`` per collection (one document per
    line, insertion order) plus a ``manifest.json`` recording collection
    names and their index specifications, so indexes are rebuilt on load.
    Each file goes through the atomic-write helper; the manifest is written
    last, after every collection file is durably in place.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {"collections": {}}
    collections: Dict[str, dict] = {}
    manifest["collections"] = collections
    for name in database.collection_names():
        collection = database[name]
        lines = [
            json.dumps(document, ensure_ascii=False, sort_keys=True)
            for document in collection.all()
        ]
        body = "\n".join(lines) + ("\n" if lines else "")
        atomic_write_text(directory / f"{name}.jsonl", body)
        entry: dict = {"indexes": collection.index_specs()}
        if getattr(collection, "nshards", 1) > 1:
            entry["shards"] = collection.nshards
            entry["shard_key"] = collection.shard_key
        collections[name] = entry
    epoch = getattr(database, "committed_epoch", None)
    if epoch is not None:
        manifest["epoch"] = epoch
    atomic_write_text(directory / MANIFEST_NAME, json.dumps(manifest, indent=2))


def _load_jsonl(
    collection: "Collection",
    path: Path,
    repair: bool,
    report: RecoveryReport,
) -> None:
    """Insert ``path``'s documents into ``collection``, line by line.

    A line that does not parse raises :class:`StorageCorruptError` with the
    file and 1-based line number — unless ``repair`` is set, in which case
    the complete (parseable) lines are kept and the damage is reported.
    """
    dropped = 0
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                if not repair:
                    raise StorageCorruptError(
                        path,
                        f"unparseable JSONL line: {exc.msg}",
                        line=line_number,
                    )
                dropped += 1
                report.notes.append(
                    f"{path}: dropped unparseable line {line_number}"
                )
                continue
            collection.insert_one(document)
    if dropped:
        report.salvaged[str(path)] = dropped


def load_database(
    directory: Path,
    name: str = "db",
    *,
    repair: bool = False,
    report: Optional[RecoveryReport] = None,
    truncate: bool = False,
) -> "Database":
    """Load a database previously written by :func:`save_database`.

    Recovers durable stores: committed WAL operations are replayed on top
    of the snapshot; torn tails and uncommitted operations are discarded.
    Pass a :class:`RecoveryReport` to observe what recovery did; pass
    ``repair=True`` to salvage the parseable lines of damaged snapshot
    files instead of raising :class:`StorageCorruptError`.

    ``truncate=True`` additionally *physically* truncates discarded WAL
    tails so appends resume from a clean boundary.  Only the exclusive
    writer may do that (:class:`~repro.docstore.database.DurableDatabase`
    when reopening, or ``recover``): a plain read-only load must not cut
    off operations a live writer has staged but not yet committed.
    """
    from repro.docstore.database import Database

    directory = Path(directory)
    report = report if report is not None else RecoveryReport()
    manifest_path = directory / MANIFEST_NAME
    wal_paths = sorted(directory.glob("*.wal")) if directory.is_dir() else []
    manifest: Dict[str, dict] = {"collections": {}}
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StorageCorruptError(
                manifest_path, f"unparseable manifest: {exc.msg}", line=exc.lineno
            )
    elif not wal_paths:
        raise StorageError(f"no manifest at {manifest_path}")

    database = Database(name)
    #: Highest committed WAL ``seq`` seen per collection name (including
    #: collections that end up dropped); ``DurableDatabase`` seeds its
    #: sequence counters from this so appends keep a total order.
    database._wal_max_seq = {}  # type: ignore[attr-defined]
    for collection_name, spec in manifest["collections"].items():
        collection = database.create_collection(
            collection_name,
            shards=int(spec.get("shards", 1) or 1),
            shard_key=str(spec.get("shard_key", "ncid")),
        )
        jsonl_path = directory / f"{collection_name}.jsonl"
        if jsonl_path.exists():
            _load_jsonl(collection, jsonl_path, repair, report)
        for index_spec in spec.get("indexes", []):
            collection.create_index(index_spec["path"], index_spec["kind"])

    committed = read_committed_epoch(directory)
    report.committed_epoch = committed
    snapshot_epoch = int(manifest.get("epoch", 0) or 0)
    # Partition logs (``<name>@p<i>.wal``) replay as one per-collection
    # stream, merged on the ``seq`` number each sharded record carries.
    groups: Dict[str, List[Path]] = {}
    for wal_path in wal_paths:
        collection_name, _partition = split_wal_stem(wal_path.stem)
        groups.setdefault(collection_name, []).append(wal_path)
    for collection_name in sorted(groups):
        group_paths = groups[collection_name]
        operations: List[Dict[str, object]] = []
        recoveries = []
        for wal_path in group_paths:
            recovery = read_wal(wal_path, committed, truncate_torn=truncate)
            recoveries.append(recovery)
            operations.extend(recovery.operations)
        # The seq high-water mark covers *every* committed record on disk
        # (even ones the epoch filter below skips): a reopened writer must
        # never reuse a seq that stale, not-yet-truncated files still hold.
        max_seq = max((_operation_seq(op) for op in operations), default=0)
        if len(group_paths) > 1:
            # A checkpoint truncates the partition logs one file at a time;
            # a crash mid-way can lose a cross-file *prefix* of the history.
            # Operations from epochs at or before the snapshot epoch are
            # already captured by the snapshot — replaying a partial prefix
            # of them would regress newer state, so skip them outright.
            operations = [
                operation
                for operation in operations
                if _operation_epoch(operation) > snapshot_epoch
            ]
            operations.sort(key=_operation_seq)
        # A WAL with no committed content must not materialize a collection
        # the committed state never had (e.g. staged ops from a crash).
        collection = database._collections.get(collection_name)
        for operation in operations:
            if operation.get("op") == "drop":
                database.drop_collection(collection_name)
                collection = None
                continue
            if collection is None:
                collection = _materialize_collection(
                    database, collection_name, operation
                )
            _replay_operation(collection, operation)
        if max_seq:
            database._wal_max_seq[collection_name] = max_seq  # type: ignore[attr-defined]
            if collection is not None:
                collection._replayed_seq = max_seq
        if operations:
            report.replayed[collection_name] = len(operations)
        for wal_path, recovery in zip(group_paths, recoveries):
            if recovery.truncated_at is not None:
                report.notes.append(
                    f"{wal_path}: truncated torn/uncommitted tail at byte "
                    f"{recovery.truncated_at}"
                )
            report.notes.extend(f"{wal_path}: {note}" for note in recovery.notes)
            if (
                collection_name in manifest["collections"]
                and committed > snapshot_epoch
                and recovery.last_epoch < committed
            ):
                # The snapshot predates the committed epoch and the WAL does
                # not carry us up to it: committed operations are gone.
                raise StorageCorruptError(
                    wal_path,
                    f"committed records lost: log ends at epoch "
                    f"{recovery.last_epoch}, database committed epoch {committed}",
                )
    return database


def _operation_seq(operation: Dict[str, object]) -> int:
    seq = operation.get("seq")
    return seq if isinstance(seq, int) else 0


def _operation_epoch(operation: Dict[str, object]) -> int:
    epoch = operation.get("commit_epoch")
    return epoch if isinstance(epoch, int) else 0


def _materialize_collection(
    database: "Database", name: str, operation: Dict[str, object]
) -> "Collection":
    """Create a collection mid-replay, honoring a ``create`` op's layout."""
    shards = 1
    shard_key = "ncid"
    if operation.get("op") == "create":
        shards = int(operation.get("shards", 1) or 1)  # type: ignore[arg-type]
        shard_key = str(operation.get("shard_key", "ncid"))
    return database.create_collection(name, shards=shards, shard_key=shard_key)


def _replay_operation(collection: "Collection", operation: Dict[str, object]) -> None:
    """Apply one committed WAL operation idempotently.

    Inserts become replaces when the ``_id`` already exists and deletes of
    absent documents are no-ops, so replaying a stale log over a newer
    snapshot converges on the snapshot state instead of erroring.
    (``create`` operations carry no payload — materializing the collection,
    done by the caller, is their whole effect.)
    """
    kind = operation.get("op")
    if kind in ("insert", "replace"):
        document = operation["doc"]
        if not isinstance(document, dict):  # pragma: no cover - defensive
            return
        doc_id = document.get("_id")
        if collection.count_documents({"_id": doc_id}):
            collection.replace_one({"_id": doc_id}, document)
        else:
            collection.insert_one(document)
    elif kind == "delete":
        collection.delete_many({"_id": operation["id"]})
    elif kind == "index":
        collection.create_index(str(operation["path"]), str(operation["kind"]))
