"""JSONL persistence for databases and collections.

Layout of a persisted database directory::

    manifest.json        collection names, index specs, checkpoint epoch
    <collection>.jsonl   snapshot: one document per line, insertion order
    <collection>.wal     write-ahead log of operations since the snapshot
    COMMITTED            database-wide last committed epoch

Plain (non-durable) databases only ever produce the first two entries; the
WAL and epoch files are written by
:class:`~repro.docstore.database.DurableDatabase`.  Every file is written
atomically (tmp file → fsync → rename → directory fsync, see
:func:`repro.docstore.wal.atomic_write_text`), so an interrupted save
never leaves a half-written JSONL/manifest mix on disk.  Each manifest
entry records a CRC32 over its snapshot's bytes and the checkpoint epoch
that produced it, giving the scrubber (:mod:`repro.docstore.scrub`) an
end-to-end integrity check.

:func:`load_database` is also the crash-recovery path: it loads the
snapshot, replays any committed WAL operations on top (idempotently, so a
stale WAL left by a crash between a checkpoint's snapshot rename and its
log truncation is harmless), truncates torn WAL tails and reports every
repair through an optional :class:`RecoveryReport`.  Damage it cannot
prove harmless raises :class:`~repro.docstore.errors.StorageCorruptError`
with file/offset/line context; ``repair=True`` additionally salvages the
parseable lines of a damaged snapshot instead of raising.

Fault-domain isolation: with ``quarantine=True`` (the
:class:`~repro.docstore.database.DurableDatabase` open path), damage
confined to one partition's WAL or one collection's snapshot no longer
fails the whole open.  The damaged file is moved into a sibling
``<file>.quarantined/`` directory, the shard is flagged in the manifest,
and the collection serves *degraded* — see ``docs/durability.md``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro import faults
from repro.docstore.errors import (
    DegradedWriteError,
    StorageCorruptError,
    StorageError,
)
from repro.docstore.wal import (
    atomic_write_text,
    read_committed_epoch,
    read_wal,
    split_wal_stem,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.docstore.collection import Collection
    from repro.docstore.database import Database

MANIFEST_NAME = "manifest.json"

#: Suffix of the sibling directory a corrupt file is moved into.
QUARANTINE_SUFFIX = ".quarantined"


@dataclass
class RecoveryReport:
    """What recovery did while loading a database directory."""

    #: WAL operations replayed on top of the snapshot, per collection.
    replayed: Dict[str, int] = field(default_factory=dict)
    #: Last committed epoch observed (0 for plain snapshots).
    committed_epoch: int = 0
    #: Snapshot lines dropped by ``repair=True``, per file.
    salvaged: Dict[str, int] = field(default_factory=dict)
    #: Orphaned ``*.tmp`` files (crash mid-atomic-write) swept on open.
    orphans_removed: int = 0
    #: Shards *newly* quarantined by this load, per collection.
    quarantined: Dict[str, List[int]] = field(default_factory=dict)
    #: Human-readable notes: torn tails truncated, operations discarded...
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing had to be repaired, truncated or discarded."""
        return not self.notes and not self.salvaged and not self.quarantined

    def render(self) -> str:
        """Multi-line human-readable summary (used by ``recover``)."""
        lines = [f"committed epoch: {self.committed_epoch}"]
        for name in sorted(self.replayed):
            lines.append(f"replayed {self.replayed[name]} op(s) into {name!r}")
        for path in sorted(self.salvaged):
            lines.append(f"salvaged {path}: dropped {self.salvaged[path]} bad line(s)")
        for name in sorted(self.quarantined):
            lines.append(
                f"quarantined shard(s) {self.quarantined[name]} of {name!r}"
            )
        lines.extend(self.notes)
        return "\n".join(lines)


# -------------------------------------------------------------- quarantine


def quarantine_file(path: Path, reason: str) -> Path:
    """Move a damaged file into a sibling ``<name>.quarantined/`` directory.

    The file is preserved verbatim for later ``repair()``/forensics, with a
    ``finding.json`` recording why it was pulled.  Returns the quarantine
    directory.  (The directory name ends in ``.quarantined``, so the
    ``*.wal`` / ``*.jsonl`` globs of the load path can never match it.)
    """
    path = Path(path)
    qdir = path.with_name(path.name + QUARANTINE_SUFFIX)
    qdir.mkdir(exist_ok=True)
    faults.current_fs().replace(path, qdir / path.name)
    atomic_write_text(
        qdir / "finding.json",
        json.dumps({"file": path.name, "reason": reason}, indent=2),
    )
    return qdir


def quarantine_dirs(directory: Path) -> List[Path]:
    """Every ``*.quarantined/`` directory inside ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        entry
        for entry in directory.iterdir()
        if entry.is_dir() and entry.name.endswith(QUARANTINE_SUFFIX)
    )


# -------------------------------------------------------------------- save


def save_database(
    database: "Database", directory: Path, *, skip: frozenset = frozenset()
) -> None:
    """Write every collection of ``database`` to ``directory`` atomically.

    Layout: one ``<collection>.jsonl`` per collection (one document per
    line, insertion order) plus a ``manifest.json`` recording collection
    names, their index specifications (so indexes are rebuilt on load), a
    CRC32 checksum over the snapshot bytes, and — for durable databases —
    the epoch the snapshot captures.  Each file goes through the
    atomic-write helper; the manifest is written last, after every
    collection file is durably in place.

    ``skip`` names collections whose snapshot must *not* be rewritten
    (quarantined collections at checkpoint time: their manifest entry is
    carried over verbatim so the old snapshot still verifies and its epoch
    still gates replay).  Saving a degraded collection *without* skipping
    it raises :class:`DegradedWriteError` — a snapshot that silently
    dropped a quarantined shard's documents would look healthy.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    epoch = getattr(database, "committed_epoch", None)
    previous: Dict[str, dict] = {}
    if skip:
        previous = _read_manifest_entries(directory / MANIFEST_NAME)
    manifest: Dict[str, object] = {"collections": {}}
    collections: Dict[str, dict] = {}
    manifest["collections"] = collections
    for name in database.collection_names():
        collection = database[name]
        quarantined = sorted(getattr(collection, "_quarantined", ()))
        if name in skip:
            entry = dict(previous.get(name, {}))
            entry.setdefault("indexes", collection.index_specs())
            if getattr(collection, "nshards", 1) > 1:
                entry["shards"] = collection.nshards
                entry["shard_key"] = collection.shard_key
            if quarantined:
                entry["quarantined"] = quarantined
            collections[name] = entry
            continue
        if quarantined:
            raise DegradedWriteError(name, quarantined, "snapshot")
        lines = [
            json.dumps(document, ensure_ascii=False, sort_keys=True)
            for document in collection.all()
        ]
        body = "\n".join(lines) + ("\n" if lines else "")
        encoded = body.encode("utf-8")
        atomic_write_text(directory / f"{name}.jsonl", body)
        entry = {
            "indexes": collection.index_specs(),
            "checksum": {"crc32": zlib.crc32(encoded), "bytes": len(encoded)},
        }
        if getattr(collection, "nshards", 1) > 1:
            entry["shards"] = collection.nshards
            entry["shard_key"] = collection.shard_key
        if epoch is not None:
            entry["epoch"] = epoch
        collections[name] = entry
    if epoch is not None:
        manifest["epoch"] = epoch
    atomic_write_text(directory / MANIFEST_NAME, json.dumps(manifest, indent=2))


def _read_manifest_entries(manifest_path: Path) -> Dict[str, dict]:
    """Best-effort read of an existing manifest's collection entries."""
    if not manifest_path.exists():
        return {}
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    entries = manifest.get("collections", {})
    return entries if isinstance(entries, dict) else {}


# -------------------------------------------------------------------- load


def _load_jsonl(
    collection: "Collection",
    path: Path,
    repair: bool,
    report: RecoveryReport,
    checksum: Optional[dict] = None,
    stale_ok: bool = False,
) -> None:
    """Insert ``path``'s documents into ``collection``, line by line.

    When the manifest recorded a ``checksum`` for the snapshot, the CRC32
    over the raw bytes is verified first — a mismatch means the file is
    not the one the manifest's checkpoint wrote.  ``stale_ok`` covers the
    one legitimate way that happens: a crash between a checkpoint's
    snapshot rename and its manifest rename leaves the *newer* snapshot
    beside the stale checksum (provable because the ``COMMITTED`` epoch
    then exceeds the manifest epoch); the mismatch downgrades to a note,
    and the strict line-by-line parse below still vouches for the file.
    A line that does not parse raises :class:`StorageCorruptError` with
    the file and 1-based line number — unless ``repair`` is set, in which
    case the complete (parseable) lines are kept and the damage is
    reported.
    """
    data = faults.current_fs().read_bytes(path)
    #: Deferred checksum failure: the line parse below runs first so the
    #: error carries the damaged line when there is one; when every line
    #: parses, the mismatch itself is the (whole-file) finding.
    checksum_error: Optional[StorageCorruptError] = None
    if checksum:
        expected = checksum.get("crc32")
        if expected is not None and zlib.crc32(data) != int(expected):
            if repair:
                report.notes.append(
                    f"{path}: snapshot checksum mismatch; salvaging line by line"
                )
            elif stale_ok:
                report.notes.append(
                    f"{path}: snapshot postdates the manifest (interrupted "
                    f"checkpoint); checksum refreshed at the next checkpoint"
                )
            else:
                checksum_error = StorageCorruptError(
                    path,
                    f"snapshot checksum mismatch: crc32 {zlib.crc32(data)} != "
                    f"manifest {int(expected)}",
                )
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        if not repair:
            raise StorageCorruptError(path, f"undecodable snapshot: {exc}")
        text = data.decode("utf-8", errors="replace")
    dropped = 0
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError as exc:
            if not repair:
                raise StorageCorruptError(
                    path,
                    f"unparseable JSONL line: {exc.msg}",
                    line=line_number,
                )
            dropped += 1
            report.notes.append(
                f"{path}: dropped unparseable line {line_number}"
            )
            continue
        collection.insert_one(document)
    if checksum_error is not None:
        raise checksum_error  # repro: ignore[L004] — a StorageCorruptError
    if dropped:
        report.salvaged[str(path)] = dropped


def load_database(
    directory: Path,
    name: str = "db",
    *,
    repair: bool = False,
    report: Optional[RecoveryReport] = None,
    truncate: bool = False,
    quarantine: bool = False,
    salvage: bool = False,
) -> "Database":
    """Load a database previously written by :func:`save_database`.

    Recovers durable stores: committed WAL operations are replayed on top
    of the snapshot; torn tails and uncommitted operations are discarded.
    Pass a :class:`RecoveryReport` to observe what recovery did; pass
    ``repair=True`` to salvage the parseable lines of damaged snapshot
    files instead of raising :class:`StorageCorruptError`.

    ``truncate=True`` additionally *physically* truncates discarded WAL
    tails (and sweeps orphaned ``*.tmp`` files a crash mid-atomic-write
    left behind) so appends resume from a clean boundary.  Only the
    exclusive writer may do that
    (:class:`~repro.docstore.database.DurableDatabase` when reopening, or
    ``recover``): a plain read-only load must not cut off operations a
    live writer has staged but not yet committed.

    ``quarantine=True`` isolates instead of failing: a corrupt partition
    WAL (or whole-collection snapshot) is moved into a
    ``<file>.quarantined/`` directory, the shard is flagged in the
    manifest, and the collection loads in degraded mode.  Quarantine flags
    already present in the manifest are honored by *every* load — a
    degraded store never silently serves a quarantined shard's stale
    snapshot documents.

    ``salvage=True`` is the ``repair()`` path: quarantine flags are
    ignored (the damaged files are expected to have been restored from
    their quarantine directories first), snapshots load with per-line
    repair, and WALs replay their parseable committed prefix best-effort
    instead of raising.
    """
    from repro.docstore.database import Database

    fs = faults.current_fs()
    directory = Path(directory)
    report = report if report is not None else RecoveryReport()
    manifest_path = directory / MANIFEST_NAME
    if truncate and directory.is_dir():
        # Sweep orphans from a crash between an atomic write's tmp-create
        # and its rename; they are invisible to every load (nothing globs
        # *.tmp) but would otherwise accumulate forever.
        orphans = sorted(directory.glob("*.tmp"))
        for orphan in orphans:
            fs.remove(orphan)
        if orphans:
            report.orphans_removed = len(orphans)
            report.notes.append(
                f"removed {len(orphans)} orphaned tmp file(s)"
            )
    wal_paths = sorted(directory.glob("*.wal")) if directory.is_dir() else []
    manifest: Dict[str, dict] = {"collections": {}}
    if manifest_path.exists():
        try:
            manifest = json.loads(fs.read_text(manifest_path))
        except json.JSONDecodeError as exc:
            raise StorageCorruptError(
                manifest_path, f"unparseable manifest: {exc.msg}", line=exc.lineno
            )
    elif not wal_paths:
        raise StorageError(f"no manifest at {manifest_path}")

    committed = read_committed_epoch(directory)
    report.committed_epoch = committed
    global_epoch = int(manifest.get("epoch", 0) or 0)
    # A committed epoch past the manifest epoch proves a checkpoint died
    # between its snapshot renames and its manifest rename; within that
    # window a snapshot may legitimately be newer than its recorded
    # checksum (it still has to parse cleanly, and the lost-records check
    # below still demands the WALs cover the committed epoch).
    stale_checksum_ok = committed > global_epoch

    database = Database(name)
    #: Highest committed WAL ``seq`` seen per collection name (including
    #: collections that end up dropped); ``DurableDatabase`` seeds its
    #: sequence counters from this so appends keep a total order.
    database._wal_max_seq = {}  # type: ignore[attr-defined]
    #: Shards flagged quarantined: manifest flags plus new findings.
    flagged: Dict[str, Set[int]] = {}
    #: Collections whose *snapshot* was quarantined this load (all shards
    #: dark): their WALs are left in place, untouched, for ``repair()``.
    snapshot_quarantined: Set[str] = set()
    for collection_name, spec in manifest["collections"].items():
        collection = database.create_collection(
            collection_name,
            shards=int(spec.get("shards", 1) or 1),
            shard_key=str(spec.get("shard_key", "ncid")),
        )
        previous_flags = [int(i) for i in spec.get("quarantined", [])]
        if previous_flags and not salvage:
            flagged.setdefault(collection_name, set()).update(previous_flags)
            report.notes.append(
                f"collection {collection_name!r} shard(s) {sorted(previous_flags)} "
                f"in quarantine (repair to lift)"
            )
        jsonl_path = directory / f"{collection_name}.jsonl"
        if jsonl_path.exists():
            try:
                _load_jsonl(
                    collection,
                    jsonl_path,
                    repair or salvage,
                    report,
                    checksum=spec.get("checksum"),
                    stale_ok=stale_checksum_ok,
                )
            except OSError as exc:  # StorageCorruptError is an OSError too
                if salvage:
                    # Drop the partially-loaded documents and retake the
                    # file line by line, ignoring the stale checksum.
                    database.drop_collection(collection_name)
                    collection = database.create_collection(
                        collection_name,
                        shards=int(spec.get("shards", 1) or 1),
                        shard_key=str(spec.get("shard_key", "ncid")),
                    )
                    try:
                        _load_jsonl(collection, jsonl_path, True, report)
                    except OSError as retry_exc:
                        report.notes.append(
                            f"{jsonl_path}: unreadable, skipped ({retry_exc})"
                        )
                elif quarantine:
                    # The snapshot covers every shard, so a bad snapshot
                    # darkens the whole collection.  Its WALs stay on disk
                    # for repair; replay is skipped below.
                    quarantine_file(jsonl_path, str(exc))
                    database.drop_collection(collection_name)
                    collection = database.create_collection(
                        collection_name,
                        shards=int(spec.get("shards", 1) or 1),
                        shard_key=str(spec.get("shard_key", "ncid")),
                    )
                    all_shards = set(range(collection.nshards))
                    flagged.setdefault(collection_name, set()).update(all_shards)
                    new = report.quarantined.setdefault(collection_name, [])
                    new.extend(sorted(all_shards - set(new)))
                    snapshot_quarantined.add(collection_name)
                    report.notes.append(
                        f"{jsonl_path}: snapshot quarantined ({exc})"
                    )
                else:
                    raise
        for index_spec in spec.get("indexes", []):
            collection.create_index(index_spec["path"], index_spec["kind"])

    # Partition logs (``<name>@p<i>.wal``) replay as one per-collection
    # stream, merged on the ``seq`` number each sharded record carries.
    groups: Dict[str, List[Path]] = {}
    for wal_path in wal_paths:
        collection_name, _partition = split_wal_stem(wal_path.stem)
        groups.setdefault(collection_name, []).append(wal_path)
    for collection_name in sorted(groups):
        group_paths = groups[collection_name]
        entry = manifest["collections"].get(collection_name) or {}
        # Quarantined collections are skipped at checkpoint time, so their
        # snapshot epoch lags the global one; the per-collection epoch
        # written next to the checksum keeps the replay filter correct.
        collection_epoch = int(entry.get("epoch", global_epoch) or 0)
        if collection_name in snapshot_quarantined:
            report.notes.append(
                f"skipped WAL replay for quarantined collection "
                f"{collection_name!r}"
            )
            continue
        sharded = len(group_paths) > 1 or any(
            split_wal_stem(path.stem)[0] != path.stem for path in group_paths
        )
        quarantined_here = flagged.get(collection_name, set())
        operations: List[Dict[str, object]] = []
        recoveries = []
        seq_floor = 0
        for wal_path in group_paths:
            _, partition_index = split_wal_stem(wal_path.stem)
            try:
                recovery = read_wal(
                    wal_path, committed, truncate_torn=truncate,
                    best_effort=salvage,
                )
            except OSError as exc:
                if salvage:
                    report.notes.append(
                        f"{wal_path}: unreadable, skipped ({exc})"
                    )
                    continue
                if quarantine:
                    seq_floor = max(
                        seq_floor,
                        _quarantine_wal(
                            wal_path, partition_index, collection_name,
                            str(exc), committed, flagged, report,
                        ),
                    )
                    continue
                raise
            lost = (
                collection_name in manifest["collections"]
                and committed > collection_epoch
                and recovery.last_epoch < committed
            )
            if lost and partition_index not in quarantined_here:
                # The snapshot predates the committed epoch and the WAL
                # does not carry us up to it: committed operations gone.
                message = (
                    f"committed records lost: log ends at epoch "
                    f"{recovery.last_epoch}, database committed epoch {committed}"
                )
                if salvage:
                    report.notes.append(f"{wal_path}: {message}")
                elif quarantine:
                    seq_floor = max(
                        seq_floor,
                        _quarantine_wal(
                            wal_path, partition_index, collection_name,
                            message, committed, flagged, report,
                        ),
                    )
                    continue
                else:
                    raise StorageCorruptError(wal_path, message)
            recoveries.append((wal_path, recovery))
            operations.extend(recovery.operations)
        # The seq high-water mark covers *every* committed record on disk
        # (even ones the epoch filter below skips): a reopened writer must
        # never reuse a seq that stale, not-yet-truncated files still hold.
        max_seq = max(
            (_operation_seq(op) for op in operations), default=0
        )
        max_seq = max(max_seq, seq_floor)
        if sharded:
            # A checkpoint truncates the partition logs one file at a time;
            # a crash mid-way can lose a cross-file *prefix* of the history.
            # Operations from epochs at or before the snapshot epoch are
            # already captured by the snapshot — replaying a partial prefix
            # of them would regress newer state, so skip them outright.
            operations = [
                operation
                for operation in operations
                if _operation_epoch(operation) > collection_epoch
            ]
            operations.sort(key=_operation_seq)
        # A WAL with no committed content must not materialize a collection
        # the committed state never had (e.g. staged ops from a crash).
        collection = database._collections.get(collection_name)
        for operation in operations:
            if operation.get("op") == "drop":
                database.drop_collection(collection_name)
                collection = None
                continue
            if collection is None:
                collection = _materialize_collection(
                    database, collection_name, operation
                )
            _replay_operation(collection, operation)
        if max_seq:
            database._wal_max_seq[collection_name] = max_seq  # type: ignore[attr-defined]
            if collection is not None:
                collection._replayed_seq = max_seq
        if operations:
            report.replayed[collection_name] = len(operations)
        for wal_path, recovery in recoveries:
            if recovery.truncated_at is not None:
                report.notes.append(
                    f"{wal_path}: truncated torn/uncommitted tail at byte "
                    f"{recovery.truncated_at}"
                )
            report.notes.extend(f"{wal_path}: {note}" for note in recovery.notes)

    if not salvage:
        for collection_name, indices in flagged.items():
            collection = database._collections.get(collection_name)
            if collection is not None and indices:
                collection._quarantine_shards(sorted(indices))
    if quarantine and report.quarantined:
        _persist_quarantine_flags(manifest, manifest_path, database, flagged)
    return database


def _quarantine_wal(
    wal_path: Path,
    partition_index: int,
    collection_name: str,
    reason: str,
    committed: int,
    flagged: Dict[str, Set[int]],
    report: RecoveryReport,
) -> int:
    """Quarantine one partition WAL; returns its best-effort max ``seq``.

    The salvageable committed prefix of the moved file is scanned for its
    highest ``seq`` so a reopened writer keeps numbering past it — damage
    may hide higher seqs, but colliding seqs can only belong to different
    shards' documents, whose relative replay order is immaterial.
    """
    qdir = quarantine_file(wal_path, reason)
    flagged.setdefault(collection_name, set()).add(partition_index)
    new = report.quarantined.setdefault(collection_name, [])
    if partition_index not in new:
        new.append(partition_index)
        new.sort()
    report.notes.append(f"{wal_path}: quarantined ({reason})")
    try:
        ghost = read_wal(
            qdir / wal_path.name, committed, truncate_torn=False,
            best_effort=True,
        )
    except OSError:
        return 0
    return max((_operation_seq(op) for op in ghost.operations), default=0)


def _persist_quarantine_flags(
    manifest: Dict[str, dict],
    manifest_path: Path,
    database: "Database",
    flagged: Dict[str, Set[int]],
) -> None:
    """Record quarantine flags in the manifest (atomically rewritten).

    Collections that only existed as WALs get a minimal entry so the flag
    survives; everything else in the manifest is carried over verbatim.
    """
    collections = manifest.setdefault("collections", {})
    for collection_name, indices in flagged.items():
        entry = collections.setdefault(collection_name, {})
        if "indexes" not in entry:
            collection = database._collections.get(collection_name)
            if collection is not None:
                entry["indexes"] = collection.index_specs()
                if collection.nshards > 1:
                    entry["shards"] = collection.nshards
                    entry["shard_key"] = collection.shard_key
        entry["quarantined"] = sorted(indices)
    atomic_write_text(manifest_path, json.dumps(manifest, indent=2))


def _operation_seq(operation: Dict[str, object]) -> int:
    seq = operation.get("seq")
    return seq if isinstance(seq, int) else 0


def _operation_epoch(operation: Dict[str, object]) -> int:
    epoch = operation.get("commit_epoch")
    return epoch if isinstance(epoch, int) else 0


def _materialize_collection(
    database: "Database", name: str, operation: Dict[str, object]
) -> "Collection":
    """Create a collection mid-replay, honoring a ``create`` op's layout."""
    shards = 1
    shard_key = "ncid"
    if operation.get("op") == "create":
        shards = int(operation.get("shards", 1) or 1)  # type: ignore[arg-type]
        shard_key = str(operation.get("shard_key", "ncid"))
    return database.create_collection(name, shards=shards, shard_key=shard_key)


def _replay_operation(collection: "Collection", operation: Dict[str, object]) -> None:
    """Apply one committed WAL operation idempotently.

    Inserts become replaces when the ``_id`` already exists and deletes of
    absent documents are no-ops, so replaying a stale log over a newer
    snapshot converges on the snapshot state instead of erroring.
    (``create`` operations carry no payload — materializing the collection,
    done by the caller, is their whole effect.)
    """
    kind = operation.get("op")
    if kind in ("insert", "replace"):
        document = operation["doc"]
        if not isinstance(document, dict):  # pragma: no cover - defensive
            return
        doc_id = document.get("_id")
        if collection.count_documents({"_id": doc_id}):
            collection.replace_one({"_id": doc_id}, document)
        else:
            collection.insert_one(document)
    elif kind == "delete":
        collection.delete_many({"_id": operation["id"]})
    elif kind == "index":
        collection.create_index(str(operation["path"]), str(operation["kind"]))
