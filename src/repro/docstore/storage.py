"""JSONL persistence for databases and collections."""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict

from repro.docstore.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.docstore.database import Database

MANIFEST_NAME = "manifest.json"


def save_database(database: "Database", directory: Path) -> None:
    """Write every collection of ``database`` to ``directory``.

    Layout: one ``<collection>.jsonl`` per collection (one document per
    line, insertion order) plus a ``manifest.json`` recording collection
    names and their index specifications, so indexes are rebuilt on load.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, dict] = {"collections": {}}
    for name in database.collection_names():
        collection = database[name]
        path = directory / f"{name}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for document in collection.all():
                handle.write(json.dumps(document, ensure_ascii=False, sort_keys=True))
                handle.write("\n")
        manifest["collections"][name] = {"indexes": collection.index_specs()}
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")


def load_database(directory: Path, name: str = "db") -> "Database":
    """Load a database previously written by :func:`save_database`."""
    from repro.docstore.database import Database

    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    database = Database(name)
    for collection_name, spec in manifest["collections"].items():
        collection = database.create_collection(collection_name)
        jsonl_path = directory / f"{collection_name}.jsonl"
        if jsonl_path.exists():
            with jsonl_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        collection.insert_one(json.loads(line))
        for index_spec in spec.get("indexes", []):
            collection.create_index(index_spec["path"], index_spec["kind"])
    return database
