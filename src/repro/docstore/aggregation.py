"""Multi-stage aggregation pipelines (the customisation workhorse).

Supported stages: ``$match``, ``$project``, ``$addFields``, ``$group``,
``$unwind``, ``$sort``, ``$skip``, ``$limit``, ``$count``.  Expressions
support ``"$field"`` path references, literals, and the operators ``$add``,
``$subtract``, ``$multiply``, ``$divide``, ``$size``, ``$concat``,
``$literal``, ``$cond``, ``$ifNull``, ``$min``, ``$max``, ``$avg``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

from repro.docstore.documents import MISSING, deep_copy, resolve_path, set_path
from repro.docstore.errors import QueryError
from repro.docstore.matching import compile_filter
from repro.docstore.views import wrap_value


def evaluate(expression: Any, document: dict) -> Any:
    """Evaluate an aggregation expression against ``document``."""
    if isinstance(expression, str) and expression.startswith("$"):
        value = resolve_path(document, expression[1:])
        return None if value is MISSING else value
    if isinstance(expression, dict):
        if len(expression) == 1:
            (op, operand), = expression.items()
            if op.startswith("$"):
                return _evaluate_operator(op, operand, document)
        return {key: evaluate(value, document) for key, value in expression.items()}
    if isinstance(expression, list):
        return [evaluate(item, document) for item in expression]
    return expression


def _numeric_operands(operand: Any, document: dict) -> List[float]:
    values = [evaluate(item, document) for item in operand]
    return [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]


def _evaluate_operator(op: str, operand: Any, document: dict) -> Any:
    if op == "$literal":
        return operand
    if op == "$add":
        return sum(_numeric_operands(operand, document))
    if op == "$subtract":
        left, right = (evaluate(item, document) for item in operand)
        if left is None or right is None:
            return None
        return left - right
    if op == "$multiply":
        product = 1.0
        for value in _numeric_operands(operand, document):
            product *= value
        return product
    if op == "$divide":
        left, right = (evaluate(item, document) for item in operand)
        if left is None or right in (None, 0):
            return None
        return left / right
    if op == "$size":
        value = evaluate(operand, document)
        return len(value) if isinstance(value, list) else 0
    if op == "$concat":
        parts = [evaluate(item, document) for item in operand]
        if any(part is None for part in parts):
            return None
        return "".join(str(part) for part in parts)
    if op == "$cond":
        if isinstance(operand, dict):
            branches = [operand["if"], operand["then"], operand["else"]]
        else:
            branches = operand
        condition, then_expr, else_expr = branches
        return evaluate(then_expr if evaluate(condition, document) else else_expr, document)
    if op == "$ifNull":
        value, fallback = (evaluate(item, document) for item in operand)
        return fallback if value is None else value
    if op == "$min":
        values = _numeric_operands(operand, document)
        return min(values) if values else None
    if op == "$max":
        values = _numeric_operands(operand, document)
        return max(values) if values else None
    if op == "$avg":
        values = _numeric_operands(operand, document)
        return sum(values) / len(values) if values else None
    raise QueryError(f"unknown expression operator {op!r}")


class _Accumulator:
    """One ``$group`` accumulator instance (per group, per output field)."""

    def __init__(self, op: str, expression: Any) -> None:
        self.op = op
        self.expression = expression
        self.values: List[Any] = []
        self.unique: set = set()
        self.first: Any = MISSING
        self.last: Any = MISSING

    def feed(self, document: dict) -> None:
        """Consume one document's value into the accumulator."""
        value = evaluate(self.expression, document)
        if self.first is MISSING:
            self.first = value
        self.last = value
        if self.op in ("$sum", "$avg", "$min", "$max"):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.values.append(value)
        elif self.op == "$push":
            self.values.append(value)
        elif self.op == "$addToSet":
            key = repr(value)
            if key not in self.unique:
                self.unique.add(key)
                self.values.append(value)

    def result(self) -> Any:
        """Finalise and return the accumulated value."""
        if self.op == "$sum":
            return sum(self.values)
        if self.op == "$avg":
            return sum(self.values) / len(self.values) if self.values else None
        if self.op == "$min":
            return min(self.values) if self.values else None
        if self.op == "$max":
            return max(self.values) if self.values else None
        if self.op in ("$push", "$addToSet"):
            return self.values
        if self.op == "$first":
            return None if self.first is MISSING else self.first
        if self.op == "$last":
            return None if self.last is MISSING else self.last
        raise QueryError(f"unknown accumulator {self.op!r}")


def _stage_match(documents: Iterable[dict], spec: dict) -> Iterator[dict]:
    predicate = compile_filter(spec)
    return (doc for doc in documents if predicate(doc))


def _stage_project(documents: Iterable[dict], spec: dict) -> Iterator[dict]:
    if not isinstance(spec, dict) or not spec:
        raise QueryError("$project requires a non-empty dict")
    include_mode = any(v in (1, True) or isinstance(v, (str, dict)) for k, v in spec.items() if k != "_id")
    for document in documents:
        if include_mode:
            projected: dict = {}
            if spec.get("_id", 1) in (1, True):
                if "_id" in document:
                    projected["_id"] = document["_id"]
            for field, rule in spec.items():
                if field == "_id":
                    continue
                if rule in (0, False):
                    continue
                if rule in (1, True):
                    value = resolve_path(document, field)
                    if value is not MISSING:
                        set_path(projected, field, wrap_value(value))
                else:
                    set_path(projected, field, evaluate(rule, document))
            yield projected
        else:
            # Mutating clone (fields are unset below): a lazy view would
            # alias the input, so this stays a genuine deep copy.
            clone = deep_copy(document)  # repro: ignore[L008]
            for field, rule in spec.items():
                if rule in (0, False):
                    from repro.docstore.documents import unset_path

                    unset_path(clone, field)
            yield clone


def _stage_add_fields(documents: Iterable[dict], spec: dict) -> Iterator[dict]:
    for document in documents:
        # Mutating clone: later expressions must still evaluate against the
        # unmodified input, so the clone cannot share storage with it.
        clone = deep_copy(document)  # repro: ignore[L008]
        for field, expression in spec.items():
            set_path(clone, field, evaluate(expression, document))
        yield clone


def _stage_group(documents: Iterable[dict], spec: dict) -> Iterator[dict]:
    if "_id" not in spec:
        raise QueryError("$group requires an _id expression")
    id_expression = spec["_id"]
    accumulator_specs: Dict[str, tuple] = {}
    for field, accumulator in spec.items():
        if field == "_id":
            continue
        if not isinstance(accumulator, dict) or len(accumulator) != 1:
            raise QueryError(f"accumulator for {field!r} must be a single-op dict")
        (op, expression), = accumulator.items()
        accumulator_specs[field] = (op, expression)

    groups: Dict[str, dict] = {}
    order: List[str] = []
    for document in documents:
        group_id = evaluate(id_expression, document)
        key = repr(group_id)
        if key not in groups:
            groups[key] = {
                "_id": group_id,
                "_accumulators": {
                    field: _Accumulator(op, expression)
                    for field, (op, expression) in accumulator_specs.items()
                },
            }
            order.append(key)
        for accumulator in groups[key]["_accumulators"].values():
            accumulator.feed(document)
    for key in order:
        group = groups[key]
        result = {"_id": group["_id"]}
        for field, accumulator in group["_accumulators"].items():
            result[field] = accumulator.result()
        yield result


def _stage_unwind(documents: Iterable[dict], spec: Any) -> Iterator[dict]:
    if isinstance(spec, dict):
        path = spec["path"]
        keep_empty = spec.get("preserveNullAndEmptyArrays", False)
    else:
        path = spec
        keep_empty = False
    if not isinstance(path, str) or not path.startswith("$"):
        raise QueryError("$unwind path must start with '$'")
    field = path[1:]
    for document in documents:
        value = resolve_path(document, field)
        if value is MISSING or value is None or (isinstance(value, list) and not value):
            if keep_empty:
                yield wrap_value(document)
            continue
        if not isinstance(value, list):
            yield wrap_value(document)
            continue
        for element in value:
            # One mutated clone per element; siblings must not share
            # storage, so each is a genuine deep copy.
            clone = deep_copy(document)  # repro: ignore[L008]
            set_path(clone, field, element)
            yield clone


def _sort_key(value: Any) -> tuple:
    """Total order over mixed types: None < numbers < strings < other."""
    if value is None or value is MISSING:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, repr(value))


def _stage_sort(documents: Iterable[dict], spec: dict) -> Iterator[dict]:
    materialised = list(documents)
    for field, direction in reversed(list(spec.items())):
        if direction not in (1, -1):
            raise QueryError(f"sort direction must be 1 or -1, got {direction!r}")
        materialised.sort(
            key=lambda doc, field=field: _sort_key(resolve_path(doc, field)),
            reverse=direction == -1,
        )
    return iter(materialised)


def _stage_skip(documents: Iterable[dict], count: int) -> Iterator[dict]:
    iterator = iter(documents)
    for _ in range(count):
        next(iterator, None)
    return iterator


def _stage_limit(documents: Iterable[dict], count: int) -> Iterator[dict]:
    iterator = iter(documents)
    for _ in range(count):
        item = next(iterator, MISSING)
        if item is MISSING:
            return
        yield item


def _stage_count(documents: Iterable[dict], field: str) -> Iterator[dict]:
    yield {field: sum(1 for _ in documents)}


def _stage_replace_root(documents: Iterable[dict], spec: dict) -> Iterator[dict]:
    """Promote a sub-document to the document root (``$replaceRoot``).

    The canonical use here: after ``$unwind``-ing a cluster's records,
    ``{"$replaceRoot": {"newRoot": "$records"}}`` turns each record
    sub-document into a top-level document.
    """
    if not isinstance(spec, dict) or "newRoot" not in spec:
        raise QueryError("$replaceRoot requires {'newRoot': <expression>}")
    for document in documents:
        root = evaluate(spec["newRoot"], document)
        if not isinstance(root, dict):
            raise QueryError(
                f"$replaceRoot newRoot must resolve to a document, got "
                f"{type(root).__name__}"
            )
        yield wrap_value(root)


def _stage_sort_by_count(documents: Iterable[dict], expression: Any) -> Iterator[dict]:
    """Group by an expression and sort by group size (``$sortByCount``)."""
    grouped = _stage_group(
        documents, {"_id": expression, "count": {"$sum": 1}}
    )
    return _stage_sort(grouped, {"count": -1, "_id": 1})


_STAGES = {
    "$match": _stage_match,
    "$project": _stage_project,
    "$addFields": _stage_add_fields,
    "$set": _stage_add_fields,
    "$group": _stage_group,
    "$unwind": _stage_unwind,
    "$sort": _stage_sort,
    "$skip": _stage_skip,
    "$limit": _stage_limit,
    "$count": _stage_count,
    "$replaceRoot": _stage_replace_root,
    "$sortByCount": _stage_sort_by_count,
}


def run_pipeline(documents: Iterable[dict], pipeline: List[dict]) -> Iterator[dict]:
    """Stream ``documents`` through ``pipeline`` and yield the results."""
    stream: Iterable[dict] = documents
    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            raise QueryError(f"each pipeline stage must be a single-key dict, got {stage!r}")
        (name, spec), = stage.items()
        handler = _STAGES.get(name)
        if handler is None:
            raise QueryError(f"unknown pipeline stage {name!r}")
        stream = handler(stream, spec)
    return iter(stream)
