"""Offline integrity scrubbing and quarantine repair for docstore files.

:func:`scrub_database` walks a persisted database directory and verifies
everything recovery would rely on — WAL record CRC frames, snapshot
checksums against the manifest, commit-epoch coverage, cross-partition
``seq`` continuity — without modifying a single byte.  The result is a
:class:`ScrubReport` of per-file :class:`ScrubFinding`\\ s, split into
errors (recovery would refuse or quarantine) and warnings (recovery would
repair silently: torn tails, uncommitted records, orphaned tmp files).

:func:`repair_database` is the other half: it moves quarantined files back
out of their ``<file>.quarantined/`` directories, re-runs recovery in
salvage mode (best-effort committed-prefix replay, per-line snapshot
repair), rewrites a clean checkpoint snapshot and clears every quarantine
flag.  Data inside regions salvage cannot parse is dropped — the
:class:`RepairReport` says exactly what.

Both entry points are exposed on
:class:`~repro.docstore.database.DurableDatabase` (``scrub()`` /
``repair()``) and as the ``scrub`` CLI subcommand.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro import faults
from repro.docstore.errors import StorageCorruptError, StorageError
from repro.docstore.storage import (
    MANIFEST_NAME,
    QUARANTINE_SUFFIX,
    RecoveryReport,
    load_database,
    quarantine_dirs,
    save_database,
)
from repro.docstore.wal import (
    COMMIT_FILE,
    read_committed_epoch,
    read_wal,
    split_wal_stem,
)


@dataclass
class ScrubFinding:
    """One integrity problem (or oddity) found by the scrubber."""

    path: str
    #: Short machine-readable category: ``wal-corrupt``, ``wal-behind``,
    #: ``snapshot-checksum``, ``snapshot-parse``, ``seq-continuity``, ...
    kind: str
    detail: str
    #: ``"error"`` — recovery would refuse or quarantine; ``"warning"`` —
    #: recovery would silently repair or ignore.
    severity: str = "error"
    collection: Optional[str] = None
    partition: Optional[int] = None

    def render(self) -> str:
        where = self.path
        if self.partition is not None:
            where = f"{where} (partition {self.partition})"
        return f"[{self.severity}] {self.kind} {where}: {self.detail}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "detail": self.detail,
            "severity": self.severity,
            "collection": self.collection,
            "partition": self.partition,
        }


@dataclass
class ScrubReport:
    """Everything one :func:`scrub_database` pass established."""

    directory: Path
    committed_epoch: int = 0
    files_checked: int = 0
    bytes_checked: int = 0
    findings: List[ScrubFinding] = field(default_factory=list)
    #: Shards flagged quarantined in the manifest, per collection.
    quarantined: Dict[str, List[int]] = field(default_factory=dict)

    def _add(
        self,
        severity: str,
        path,
        kind: str,
        detail: str,
        collection: Optional[str] = None,
        partition: Optional[int] = None,
    ) -> None:
        self.findings.append(
            ScrubFinding(str(path), kind, detail, severity, collection, partition)
        )

    def error(self, path, kind, detail, collection=None, partition=None):
        self._add("error", path, kind, detail, collection, partition)

    def warning(self, path, kind, detail, collection=None, partition=None):
        self._add("warning", path, kind, detail, collection, partition)

    @property
    def errors(self) -> List[ScrubFinding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    @property
    def warnings(self) -> List[ScrubFinding]:
        return [finding for finding in self.findings if finding.severity == "warning"]

    @property
    def ok(self) -> bool:
        """No errors and nothing quarantined (warnings allowed)."""
        return not self.errors and not self.quarantined

    @property
    def clean(self) -> bool:
        """Nothing at all to report."""
        return not self.findings and not self.quarantined

    def render(self) -> str:
        lines = [
            f"scrubbed {self.files_checked} file(s), "
            f"{self.bytes_checked} byte(s), committed epoch "
            f"{self.committed_epoch}"
        ]
        for name in sorted(self.quarantined):
            lines.append(
                f"collection {name!r}: shard(s) {self.quarantined[name]} "
                f"in quarantine"
            )
        lines.extend(finding.render() for finding in self.findings)
        if self.clean:
            lines.append("no problems found")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "directory": str(self.directory),
            "committed_epoch": self.committed_epoch,
            "files_checked": self.files_checked,
            "bytes_checked": self.bytes_checked,
            "ok": self.ok,
            "quarantined": self.quarantined,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def scrub_database(directory: Path, name: str = "db", deep: bool = True) -> ScrubReport:
    """Verify a persisted database directory without modifying anything.

    Checks, in order: the commit-epoch file parses; the manifest parses;
    every snapshot matches its manifest CRC32/size (and, with ``deep``,
    parses line by line); no orphaned tmp files or quarantine directories
    linger; every WAL's committed region frames and checksums cleanly,
    reaches the database's committed epoch, and — for sharded collections —
    carries a duplicate-free, gap-free committed ``seq`` sequence across
    its partition logs.  Raises :class:`StorageError` when ``directory``
    holds no database at all; every other problem becomes a finding.
    """
    fs = faults.current_fs()
    directory = Path(directory)
    report = ScrubReport(directory=directory)
    manifest_path = directory / MANIFEST_NAME
    wal_paths = sorted(directory.glob("*.wal")) if directory.is_dir() else []
    if not manifest_path.exists() and not wal_paths:
        raise StorageError(f"no database at {directory}")

    try:
        report.committed_epoch = read_committed_epoch(directory)
    except StorageCorruptError as exc:
        report.error(directory / COMMIT_FILE, "commit-epoch", str(exc))
    committed = report.committed_epoch

    manifest: Dict[str, dict] = {"collections": {}}
    if manifest_path.exists():
        report.files_checked += 1
        try:
            raw = fs.read_bytes(manifest_path)
            report.bytes_checked += len(raw)
            manifest = json.loads(raw.decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            report.error(manifest_path, "manifest", f"unparseable manifest: {exc}")
            manifest = {"collections": {}}
    global_epoch = int(manifest.get("epoch", 0) or 0)
    entries: Dict[str, dict] = manifest.get("collections", {})
    if not isinstance(entries, dict):  # pragma: no cover - defensive
        report.error(manifest_path, "manifest", "collections entry is not a mapping")
        entries = {}

    for collection_name in sorted(entries):
        spec = entries[collection_name] or {}
        flagged = sorted(int(i) for i in spec.get("quarantined", []))
        if flagged:
            report.quarantined[collection_name] = flagged
            report.warning(
                manifest_path,
                "quarantine",
                f"collection {collection_name!r} shard(s) {flagged} flagged "
                f"quarantined (repair to lift)",
                collection=collection_name,
            )
        jsonl_path = directory / f"{collection_name}.jsonl"
        checksum = spec.get("checksum") or {}
        if not jsonl_path.exists():
            if checksum and not flagged:
                report.error(
                    jsonl_path,
                    "snapshot-missing",
                    "manifest records a snapshot checksum but the file is absent",
                    collection=collection_name,
                )
            continue
        report.files_checked += 1
        try:
            data = fs.read_bytes(jsonl_path)
        except OSError as exc:
            report.error(
                jsonl_path, "snapshot-unreadable", str(exc),
                collection=collection_name,
            )
            continue
        report.bytes_checked += len(data)
        expected_crc = checksum.get("crc32")
        expected_bytes = checksum.get("bytes")
        # Same window recovery honors: a checkpoint that died between its
        # snapshot renames and its manifest rename leaves the newer
        # snapshot beside a stale checksum — repairable, not corrupt.
        stale_ok = committed > global_epoch
        mismatch = None
        if expected_bytes is not None and len(data) != int(expected_bytes):
            mismatch = (
                f"size {len(data)} != manifest {int(expected_bytes)} byte(s)"
            )
        elif expected_crc is not None and zlib.crc32(data) != int(expected_crc):
            mismatch = f"crc32 {zlib.crc32(data)} != manifest {int(expected_crc)}"
        if mismatch is not None:
            if stale_ok:
                report.warning(
                    jsonl_path,
                    "snapshot-checksum",
                    f"{mismatch}; snapshot postdates the manifest "
                    f"(interrupted checkpoint)",
                    collection=collection_name,
                )
            else:
                report.error(
                    jsonl_path, "snapshot-checksum", mismatch,
                    collection=collection_name,
                )
        elif expected_crc is None:
            report.warning(
                jsonl_path,
                "snapshot-checksum",
                "no checksum recorded in manifest (pre-upgrade snapshot)",
                collection=collection_name,
            )
        if deep:
            _scrub_jsonl_lines(report, jsonl_path, data, collection_name)

    for orphan in sorted(directory.glob("*.tmp")):
        report.warning(
            orphan,
            "orphan-tmp",
            "orphaned tmp file from an interrupted atomic write "
            "(swept on next open)",
        )
    for qdir in quarantine_dirs(directory):
        detail = "damaged file awaiting repair"
        try:
            finding = json.loads(fs.read_text(qdir / "finding.json"))
            detail = str(finding.get("reason", detail))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            pass
        report.warning(qdir, "quarantine", detail)

    groups: Dict[str, List[Path]] = {}
    for wal_path in wal_paths:
        collection_name, _partition = split_wal_stem(wal_path.stem)
        groups.setdefault(collection_name, []).append(wal_path)
    for collection_name in sorted(groups):
        group_paths = groups[collection_name]
        spec = entries.get(collection_name) or {}
        collection_epoch = int(spec.get("epoch", global_epoch) or 0)
        flagged_set = {int(i) for i in spec.get("quarantined", [])}
        sharded = len(group_paths) > 1 or any(
            split_wal_stem(path.stem)[0] != path.stem for path in group_paths
        )
        committed_seqs: List[int] = []
        for wal_path in group_paths:
            _, partition_index = split_wal_stem(wal_path.stem)
            report.files_checked += 1
            try:
                report.bytes_checked += wal_path.stat().st_size
                recovery = read_wal(wal_path, committed, truncate_torn=False)
            except StorageCorruptError as exc:
                report.error(
                    wal_path, "wal-corrupt", exc.reason,
                    collection=collection_name, partition=partition_index,
                )
                continue
            except OSError as exc:
                report.error(
                    wal_path, "wal-unreadable", str(exc),
                    collection=collection_name, partition=partition_index,
                )
                continue
            for note in recovery.notes:
                report.warning(
                    wal_path, "wal-tail", note,
                    collection=collection_name, partition=partition_index,
                )
            behind = (
                collection_name in entries
                and committed > collection_epoch
                and recovery.last_epoch < committed
            )
            if behind and partition_index not in flagged_set:
                report.error(
                    wal_path,
                    "wal-behind",
                    f"committed records lost: log ends at epoch "
                    f"{recovery.last_epoch}, database committed epoch "
                    f"{committed}",
                    collection=collection_name,
                    partition=partition_index,
                )
            if sharded:
                committed_seqs.extend(
                    operation["seq"]
                    for operation in recovery.operations
                    if isinstance(operation.get("seq"), int)
                    and int(operation.get("commit_epoch", 0) or 0) > collection_epoch
                )
        # Replay merges the partition streams on seq; the committed,
        # not-yet-checkpointed records must therefore carry each seq exactly
        # once and without holes.  Quarantined shards legitimately remove a
        # slice of the sequence, so the check is skipped while flags stand.
        if sharded and committed_seqs and not flagged_set:
            unique = sorted(set(committed_seqs))
            if len(unique) != len(committed_seqs):
                report.error(
                    directory,
                    "seq-continuity",
                    f"{len(committed_seqs) - len(unique)} duplicate committed "
                    f"seq number(s) across {collection_name!r} partition logs",
                    collection=collection_name,
                )
            low, high = unique[0], unique[-1]
            missing = (high - low + 1) - len(unique)
            if missing:
                report.warning(
                    directory,
                    "seq-continuity",
                    f"{missing} missing committed seq number(s) in range "
                    f"{low}..{high} of {collection_name!r} partition logs",
                    collection=collection_name,
                )
    return report


def _scrub_jsonl_lines(
    report: ScrubReport, path: Path, data: bytes, collection_name: str
) -> None:
    """Deep pass: every snapshot line must decode and parse as JSON."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        report.error(
            path, "snapshot-parse", f"undecodable snapshot: {exc}",
            collection=collection_name,
        )
        return
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            json.loads(line)
        except json.JSONDecodeError as exc:
            report.error(
                path,
                "snapshot-parse",
                f"unparseable JSONL line {line_number}: {exc.msg}",
                collection=collection_name,
            )


# ------------------------------------------------------------------- repair


@dataclass
class RepairReport:
    """What :func:`repair_database` restored, salvaged and discarded."""

    directory: Path
    #: File names moved back out of their quarantine directories.
    restored: List[str] = field(default_factory=list)
    #: The salvage-mode recovery pass over the restored files.
    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    committed_epoch: int = 0

    def render(self) -> str:
        lines = []
        if self.restored:
            lines.append(
                f"restored from quarantine: {', '.join(sorted(self.restored))}"
            )
        lines.append(self.recovery.render())
        lines.append("quarantine lifted; fresh snapshot written")
        return "\n".join(lines)


def repair_database(directory: Path, name: str = "db") -> RepairReport:
    """Salvage a damaged/degraded database in place and lift quarantine.

    Quarantined files are moved back beside their healthy siblings (unless
    a newer file of the same name exists), recovery re-runs in salvage
    mode — parseable committed WAL prefixes replay, snapshot lines load
    with per-line repair — and the result is written out as a fresh,
    checksummed checkpoint snapshot.  The WALs (now folded into the
    snapshot) and the emptied quarantine directories are then removed, so
    a subsequent open or :func:`scrub_database` pass starts clean.  What
    salvage could not parse is gone; the report's recovery notes say what.
    """
    fs = faults.current_fs()
    directory = Path(directory)
    report = RepairReport(directory=directory)
    for qdir in quarantine_dirs(directory):
        original = directory / qdir.name[: -len(QUARANTINE_SUFFIX)]
        damaged = qdir / original.name
        if damaged.exists() and not original.exists():
            fs.replace(damaged, original)
            report.restored.append(original.name)
    recovery = RecoveryReport()
    database = load_database(
        directory, name, report=recovery, truncate=True, salvage=True
    )
    report.recovery = recovery
    report.committed_epoch = recovery.committed_epoch
    # Stamp the salvage snapshot with the committed epoch so the replay
    # filter of any later load agrees the snapshot captures everything.
    database.committed_epoch = recovery.committed_epoch  # type: ignore[attr-defined]
    save_database(database, directory)
    for wal_path in sorted(directory.glob("*.wal")):
        fs.remove(wal_path)
    for qdir in quarantine_dirs(directory):
        for entry in sorted(qdir.iterdir()):
            try:
                fs.remove(entry)
            except OSError:  # pragma: no cover - permissions/races
                pass
        try:
            qdir.rmdir()
        except OSError:  # pragma: no cover - leftover unexpected entry
            pass
    return report
