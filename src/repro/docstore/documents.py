"""Dotted-path access to nested documents.

Documents are plain dicts whose values may be scalars, lists or further
dicts.  Paths use MongoDB's dotted notation (``"meta.hashes"`` or
``"records.2.person.last_name"``); a numeric path segment indexes into a
list.
"""

from __future__ import annotations

import copy
from typing import Any, Iterator, List, Tuple

#: Sentinel distinguishing "path resolves to None" from "path is absent".
MISSING = object()


def get_path(document: Any, path: str, default: Any = None) -> Any:
    """Return the value at dotted ``path`` inside ``document``.

    Returns ``default`` when any segment of the path is absent.  If an
    intermediate value is a list and the next segment is *not* numeric, the
    lookup is broadcast over the list's elements and a list of hits is
    returned (MongoDB's array traversal semantics) — unless no element
    matches, in which case ``default`` is returned.
    """
    value = resolve_path(document, path)
    return default if value is MISSING else value


def resolve_path(document: Any, path: str) -> Any:
    """Like :func:`get_path` but returns :data:`MISSING` for absent paths."""
    segments = path.split(".") if path else []
    return _resolve(document, segments)


def _resolve(value: Any, segments: List[str]) -> Any:
    if not segments:
        return value
    head, rest = segments[0], segments[1:]
    if isinstance(value, dict):
        if head not in value:
            return MISSING
        return _resolve(value[head], rest)
    if isinstance(value, list):
        if head.isdigit():
            index = int(head)
            if index >= len(value):
                return MISSING
            return _resolve(value[index], rest)
        hits = []
        for element in value:
            resolved = _resolve(element, segments)
            if resolved is not MISSING:
                hits.append(resolved)
        return hits if hits else MISSING
    return MISSING


def set_path(document: dict, path: str, value: Any) -> None:
    """Set ``value`` at dotted ``path``, creating intermediate dicts."""
    segments = path.split(".")
    target = document
    for segment in segments[:-1]:
        if isinstance(target, list):
            target = target[int(segment)]
            continue
        if segment not in target or not isinstance(target[segment], (dict, list)):
            target[segment] = {}
        target = target[segment]
    last = segments[-1]
    if isinstance(target, list):
        target[int(last)] = value
    else:
        target[last] = value


def unset_path(document: dict, path: str) -> bool:
    """Remove the value at dotted ``path``; returns True when removed."""
    segments = path.split(".")
    target: Any = document
    for segment in segments[:-1]:
        if isinstance(target, dict):
            if segment not in target:
                return False
            target = target[segment]
        elif isinstance(target, list) and segment.isdigit():
            index = int(segment)
            if index >= len(target):
                return False
            target = target[index]
        else:
            return False
    last = segments[-1]
    if isinstance(target, dict) and last in target:
        del target[last]
        return True
    return False


def deep_copy(document: dict) -> dict:
    """Deep-copy a document (documents are JSON-like, so this is safe)."""
    return copy.deepcopy(document)


def iter_index_keys(document: dict, path: str) -> Iterator[Any]:
    """Yield every value ``path`` takes inside ``document`` for indexing.

    Arrays are expanded into one key per element (multikey indexes).  An
    absent path yields a single ``None`` key so missing values are indexed
    and ``{"field": None}`` queries can use the index.
    """
    value = resolve_path(document, path)
    if value is MISSING:
        yield None
        return
    if isinstance(value, list):
        if not value:
            yield None
            return
        for element in value:
            yield _freeze(element)
        return
    yield _freeze(value)


def _freeze(value: Any) -> Any:
    """Convert ``value`` into a hashable key for hash indexes."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def flatten(document: dict, prefix: str = "") -> List[Tuple[str, Any]]:
    """Flatten a nested document into ``(dotted_path, scalar)`` pairs."""
    items: List[Tuple[str, Any]] = []
    for key, value in document.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            items.extend(flatten(value, path))
        else:
            items.append((path, value))
    return items
