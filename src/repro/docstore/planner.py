"""Cost-based query planning and execution for collection reads.

The planner turns a filter document (plus an optional sort specification or
an aggregation-pipeline head) into an access-path :class:`Plan`:

* **id_lookup** — a top-level ``_id`` equality resolves through the unique
  id map to at most one document;
* **index_lookup** — an equality or ``$in`` condition resolves through a
  hash index to a candidate set;
* **index_range** — ``$gt/$gte/$lt/$lte`` bounds (and point equalities when
  only a sorted index exists) resolve through a sorted index;
* **index_order** — a single-field sort is served in index order with no
  sorting at all;
* **full_scan** — nothing narrows the read.

The planner decomposes the filter into *conjuncts* (top-level conditions
plus flattened top-level ``$and`` branches, one clause per ``$``-operator),
derives an indexable *atom* from each conjunct where possible, prices every
usable index access without materializing it (hash-bucket sizes, bisect
positions in sorted indexes), and picks the cheapest candidate set.  All
other conjuncts form the **residual** filter, which is the only predicate
evaluated against candidate documents.

A chosen access path is always *exact* for the conjuncts it covers — the
candidate set equals the set of documents matching those conjuncts, under
MongoDB's any-element array semantics — so covered conjuncts are dropped
from the residual.  The few shapes where an index access would be a strict
superset (equality with ``None``, whose bucket also holds documents with
empty-list values) still narrow the scan but keep their conjunct in the
residual.  Conditions that an index could *miss* documents for (literal
list equality through a multikey hash index, mixed-type range bounds) are
never planned against an index in the first place.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.docstore.documents import _freeze, resolve_path
from repro.docstore.errors import QueryError
from repro.docstore.indexes import HashIndex, SortedIndex
from repro.docstore.matching import Predicate, _is_operator_doc, compile_filter
from repro.docstore.partition import shard_key_shard
from repro.docstore.views import lazy_document, wrap_value

#: Access-path names reported by ``Collection.explain``.
FULL_SCAN = "full_scan"
ID_LOOKUP = "id_lookup"
INDEX_LOOKUP = "index_lookup"
INDEX_RANGE = "index_range"
INDEX_ORDER = "index_order"

_RANGE_OPS = frozenset({"$gt", "$gte", "$lt", "$lte"})
#: Operand types a sorted index can seek to (share a type bucket).
_RANGE_TYPES = (bool, int, float, str)

#: Deterministic tie-break between equally cheap access paths.
_ACCESS_RANK = {ID_LOOKUP: 0, INDEX_LOOKUP: 1, INDEX_RANGE: 2}


@dataclasses.dataclass(frozen=True)
class _Atom:
    """One indexable conjunct: a single operator condition on one path."""

    path: str
    op: str  # "$eq" | "$in" | "$gt" | "$gte" | "$lt" | "$lte"
    operand: Any
    clause: int  # position in the conjunct clause list


@dataclasses.dataclass
class _Option:
    """One way to obtain a candidate set, priced but not yet materialized."""

    access: str
    index_name: Optional[str]
    estimate: int
    covered: frozenset  # clause positions the candidate set enforces exactly
    fetch: Callable[[], Iterable[int]]
    #: Constant-free rebuild instructions for the plan cache: how to fetch
    #: this candidate set against *any* partition state, with the operands
    #: re-read from the live query's atoms (see ``bind_template``).
    recipe: Optional[tuple] = None


@dataclasses.dataclass(frozen=True)
class PlanChoice:
    """The shape-stable part of a planning decision, cacheable per query shape.

    Everything here is derived from the filter's *structure* (operator
    skeleton plus the operand classifications the planner branches on), so
    a choice recorded for one query can be re-bound to any partition state
    and any constants of the same shape: the candidate fetch is re-executed
    through ``recipe`` and the residual is rebuilt from the live clauses.
    ``None`` stands for the no-usable-option full-scan decision.
    """

    access: str
    index_name: Optional[str]
    covered: frozenset
    recipe: tuple


@dataclasses.dataclass
class Plan:
    """How a read will execute; produced by :func:`plan_read`."""

    access: str
    candidate_ids: Optional[List[int]]  # ascending; None means scan everything
    index_name: Optional[str]
    indexes_used: List[str]
    residual: Optional[dict]  # conjuncts not enforced by the access path
    residual_predicate: Optional[Predicate]
    order: str = "none"  # "none" | "index" | "sort"
    order_index: Optional[str] = None
    reverse: bool = False
    sort_spec: Optional[List[Tuple[str, int]]] = None
    pushdown: List[str] = dataclasses.field(default_factory=list)

    @property
    def plan_name(self) -> str:
        """The access-path name ``explain`` reports."""
        if self.order == "index" and self.access == FULL_SCAN:
            return INDEX_ORDER
        return self.access

    def describe(self, total: int) -> dict:
        """Serializable description for ``Collection.explain``."""
        candidates = (
            len(self.candidate_ids) if self.candidate_ids is not None else total
        )
        return {
            "plan": self.plan_name,
            "candidates": candidates,
            "documents": total,
            "index": self.index_name,
            "indexes_used": list(self.indexes_used),
            "residual": self.residual,
            "order": self.order,
            "order_index": self.order_index,
            "pushdown": list(self.pushdown),
        }


# --------------------------------------------------------------- decompose


def _split_conjuncts(filter_doc: dict) -> Tuple[List[dict], List[_Atom]]:
    """Decompose a (pre-validated) filter into conjunct clauses and atoms.

    Every clause is an independent filter document; their conjunction is
    semantically identical to ``filter_doc`` (operator docs are split per
    operator, top-level ``$and`` branches are flattened recursively).
    """
    clauses: List[dict] = []
    atoms: List[_Atom] = []

    def walk(doc: dict) -> None:
        for key, condition in doc.items():
            if (
                key == "$and"
                and isinstance(condition, (list, tuple))
                and condition
                and all(isinstance(sub, dict) for sub in condition)
            ):
                for sub in condition:
                    walk(sub)
            elif isinstance(key, str) and key.startswith("$"):
                clauses.append({key: condition})
            elif _is_operator_doc(condition):
                for op, operand in condition.items():
                    position = len(clauses)
                    clauses.append({key: {op: operand}})
                    if op == "$eq" or op == "$in" or op in _RANGE_OPS:
                        atoms.append(_Atom(str(key), op, operand, position))
            else:
                position = len(clauses)
                clauses.append({key: condition})
                atoms.append(_Atom(str(key), "$eq", condition, position))

    walk(filter_doc)
    return clauses, atoms


def _eq_exact(operand: Any) -> bool:
    """Whether a hash/sorted point access enforces equality exactly.

    ``None`` is the one inexact case: absent fields *and* empty-list values
    are both indexed under the ``None`` key, but an empty list does not
    equal ``None`` — so the bucket is a strict superset.
    """
    return operand is not None


def _hash_usable(operand: Any) -> bool:
    """Whether a hash bucket for ``operand`` finds every matching document.

    List operands are excluded: a multikey index stores the *elements* of an
    array value, so the frozen tuple of a literal list equality would miss
    documents whose whole array equals the operand.
    """
    return not isinstance(operand, list)


# ----------------------------------------------------------------- options


def _bound_strictness(op: str, operand: Any) -> Tuple[Any, int]:
    """Sort key making the strictest lower/upper bound comparable."""
    exclusive = op in ("$gt", "$lt")
    return (operand, 1 if exclusive else 0)


def _range_class(operand: Any) -> Optional[str]:
    if isinstance(operand, (bool, int, float)):
        return "number"
    if isinstance(operand, str):
        return "str"
    return None


def _range_options(
    path: str, atoms: List[_Atom], index: SortedIndex, name: str
) -> List[_Option]:
    """Options served by a sorted index for one path's range atoms."""
    by_class: Dict[str, Dict[str, List[_Atom]]] = {}
    for atom in atoms:
        type_class = _range_class(atom.operand)
        if type_class is None:
            continue
        side = "low" if atom.op in ("$gt", "$gte") else "high"
        by_class.setdefault(type_class, {"low": [], "high": []})[side].append(atom)

    options: List[_Option] = []
    for sides in by_class.values():
        lows, highs = sides["low"], sides["high"]
        low = max(lows, key=lambda a: _bound_strictness(a.op, a.operand), default=None)
        high = min(
            highs,
            key=lambda a: (a.operand, -1 if a.op == "$lt" else 0),
            default=None,
        )
        low_value = low.operand if low is not None else None
        high_value = high.operand if high is not None else None
        include_low = low is None or low.op == "$gte"
        include_high = high is None or high.op == "$lte"
        covered = frozenset(a.clause for a in lows + highs)
        recipe = (
            "range",
            name,
            tuple(a.clause for a in lows),
            tuple(a.clause for a in highs),
        )
        if low is not None and high is not None:
            fetch = lambda i=index, lo=low_value, hi=high_value, il=include_low, ih=include_high: i.range_ids(
                lo, hi, il, ih
            )
        else:
            fetch = lambda i=index, lo=low_value, hi=high_value, il=include_low, ih=include_high: i.range(
                lo, hi, il, ih
            )
        options.append(
            _Option(
                access=INDEX_RANGE,
                index_name=name,
                estimate=index.count_range(
                    low_value, high_value, include_low, include_high
                ),
                covered=covered,
                fetch=fetch,
                recipe=recipe,
            )
        )
    return options


def _collect_options(collection: Any, atoms: List[_Atom]) -> List[_Option]:
    options: List[_Option] = []
    range_atoms: Dict[str, List[_Atom]] = {}

    for atom in atoms:
        if atom.op in _RANGE_OPS:
            if isinstance(atom.operand, _RANGE_TYPES):
                range_atoms.setdefault(atom.path, []).append(atom)
            continue

        if atom.op == "$eq":
            if atom.path == "_id":
                frozen = _freeze(atom.operand)
                options.append(
                    _Option(
                        access=ID_LOOKUP,
                        index_name=None,
                        estimate=0,
                        covered=frozenset([atom.clause]),
                        fetch=lambda c=collection, k=frozen: (
                            [c._by_user_id[k]] if k in c._by_user_id else []
                        ),
                        recipe=("id", atom.clause),
                    )
                )
                continue
            hash_index = collection._indexes.get(f"{atom.path}_hash")
            if isinstance(hash_index, HashIndex) and _hash_usable(atom.operand):
                frozen = _freeze(atom.operand)
                options.append(
                    _Option(
                        access=INDEX_LOOKUP,
                        index_name=f"{atom.path}_hash",
                        estimate=hash_index.estimate(frozen),
                        covered=(
                            frozenset([atom.clause])
                            if _eq_exact(atom.operand)
                            else frozenset()
                        ),
                        fetch=lambda i=hash_index, k=frozen: i.lookup(k),
                        recipe=("hash_eq", f"{atom.path}_hash", atom.clause),
                    )
                )
            sorted_index = collection._indexes.get(f"{atom.path}_sorted")
            if isinstance(sorted_index, SortedIndex) and isinstance(
                atom.operand, _RANGE_TYPES
            ):
                # A point read through a sorted index: range [v, v] is exact
                # even for multikey documents (a key equals v iff some
                # element equals v).
                options.append(
                    _Option(
                        access=INDEX_RANGE,
                        index_name=f"{atom.path}_sorted",
                        estimate=sorted_index.count_range(
                            atom.operand, atom.operand, True, True
                        ),
                        covered=frozenset([atom.clause]),
                        fetch=lambda i=sorted_index, v=atom.operand: i.range(
                            v, v, True, True
                        ),
                        recipe=("sorted_point", f"{atom.path}_sorted", atom.clause),
                    )
                )
            continue

        if atom.op == "$in":
            if not isinstance(atom.operand, (list, tuple, set)):
                continue  # compile_filter already rejected it
            elements = list(atom.operand)
            hash_index = collection._indexes.get(f"{atom.path}_hash")
            if isinstance(hash_index, HashIndex) and all(
                _hash_usable(element) for element in elements
            ):
                frozen = [_freeze(element) for element in elements]
                options.append(
                    _Option(
                        access=INDEX_LOOKUP,
                        index_name=f"{atom.path}_hash",
                        estimate=sum(hash_index.estimate(k) for k in frozen),
                        covered=(
                            frozenset([atom.clause])
                            if all(_eq_exact(element) for element in elements)
                            else frozenset()
                        ),
                        fetch=lambda i=hash_index, ks=frozen: set().union(
                            *(i.lookup(k) for k in ks)
                        )
                        if ks
                        else set(),
                        recipe=("hash_in", f"{atom.path}_hash", atom.clause),
                    )
                )

    for path, path_atoms in range_atoms.items():
        index = collection._indexes.get(f"{path}_sorted")
        if isinstance(index, SortedIndex):
            options.extend(_range_options(path, path_atoms, index, f"{path}_sorted"))

    return options


# -------------------------------------------------------------------- plan


def _rebuild_filter(clauses: List[dict]) -> Optional[dict]:
    if not clauses:
        return None
    if len(clauses) == 1:
        return clauses[0]
    return {"$and": clauses}


def plan_read(
    collection: Any,
    filter_doc: Optional[dict] = None,
    sort: Optional[Sequence[Tuple[str, int]]] = None,
) -> Plan:
    """Choose the cheapest access path for a filter (+ optional sort).

    Compiles the full filter first so every malformed-filter ``QueryError``
    surfaces exactly as it would on the unplanned path.
    """
    plan, _choice = plan_read_with_choice(collection, filter_doc, sort)
    return plan


def plan_read_with_choice(
    collection: Any,
    filter_doc: Optional[dict] = None,
    sort: Optional[Sequence[Tuple[str, int]]] = None,
    predicate_for: Callable[[dict], Predicate] = compile_filter,
) -> Tuple[Plan, Optional[PlanChoice]]:
    """:func:`plan_read` that also reports the cacheable :class:`PlanChoice`.

    ``predicate_for`` lets the plan cache substitute its memoized
    ``compile_filter`` — it must raise exactly like ``compile_filter`` for
    malformed filters.  The returned choice is ``None`` when no index
    option was usable (the full-scan decision).
    """
    filter_doc = filter_doc or {}
    full_predicate = predicate_for(filter_doc) if filter_doc else None

    candidate_ids: Optional[List[int]] = None
    index_name: Optional[str] = None
    access = FULL_SCAN
    residual: Optional[dict] = filter_doc if filter_doc else None
    residual_predicate: Optional[Predicate] = full_predicate
    choice: Optional[PlanChoice] = None

    if filter_doc:
        clauses, atoms = _split_conjuncts(filter_doc)
        options = _collect_options(collection, atoms)
        if options:
            winner = min(
                options,
                key=lambda o: (
                    o.estimate,
                    _ACCESS_RANK[o.access],
                    o.index_name or "",
                ),
            )
            candidate_ids = sorted(set(winner.fetch()))
            access = winner.access
            index_name = winner.index_name
            if winner.recipe is not None:
                choice = PlanChoice(
                    access=winner.access,
                    index_name=winner.index_name,
                    covered=winner.covered,
                    recipe=winner.recipe,
                )
            remaining = [
                clause
                for position, clause in enumerate(clauses)
                if position not in winner.covered
            ]
            residual = _rebuild_filter(remaining)
            if residual is None:
                residual_predicate = None
            elif len(remaining) == len(clauses):
                # Nothing was dropped; reuse the already-compiled predicate
                # (clause splitting preserves conjunction semantics).
                residual_predicate = full_predicate
            else:
                residual_predicate = predicate_for(residual)

    order, order_index, reverse, sort_spec = _order_decision(
        collection, sort, candidate_ids
    )
    indexes_used = [name for name in (index_name, order_index) if name]
    plan = Plan(
        access=access,
        candidate_ids=candidate_ids,
        index_name=index_name,
        indexes_used=indexes_used,
        residual=residual,
        residual_predicate=residual_predicate,
        order=order,
        order_index=order_index,
        reverse=reverse,
        sort_spec=sort_spec,
    )
    return plan, choice


def _order_decision(
    collection: Any,
    sort: Optional[Sequence[Tuple[str, int]]],
    candidate_ids: Optional[List[int]],
) -> Tuple[str, Optional[str], bool, Optional[List[Tuple[str, int]]]]:
    """The ordering tail of planning, shared by cold plans and re-binds."""
    order = "none"
    order_index: Optional[str] = None
    reverse = False
    sort_spec = [tuple(item) for item in sort] if sort else None
    if sort_spec:
        order = "sort"
        if len(sort_spec) == 1 and candidate_ids is None:
            field, direction = sort_spec[0]
            index = collection._indexes.get(f"{field}_sorted")
            if isinstance(index, SortedIndex) and index.order_usable():
                order = "index"
                order_index = f"{field}_sorted"
                reverse = direction == -1
    return order, order_index, reverse, sort_spec  # type: ignore[return-value]


def _run_recipe(
    state: Any, recipe: tuple, atom_by_clause: Dict[int, _Atom]
) -> Optional[Iterable[int]]:
    """Re-execute a cached candidate fetch against ``state``.

    Returns ``None`` when the recipe no longer applies (an index missing on
    this state, an atom shape mismatch) — callers fall back to cold
    planning, so a stale recipe can cost time but never correctness.
    """
    kind = recipe[0]
    if kind == "id":
        atom = atom_by_clause.get(recipe[1])
        if atom is None:
            return None
        frozen = _freeze(atom.operand)
        by_user_id = state._by_user_id
        return [by_user_id[frozen]] if frozen in by_user_id else []
    if kind == "hash_eq":
        index = state._indexes.get(recipe[1])
        atom = atom_by_clause.get(recipe[2])
        if not isinstance(index, HashIndex) or atom is None:
            return None
        return index.lookup(_freeze(atom.operand))
    if kind == "hash_in":
        index = state._indexes.get(recipe[1])
        atom = atom_by_clause.get(recipe[2])
        if not isinstance(index, HashIndex) or atom is None:
            return None
        if not isinstance(atom.operand, (list, tuple, set)):
            return None
        frozen = [_freeze(element) for element in atom.operand]
        return set().union(*(index.lookup(k) for k in frozen)) if frozen else set()
    if kind == "sorted_point":
        index = state._indexes.get(recipe[1])
        atom = atom_by_clause.get(recipe[2])
        if not isinstance(index, SortedIndex) or atom is None:
            return None
        return index.range(atom.operand, atom.operand, True, True)
    if kind == "range":
        index = state._indexes.get(recipe[1])
        if not isinstance(index, SortedIndex):
            return None
        lows = [atom_by_clause[c] for c in recipe[2] if c in atom_by_clause]
        highs = [atom_by_clause[c] for c in recipe[3] if c in atom_by_clause]
        if len(lows) != len(recipe[2]) or len(highs) != len(recipe[3]):
            return None
        low = max(lows, key=lambda a: _bound_strictness(a.op, a.operand), default=None)
        high = min(
            highs,
            key=lambda a: (a.operand, -1 if a.op == "$lt" else 0),
            default=None,
        )
        low_value = low.operand if low is not None else None
        high_value = high.operand if high is not None else None
        include_low = low is None or low.op == "$gte"
        include_high = high is None or high.op == "$lte"
        if low is not None and high is not None:
            return index.range_ids(low_value, high_value, include_low, include_high)
        return index.range(low_value, high_value, include_low, include_high)
    return None


def bind_template(
    state: Any,
    choice: Optional[PlanChoice],
    filter_doc: Optional[dict],
    clauses: List[dict],
    atoms: List[_Atom],
    sort: Optional[Sequence[Tuple[str, int]]],
    predicate_for: Callable[[dict], Predicate] = compile_filter,
) -> Optional[Plan]:
    """Bind a cached :class:`PlanChoice` to one partition state.

    The value-dependent pieces — candidate fetch, residual filter and its
    predicate, the ordering decision — are all recomputed from the live
    query's clauses/atoms, so the bound plan is exactly what
    :func:`plan_read` would have produced had it picked the same winning
    option.  Returns ``None`` when the choice cannot be re-bound (caller
    falls back to cold planning).
    """
    filter_doc = filter_doc or {}
    candidate_ids: Optional[List[int]] = None
    index_name: Optional[str] = None
    access = FULL_SCAN
    residual: Optional[dict] = filter_doc if filter_doc else None
    residual_predicate: Optional[Predicate] = None

    if choice is not None:
        atom_by_clause = {atom.clause: atom for atom in atoms}
        fetched = _run_recipe(state, choice.recipe, atom_by_clause)
        if fetched is None:
            return None
        candidate_ids = sorted(set(fetched))
        access = choice.access
        index_name = choice.index_name
        remaining = [
            clause
            for position, clause in enumerate(clauses)
            if position not in choice.covered
        ]
        residual = _rebuild_filter(remaining)
        if residual is None:
            residual_predicate = None
        elif len(remaining) == len(clauses):
            residual_predicate = predicate_for(filter_doc)
        else:
            residual_predicate = predicate_for(residual)
    elif filter_doc:
        residual_predicate = predicate_for(filter_doc)

    order, order_index, reverse, sort_spec = _order_decision(
        state, sort, candidate_ids
    )
    indexes_used = [name for name in (index_name, order_index) if name]
    return Plan(
        access=access,
        candidate_ids=candidate_ids,
        index_name=index_name,
        indexes_used=indexes_used,
        residual=residual,
        residual_predicate=residual_predicate,
        order=order,
        order_index=order_index,
        reverse=reverse,
        sort_spec=sort_spec,
    )


# --------------------------------------------------------------- execution


def iter_matching_ids(collection: Any, plan: Plan) -> Iterator[int]:
    """Ids of matching documents in ascending (scan) order."""
    documents = collection._documents
    ids: Iterable[int] = (
        plan.candidate_ids if plan.candidate_ids is not None else sorted(documents)
    )
    predicate = plan.residual_predicate
    for internal_id in ids:
        document = documents.get(internal_id)
        if document is None:
            continue
        if predicate is None or predicate(document):
            yield internal_id


def _ordered_id_stream(collection: Any, plan: Plan) -> Iterator[int]:
    """Matching ids in index order (missing/None values sort first)."""
    index = collection._indexes[plan.order_index]
    indexed = index.indexed_ids()
    missing = [i for i in sorted(collection._documents) if i not in indexed]
    if plan.reverse:
        stream: Iterator[int] = itertools.chain(
            index.ordered_ids(reverse=True), missing
        )
    else:
        stream = itertools.chain(missing, index.ordered_ids(reverse=False))
    predicate = plan.residual_predicate
    documents = collection._documents
    for internal_id in stream:
        document = documents.get(internal_id)
        if document is None:
            continue
        if predicate is None or predicate(document):
            yield internal_id


def _sort_key(value: Any) -> tuple:
    from repro.docstore.aggregation import _sort_key as aggregation_sort_key

    return aggregation_sort_key(value)


def execute_find(
    collection: Any,
    plan: Plan,
    skip: int = 0,
    limit: Optional[int] = None,
    materialize: Callable[[dict], dict] = lazy_document,
) -> Iterator[dict]:
    """Stream materialized documents a planned read returns.

    ``materialize`` is applied only to the returned window: by default a
    copy-on-read :class:`~repro.docstore.views.DocumentView` (zero-copy
    until the caller mutates), or ``deep_copy`` under
    ``Collection(copy_mode="eager")``.  Sorted reads order ``(sort key,
    internal id)`` pairs over the stored documents and materialize after
    ``skip``/``limit`` are applied.
    """
    documents = collection._documents

    if plan.order == "index":
        window = itertools.islice(
            _ordered_id_stream(collection, plan),
            skip,
            None if limit is None else skip + limit,
        )
        for internal_id in window:
            yield materialize(documents[internal_id])
        return

    if plan.order == "sort" and plan.sort_spec:
        matching = list(iter_matching_ids(collection, plan))
        for field, direction in reversed(plan.sort_spec):
            matching.sort(
                key=lambda i, field=field: _sort_key(
                    resolve_path(documents[i], field)
                ),
                reverse=direction == -1,
            )
        if skip:
            matching = matching[skip:]
        if limit is not None:
            matching = matching[:limit]
        for internal_id in matching:
            yield materialize(documents[internal_id])
        return

    window = itertools.islice(
        iter_matching_ids(collection, plan),
        skip,
        None if limit is None else skip + limit,
    )
    for internal_id in window:
        yield materialize(documents[internal_id])


# ----------------------------------------------------------- shard routing


def route_shards(
    shard_key: str, shards: int, filter_doc: Optional[dict]
) -> Optional[List[int]]:
    """Partition indices a filter can be restricted to (``None`` = all).

    Routing is sound only for *string* shard-key conjuncts: string values
    are placed by their own hash, while every other value type falls back
    to an ``_id`` hash (:func:`repro.docstore.partition.fallback_shard`).
    A top-level (or ``$and``-flattened) ``$eq``/``$in`` conjunct on the
    shard key therefore pins the query to the hash shards of its string
    operands; multiple such conjuncts intersect (possibly to the empty
    list — a provably empty result).  Callers must additionally disable
    routing when any document carries a *list* shard-key value (the
    collection tracks that): a multikey document matches a string equality
    but is fallback-placed.
    """
    if shards <= 1 or not filter_doc or not isinstance(filter_doc, dict):
        return None
    _clauses, atoms = _split_conjuncts(filter_doc)
    hit: Optional[set] = None
    for atom in atoms:
        if atom.path != shard_key:
            continue
        if atom.op == "$eq" and isinstance(atom.operand, str):
            routed = {shard_key_shard(atom.operand, shards)}
        elif (
            atom.op == "$in"
            and isinstance(atom.operand, (list, tuple))
            and all(isinstance(element, str) for element in atom.operand)
        ):
            routed = {shard_key_shard(element, shards) for element in atom.operand}
        else:
            continue
        hit = routed if hit is None else (hit & routed)
    return sorted(hit) if hit is not None else None


# ------------------------------------------------------- sharded execution


class _Desc:
    """Inverts comparison of a sort-key component for descending merges."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Desc") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and other.key == self.key


def _merge_key_fn(
    sort_spec: Sequence[Tuple[str, int]]
) -> Callable[[dict, int], tuple]:
    """Composite merge key reproducing the multi-pass stable sort order.

    A stable multi-pass sort (last field first) over an ascending-id
    stream orders documents exactly by ``(key_1 dir_1, ..., key_n dir_n,
    internal id asc)`` — so per-shard streams sorted by this key can be
    k-way merged into the identical global order.
    """
    fields = [(field, direction) for field, direction in sort_spec]

    def key(document: dict, internal_id: int) -> tuple:
        parts: List[Any] = []
        for field, direction in fields:
            component = _sort_key(resolve_path(document, field))
            parts.append(_Desc(component) if direction == -1 else component)
        parts.append(internal_id)
        return tuple(parts)

    return key


def plan_states(
    states: Sequence[Any],
    filter_doc: Optional[dict] = None,
    sort: Optional[Sequence[Tuple[str, int]]] = None,
) -> List[Plan]:
    """One :class:`Plan` per partition state for the same logical read."""
    return [plan_read(state, filter_doc, sort) for state in states]


def iter_sharded_matching(
    states: Sequence[Any], plans: Sequence[Plan]
) -> Iterator[Tuple[Any, int]]:
    """``(state, internal id)`` pairs in global ascending id order.

    Internal ids are assigned from one collection-wide counter, so they are
    unique across partitions and a k-way merge of the per-partition
    ascending streams is exactly the unsharded scan order.
    """
    streams = [
        _id_state_pairs(state, plan) for state, plan in zip(states, plans)
    ]
    for internal_id, state in heapq.merge(*streams, key=lambda pair: pair[0]):
        yield state, internal_id


def _id_state_pairs(state: Any, plan: Plan) -> Iterator[Tuple[int, Any]]:
    for internal_id in iter_matching_ids(state, plan):
        yield internal_id, state


def _state_sorted_ids(state: Any, plan: Plan, key: Callable) -> List[tuple]:
    """One partition's matching ids as ``(merge key, id, state)``, sorted."""
    documents = state._documents
    entries = [
        (key(documents[internal_id], internal_id), internal_id, state)
        for internal_id in iter_matching_ids(state, plan)
    ]
    entries.sort(key=lambda entry: entry[0])
    return entries


def _state_index_ordered(state: Any, plan: Plan, key: Callable) -> Iterator[tuple]:
    """One partition's index-ordered stream as ``(merge key, id, state)``.

    Valid because ``order_usable`` guarantees index order equals the sort
    routine's order, and equal-key runs stream in ascending id order in
    both directions — so the stream is already sorted by the merge key.
    """
    documents = state._documents
    for internal_id in _ordered_id_stream(state, plan):
        yield key(documents[internal_id], internal_id), internal_id, state


def execute_sharded_find(
    states: Sequence[Any],
    plans: Sequence[Plan],
    skip: int = 0,
    limit: Optional[int] = None,
    max_workers: int = 0,
    materialize: Callable[[dict], dict] = lazy_document,
) -> Iterator[dict]:
    """Scatter-gather ``execute_find`` over several partition states.

    Single-partition reads delegate to :func:`execute_find` unchanged.
    Multi-partition reads run the per-partition scans (in threads when
    ``max_workers`` > 1, via :func:`repro.core.parallel.run_read_shards`)
    and k-way merge the streams: by internal id for unordered reads, by
    the composite sort key for sorted reads — bit-identical to the
    unsharded execution in every case.  Only the returned window is ever
    materialized (lazy views by default, deep copies in eager mode).
    """
    if len(states) == 1:
        yield from execute_find(
            states[0], plans[0], skip=skip, limit=limit, materialize=materialize
        )
        return
    if not states:
        return
    plan = plans[0]
    stop = None if limit is None else skip + limit

    if plan.sort_spec:
        # Sorted scatter-gather.  A partition whose index is order-usable
        # streams lazily in index order; the others sort their matches —
        # both are ordered by the same composite key, so they merge freely.
        key = _merge_key_fn(plan.sort_spec)
        if max_workers > 1:
            from repro.core.parallel import run_read_shards

            streams: List[Iterable[tuple]] = run_read_shards(
                _state_sorted_ids,
                [(state, state_plan, key) for state, state_plan in zip(states, plans)],
                max_workers,
                label="scatter-gather sorted read",
            )
        else:
            streams = [
                _state_index_ordered(state, state_plan, key)
                if state_plan.order == "index"
                else _state_sorted_ids(state, state_plan, key)
                for state, state_plan in zip(states, plans)
            ]
        merged = heapq.merge(*streams, key=lambda entry: entry[0])
        for _key, internal_id, state in itertools.islice(merged, skip, stop):
            yield materialize(state._documents[internal_id])
        return

    if max_workers > 1:
        from repro.core.parallel import run_read_shards

        id_lists = run_read_shards(
            lambda state, state_plan: [
                (internal_id, state)
                for internal_id in iter_matching_ids(state, state_plan)
            ],
            [(state, state_plan) for state, state_plan in zip(states, plans)],
            max_workers,
            label="scatter-gather read",
        )
        pairs: Iterator[Tuple[int, Any]] = heapq.merge(
            *id_lists, key=lambda pair: pair[0]
        )
        window = itertools.islice(pairs, skip, stop)
        for internal_id, state in window:
            yield materialize(state._documents[internal_id])
        return

    for state, internal_id in itertools.islice(
        iter_sharded_matching(states, plans), skip, stop
    ):
        yield materialize(state._documents[internal_id])


def count_sharded(states: Sequence[Any], plans: Sequence[Plan]) -> int:
    """Sum of per-partition match counts (pure index counts when covered)."""
    total = 0
    for state, plan in zip(states, plans):
        if plan.residual is None and plan.candidate_ids is not None:
            total += len(plan.candidate_ids)
        else:
            total += sum(1 for _ in iter_matching_ids(state, plan))
    return total


# ------------------------------------------------- partial group combining


#: ``$group`` accumulators that combine *exactly* across partitions.
#: ``$sum`` qualifies only with an integer-literal expression (count-style):
#: float sums are not associative bit-for-bit, so they fall back to grouping
#: over the merged stream.
_PARTIAL_GROUP_OPS = frozenset({"$min", "$max", "$first", "$last", "$sum"})


def partial_group_spec(spec: Any) -> Optional[dict]:
    """Parse a ``$group`` spec whose accumulators all combine exactly.

    Returns ``{"id": expr, "accumulators": {field: (op, expr)}}`` when the
    per-partition partial aggregates can be combined into bit-identical
    global results, or ``None`` to fall back to streaming the merged scan
    through the ordinary ``$group`` stage.
    """
    if not isinstance(spec, dict) or "_id" not in spec:
        return None
    accumulators: Dict[str, Tuple[str, Any]] = {}
    for field, accumulator in spec.items():
        if field == "_id":
            continue
        if not isinstance(accumulator, dict) or len(accumulator) != 1:
            return None
        (op, expression), = accumulator.items()
        if op not in _PARTIAL_GROUP_OPS:
            return None
        if op == "$sum" and (
            isinstance(expression, bool) or not isinstance(expression, int)
        ):
            return None
        accumulators[field] = (op, expression)
    return {"id": spec["_id"], "accumulators": accumulators}


def _feed_partial(
    accs: dict,
    accumulators: Dict[str, Tuple[str, Any]],
    document: dict,
    internal_id: int,
) -> None:
    from repro.docstore.aggregation import evaluate

    for field, (op, expression) in accumulators.items():
        if op == "$sum":
            accs[field] = (accs.get(field) or 0) + 1
            continue
        value = evaluate(expression, document)
        if op == "$first":
            if field not in accs:
                accs[field] = (internal_id, value)
            continue
        if op == "$last":
            accs[field] = (internal_id, value)
            continue
        # $min / $max, numeric values only (the accumulator's feed filter).
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            accs.setdefault(field, None)
            continue
        best = accs.get(field)
        if best is None:
            accs[field] = (value, internal_id)
        elif (op == "$min" and value < best[0]) or (op == "$max" and best[0] < value):
            accs[field] = (value, internal_id)


def _combine_partials(
    target: dict, other: dict, accumulators: Dict[str, Tuple[str, Any]]
) -> None:
    """Fold ``other``'s partial aggregates into ``target`` (in place)."""
    if other["first_id"] < target["first_id"]:
        target["first_id"] = other["first_id"]
        target["gid"] = other["gid"]
    mine_accs, their_accs = target["accs"], other["accs"]
    for field, (op, _expression) in accumulators.items():
        mine, theirs = mine_accs.get(field), their_accs.get(field)
        if op == "$sum":
            mine_accs[field] = (mine or 0) + (theirs or 0)
        elif theirs is None:
            continue
        elif mine is None:
            mine_accs[field] = theirs
        elif op == "$first":
            if theirs[0] < mine[0]:
                mine_accs[field] = theirs
        elif op == "$last":
            if theirs[0] > mine[0]:
                mine_accs[field] = theirs
        elif op == "$min":
            if theirs[0] < mine[0] or (
                not (mine[0] < theirs[0]) and theirs[1] < mine[1]
            ):
                mine_accs[field] = theirs
        elif op == "$max":
            if mine[0] < theirs[0] or (
                not (theirs[0] < mine[0]) and theirs[1] < mine[1]
            ):
                mine_accs[field] = theirs


def execute_partial_group(
    states: Sequence[Any],
    plans: Sequence[Plan],
    group: dict,
    copy_value: Callable[[Any], Any] = wrap_value,
) -> List[dict]:
    """Pushed-down ``$group`` via per-partition partials + exact combine.

    Each partition aggregates its own matching documents (one pass, in id
    order); partials merge by group key, tracking the first internal id a
    group was seen at so both the output *order* (first-seen over the
    global stream) and order-sensitive accumulators (``$first``/``$last``,
    tie-breaks in ``$min``/``$max``) reproduce the unsharded stage
    bit-for-bit.
    """
    from repro.docstore.aggregation import evaluate

    id_expression = group["id"]
    accumulators = group["accumulators"]
    merged: Dict[str, dict] = {}
    for state, plan in zip(states, plans):
        documents = state._documents
        partials: Dict[str, dict] = {}
        for internal_id in iter_matching_ids(state, plan):
            document = documents[internal_id]
            gid = evaluate(id_expression, document)
            key = repr(gid)
            partial = partials.get(key)
            if partial is None:
                partial = partials[key] = {
                    "first_id": internal_id,
                    "gid": gid,
                    "accs": {},
                }
            _feed_partial(partial["accs"], accumulators, document, internal_id)
        for key, partial in partials.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = partial
            else:
                _combine_partials(existing, partial, accumulators)
    results: List[dict] = []
    for partial in sorted(merged.values(), key=lambda p: p["first_id"]):
        result = {"_id": copy_value(partial["gid"])}
        for field, (op, expression) in accumulators.items():
            value = partial["accs"].get(field)
            if op == "$sum":
                result[field] = (value or 0) * expression
            elif value is None:
                result[field] = None
            else:
                stored = value[0] if op in ("$min", "$max") else value[1]
                result[field] = copy_value(stored)
        results.append(result)
    return results


# --------------------------------------------------------------- pushdown


def _sort_spec_list(spec: Any) -> Optional[List[Tuple[str, int]]]:
    """A ``$sort`` stage spec as a sort list, or None when not pushable."""
    if not isinstance(spec, dict) or not spec:
        return None
    result: List[Tuple[str, int]] = []
    for field, direction in spec.items():
        if not isinstance(field, str):
            return None
        if isinstance(direction, bool) or direction not in (1, -1):
            return None
        result.append((field, direction))
    return result


@dataclasses.dataclass
class Pushdown:
    """The head of an aggregation pipeline absorbed into the planner."""

    filter_doc: Optional[dict]
    sort_spec: Optional[List[Tuple[str, int]]]
    skip: int
    limit: Optional[int]
    rest: List[dict]
    pushed: List[str]  # stage names, in original order


def split_pushdown(pipeline: Sequence[dict]) -> Pushdown:
    """Peel leading ``$match``/``$sort``/``$skip``/``$limit`` stages.

    Stages are absorbed only when doing so cannot change semantics:

    * every leading ``$match`` is collected (a ``$match`` commutes with a
      stable ``$sort``, so matches after the sort are pushed too);
    * at most one ``$sort`` — a second sort would resort *stably over the
      first*, which a single pushed sort cannot express;
    * consecutive ``$skip``/``$limit`` stages fold into one window, after
      which no further ``$match``/``$sort`` may move;
    * a malformed stage spec stops pushdown so the pipeline raises exactly
      as it would have unplanned.
    """
    matches: List[dict] = []
    sort_spec: Optional[List[Tuple[str, int]]] = None
    skip = 0
    limit: Optional[int] = None
    pushed: List[str] = []
    consumed = 0
    window_started = False

    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            break
        (name, spec), = stage.items()
        if name == "$match" and not window_started:
            if not isinstance(spec, dict):
                break
            try:
                compile_filter(spec)
            except QueryError:
                break
            matches.append(spec)
        elif name == "$sort" and sort_spec is None and not window_started:
            candidate = _sort_spec_list(spec)
            if candidate is None:
                break
            sort_spec = candidate
        elif name == "$skip":
            if isinstance(spec, bool) or not isinstance(spec, int):
                break
            amount = max(spec, 0)
            skip += amount
            if limit is not None:
                limit = max(limit - amount, 0)
            window_started = True
        elif name == "$limit":
            if isinstance(spec, bool) or not isinstance(spec, int):
                break
            amount = max(spec, 0)
            limit = amount if limit is None else min(limit, amount)
            window_started = True
        else:
            break
        pushed.append(name)
        consumed += 1

    if not matches:
        filter_doc: Optional[dict] = None
    elif len(matches) == 1:
        filter_doc = matches[0]
    else:
        filter_doc = {"$and": matches}

    return Pushdown(
        filter_doc=filter_doc,
        sort_spec=sort_spec,
        skip=skip,
        limit=limit,
        rest=list(pipeline[consumed:]),
        pushed=pushed,
    )
