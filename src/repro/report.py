"""Text rendering of the paper's tables from statistics objects.

Turns the stats dataclasses produced by :mod:`repro.core.statistics`,
:mod:`repro.core.irregularities` and :mod:`repro.datasets` into aligned
text tables shaped like the paper's Tables 1–4 — the human-readable face
of the benchmark harness and the CLI.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.irregularities import IrregularityCensus
from repro.core.statistics import RemovalStats, YearStats
from repro.datasets.base import DatasetCharacteristics


def render_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Align ``rows`` under ``header`` (right-aligned columns)."""
    materialised = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(column) for column in header]
    for row in materialised:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(header)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(header))
    ]
    for row in materialised:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_shard_stats(stats: Dict) -> str:
    """Storage-layout table from :meth:`repro.docstore.Database.stats`.

    One row per collection: document count, shard layout, per-shard
    document counts and the balance factor (max shard / mean shard; 1.0
    is perfectly even).
    """
    header = ("collection", "documents", "shards", "shard key",
              "per-shard", "balance", "quarantined")
    body = []
    for name in sorted(stats.get("collections", {})):
        entry = stats["collections"][name]
        quarantined = entry.get("quarantined_shards") or []
        body.append(
            (
                name,
                entry["documents"],
                entry["shards"],
                entry["shard_key"] if entry["shards"] > 1 else "-",
                "/".join(str(count) for count in entry["shard_documents"]),
                f"{entry['balance_factor']:.2f}",
                ",".join(str(index) for index in quarantined) or "-",
            )
        )
    return render_table(header, body)


def render_resilience(stats: Dict) -> str:
    """Resilience counters from :meth:`repro.docstore.Database.stats`.

    Covers the parallel layer's retry/degradation telemetry and the
    storage layer's quarantine/degraded-read state; all zeros on a
    healthy run.
    """
    resilience = stats.get("resilience", {})
    header = ("counter", "value")
    body = [(key, resilience[key]) for key in sorted(resilience)]
    storage = stats.get("storage")
    if storage:
        body.append(("committed epoch", storage.get("committed_epoch", 0)))
        body.append(
            ("ops since checkpoint", storage.get("ops_since_checkpoint", 0))
        )
        scrub = storage.get("last_scrub")
        if scrub is not None:
            body.append(
                (
                    "last scrub",
                    "ok" if scrub.get("ok")
                    else f"{scrub.get('errors', 0)} error(s), "
                         f"{scrub.get('warnings', 0)} warning(s)",
                )
            )
    return render_table(header, body)


def render_year_stats(rows: Sequence[YearStats]) -> str:
    """Table 1: per-year snapshot statistics."""
    header = ("year", "#snapshots", "total records", "new records",
              "new objects", "new record rate", "new object rate")
    body = [
        (
            row.year, row.snapshots, row.total_records, row.new_records,
            row.new_objects, f"{row.new_record_rate:.1%}",
            f"{row.new_object_rate:.1%}",
        )
        for row in rows
    ]
    if rows:
        total_records = sum(r.total_records for r in rows)
        new_records = sum(r.new_records for r in rows)
        new_objects = sum(r.new_objects for r in rows)
        body.append(
            (
                "total", sum(r.snapshots for r in rows), total_records,
                new_records, new_objects,
                f"{new_records / total_records:.1%}" if total_records else "0.0%",
                f"{new_objects / new_records:.1%}" if new_records else "0.0%",
            )
        )
    return render_table(header, body)


def render_removal_stats(rows: Sequence[RemovalStats]) -> str:
    """Table 2: duplicate-removal levels."""
    header = ("duplicate removal", "#records", "#dupl. pairs",
              "avg cluster size", "max", "records removed", "pairs removed")
    body = [
        (
            row.level.value, row.records, row.duplicate_pairs,
            f"{row.avg_cluster_size:.2f}", row.max_cluster_size,
            f"{row.removed_record_share:.1%}", f"{row.removed_pair_share:.1%}",
        )
        for row in rows
    ]
    return render_table(header, body)


def render_characteristics(rows: Sequence[DatasetCharacteristics]) -> str:
    """Table 3: dataset characteristics."""
    header = ("dataset", "#records", "#attributes", "#duplicate pairs",
              "#clusters", "#non-singletons", "max size", "avg size")
    body = [
        (
            row.name, row.records, row.attributes, row.duplicate_pairs,
            row.clusters, row.non_singletons, row.max_cluster_size,
            f"{row.avg_cluster_size:.2f}",
        )
        for row in rows
    ]
    return render_table(header, body)


def render_irregularities(census: IrregularityCensus) -> str:
    """Table 4: irregularity census with examples."""
    header = ("error type", "example", "most common attribute",
              "frequency", "percentage")
    body = []
    for row in census.counts():
        examples = census.examples(row.error_type)
        body.append(
            (
                row.error_type,
                examples[0] if examples else "",
                row.most_common_attribute,
                row.total,
                f"{row.percentage:.1%}",
            )
        )
    return render_table(header, body)


def render_comparison(
    datasets: Dict[str, IrregularityCensus], error_types: Sequence[str]
) -> str:
    """Side-by-side irregularity percentages across datasets."""
    names = list(datasets)
    header = ["error type"] + names
    body = []
    for error_type in error_types:
        row: List[str] = [error_type]
        for name in names:
            row.append(f"{datasets[name].count(error_type).percentage:.1%}")
        body.append(row)
    return render_table(header, body)
