"""Runtime sanitizers for concurrency and determinism hazards.

The static side of this story lives in :mod:`repro.analysis.concurrency`
(the R-code diagnostics).  This module provides the matching *dynamic*
checks, in the style of :mod:`repro.faults`: process-wide, swappable shims
a test installs for the duration of a ``with`` block.

Two sanitizers are provided:

* :func:`freeze_documents` — patches the read surface of
  :class:`repro.docstore.collection.Collection` (``find`` / ``find_one`` /
  ``aggregate`` / ``all``) so every returned document is recursively
  wrapped in :class:`FrozenDocument` / :class:`FrozenList`.  Any caller
  that mutates a query result — the aliasing hazard R104 looks for
  statically — raises :class:`FrozenDocumentError` at the exact mutation
  site instead of silently corrupting shared state.

* :func:`determinism_check` — runs one sharded computation under several
  ``(max_workers, shards)`` configurations and diffs the results.  The
  pipeline's correctness story is "bit-identical to the naive oracle at
  any parallelism"; this harness turns that claim into an executable
  assertion and reports the first divergence when it fails
  (:class:`NondeterminismError`).

Usage::

    from repro import sanitizers

    with sanitizers.freeze_documents():
        rows = collection.find({"kind": "person"})
        rows[0]["name"] = "x"      # raises FrozenDocumentError

    report = sanitizers.determinism_check(
        lambda workers, shards: score_candidates_packed(
            records, keys, matcher, shards=shards, max_workers=workers
        )
    )
    assert report.consistent
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Callable, Iterator, List, NoReturn, Sequence, Tuple

from repro.docstore.collection import Collection

__all__ = [
    "FrozenDocumentError",
    "FrozenDocument",
    "FrozenList",
    "freeze",
    "thaw",
    "freeze_documents",
    "DeterminismReport",
    "NondeterminismError",
    "determinism_check",
    "DEFAULT_CONFIGS",
]


class FrozenDocumentError(TypeError):
    """Mutation of a document returned by the docstore under freezing.

    Raised by :class:`FrozenDocument` / :class:`FrozenList` inside a
    :func:`freeze_documents` block.  The message names the attempted
    operation so the stack trace pinpoints the offending caller — the
    runtime analogue of a static R104 finding.
    """


def _refuse(kind: str, op: str) -> NoReturn:
    raise FrozenDocumentError(
        f"cannot call {kind}.{op}() on a document returned by the docstore "
        f"while freeze_documents() is active; copy it first "
        f"(repro.docstore.documents.deep_copy or sanitizers.thaw)"
    )


class FrozenDocument(dict):
    """A dict whose mutators raise :class:`FrozenDocumentError`.

    Reads behave exactly like a plain dict, so frozen results pass through
    scoring and aggregation code unchanged; only mutation is poisoned.
    """

    __slots__ = ()

    def __setitem__(self, key: Any, value: Any) -> None:
        _refuse("FrozenDocument", "__setitem__")

    def __delitem__(self, key: Any) -> None:
        _refuse("FrozenDocument", "__delitem__")

    def __ior__(self, other: Any) -> "FrozenDocument":
        _refuse("FrozenDocument", "__ior__")

    def clear(self) -> None:
        _refuse("FrozenDocument", "clear")

    def pop(self, *args: Any) -> Any:
        _refuse("FrozenDocument", "pop")

    def popitem(self) -> Tuple[Any, Any]:
        _refuse("FrozenDocument", "popitem")

    def setdefault(self, key: Any, default: Any = None) -> Any:
        _refuse("FrozenDocument", "setdefault")

    def update(self, *args: Any, **kwargs: Any) -> None:
        _refuse("FrozenDocument", "update")

    def __reduce__(self) -> Tuple[Any, ...]:
        # copy.deepcopy / pickle rebuild a *plain* dict: a copy is exactly
        # the sanctioned way to get a mutable version of a frozen result.
        return (dict, (), None, None, iter(self.items()))


class FrozenList(list):
    """A list whose mutators raise :class:`FrozenDocumentError`."""

    __slots__ = ()

    def __setitem__(self, index: Any, value: Any) -> None:
        _refuse("FrozenList", "__setitem__")

    def __delitem__(self, index: Any) -> None:
        _refuse("FrozenList", "__delitem__")

    def __iadd__(self, other: Any) -> "FrozenList":
        _refuse("FrozenList", "__iadd__")

    def __imul__(self, factor: Any) -> "FrozenList":
        _refuse("FrozenList", "__imul__")

    def append(self, value: Any) -> None:
        _refuse("FrozenList", "append")

    def extend(self, values: Any) -> None:
        _refuse("FrozenList", "extend")

    def insert(self, index: int, value: Any) -> None:
        _refuse("FrozenList", "insert")

    def remove(self, value: Any) -> None:
        _refuse("FrozenList", "remove")

    def pop(self, index: int = -1) -> Any:
        _refuse("FrozenList", "pop")

    def clear(self) -> None:
        _refuse("FrozenList", "clear")

    def sort(self, *args: Any, **kwargs: Any) -> None:
        _refuse("FrozenList", "sort")

    def reverse(self) -> None:
        _refuse("FrozenList", "reverse")

    def __reduce__(self) -> Tuple[Any, ...]:
        return (list, (), None, iter(self), None)


def freeze(value: Any) -> Any:
    """Recursively wrap dicts/lists in their frozen counterparts.

    Scalars (and anything that is not a dict or list) pass through
    unchanged; documents are JSON-like, so this covers every container the
    docstore can return.
    """
    if isinstance(value, dict):
        return FrozenDocument((key, freeze(item)) for key, item in value.items())
    if isinstance(value, list):
        return FrozenList(freeze(item) for item in value)
    return value


def thaw(value: Any) -> Any:
    """Recursively convert frozen containers back into plain dicts/lists."""
    if isinstance(value, dict):
        return {key: thaw(item) for key, item in value.items()}
    if isinstance(value, list):
        return [thaw(item) for item in value]
    return value


#: The Collection read methods the sanitizer wraps.  Each returns documents
#: (or containers of documents) that callers must treat as immutable.
_READ_METHODS = ("find", "find_one", "aggregate", "all")


def _freezing(method: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(self: Collection, *args: Any, **kwargs: Any) -> Any:
        result = method(self, *args, **kwargs)
        if isinstance(result, Iterator) or (
            hasattr(result, "__next__") and not isinstance(result, (list, dict))
        ):
            return (freeze(item) for item in result)
        return freeze(result)

    wrapper.__name__ = method.__name__
    wrapper.__doc__ = method.__doc__
    return wrapper


@contextlib.contextmanager
def freeze_documents() -> Iterator[None]:
    """Poison docstore read results against caller mutation.

    For the duration of the ``with`` block, every document returned by
    ``Collection.find`` / ``find_one`` / ``aggregate`` / ``all`` (on *any*
    collection in the process) is frozen: mutating it raises
    :class:`FrozenDocumentError` at the mutation site.  Reads, projection,
    equality and iteration are unaffected.  Nested blocks are safe; the
    original methods are always restored on exit.
    """
    originals = {name: getattr(Collection, name) for name in _READ_METHODS}
    for name, method in originals.items():
        setattr(Collection, name, _freezing(method))
    try:
        yield
    finally:
        for name, method in originals.items():
            setattr(Collection, name, method)


# --------------------------------------------------------------- determinism


#: Default ``(max_workers, shards)`` configurations exercised by
#: :func:`determinism_check`: serial, mildly parallel, and over-sharded.
DEFAULT_CONFIGS: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 4), (4, 8))


class NondeterminismError(AssertionError):
    """A sharded computation produced different results across configs."""


@dataclasses.dataclass(frozen=True)
class DeterminismReport:
    """Outcome of a :func:`determinism_check` run.

    ``configs`` lists every ``(max_workers, shards)`` pair exercised,
    ``baseline`` is the result of the first configuration, and
    ``divergences`` holds one human-readable description per configuration
    that disagreed with the baseline (empty when ``consistent``).
    """

    label: str
    configs: Tuple[Tuple[int, int], ...]
    baseline: Any
    divergences: Tuple[str, ...]

    @property
    def consistent(self) -> bool:
        """True when every configuration matched the baseline exactly."""
        return not self.divergences


def _first_divergence(expected: Any, actual: Any, path: str = "$") -> str:
    """Describe the first point where ``actual`` differs from ``expected``."""
    if type(expected) is not type(actual) and not (
        isinstance(expected, (list, tuple)) and isinstance(actual, (list, tuple))
    ):
        return (
            f"{path}: type {type(actual).__name__} != {type(expected).__name__}"
        )
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in expected:
            if key not in actual:
                return f"{path}.{key}: missing"
            if actual[key] != expected[key]:
                return _first_divergence(expected[key], actual[key], f"{path}.{key}")
        extra = [key for key in actual if key not in expected]
        if extra:
            return f"{path}.{extra[0]}: unexpected key"
        return f"{path}: dicts compare unequal"
    if isinstance(expected, (list, tuple)) and isinstance(actual, (list, tuple)):
        if len(expected) != len(actual):
            return f"{path}: length {len(actual)} != {len(expected)}"
        for index, (exp, act) in enumerate(zip(expected, actual)):
            if exp != act:
                return _first_divergence(exp, act, f"{path}[{index}]")
        return f"{path}: sequences compare unequal"
    return f"{path}: {actual!r} != {expected!r}"


def determinism_check(
    compute: Callable[[int, int], Any],
    configs: Sequence[Tuple[int, int]] = DEFAULT_CONFIGS,
    *,
    label: str = "",
    raise_on_divergence: bool = True,
) -> DeterminismReport:
    """Run ``compute(max_workers, shards)`` per config and diff the results.

    The first configuration establishes the baseline; every later result
    must compare equal to it.  On divergence a :class:`NondeterminismError`
    names the offending configuration and the first differing element
    (pass ``raise_on_divergence=False`` to collect the full report
    instead).  Returns the :class:`DeterminismReport` either way.
    """
    if not configs:
        raise ValueError("determinism_check needs at least one configuration")
    pairs: List[Tuple[int, int]] = [(int(w), int(s)) for w, s in configs]
    name = label or getattr(compute, "__name__", "") or "compute"
    baseline = compute(*pairs[0])
    divergences: List[str] = []
    for workers, shards in pairs[1:]:
        result = compute(workers, shards)
        if result == baseline:
            continue
        where = _first_divergence(baseline, result)
        divergences.append(
            f"{name} diverged at workers={workers} shards={shards} "
            f"(baseline workers={pairs[0][0]} shards={pairs[0][1]}): {where}"
        )
    report = DeterminismReport(
        label=name,
        configs=tuple(pairs),
        baseline=baseline,
        divergences=tuple(divergences),
    )
    if divergences and raise_on_divergence:
        raise NondeterminismError("; ".join(divergences))
    return report
