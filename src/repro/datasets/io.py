"""CSV serialisation of labeled test datasets.

The interchange format the CLI uses, available as a library API: a data
CSV with ``record_id`` and ``cluster_id`` columns followed by the attribute
columns, plus a companion ``<name>.gold.csv`` listing the duplicate
record-id pairs.  Works for every labeled dataset in the package —
customised NC subsets, the comparison datasets and polluter/synthesizer
output all expose ``records`` + ``cluster_of``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datasets.base import BenchmarkDataset


def gold_path_for(data_path: Path) -> Path:
    """The companion gold-pair file of a dataset CSV."""
    return Path(data_path).with_suffix(".gold.csv")


def save_dataset(
    path: Path,
    records: Sequence[Dict[str, str]],
    cluster_of: Sequence,
    attributes: Optional[Sequence[str]] = None,
) -> Tuple[Path, Path]:
    """Write a labeled dataset as ``<path>`` + ``<path>.gold.csv``.

    ``attributes`` fixes the column order; by default it is the union of
    record keys in first-seen order.  Returns the two written paths.
    """
    if len(records) != len(cluster_of):
        raise ValueError(
            f"records ({len(records)}) and cluster_of ({len(cluster_of)}) "
            "must have equal length"
        )
    if attributes is None:
        seen: Dict[str, None] = {}
        for record in records:
            for attribute in record:
                seen.setdefault(attribute)
        attributes = list(seen)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["record_id", "cluster_id"] + list(attributes))
        for record_id, (record, cluster_id) in enumerate(zip(records, cluster_of)):
            writer.writerow(
                [record_id, cluster_id]
                + [record.get(attribute, "") for attribute in attributes]
            )
    gold_path = gold_path_for(path)
    members: Dict[object, List[int]] = {}
    for record_id, cluster_id in enumerate(cluster_of):
        members.setdefault(cluster_id, []).append(record_id)
    with gold_path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(("left", "right"))
        for ids in members.values():
            for j in range(1, len(ids)):
                for i in range(j):
                    writer.writerow((ids[i], ids[j]))
    return path, gold_path


def load_dataset(path: Path, name: Optional[str] = None) -> BenchmarkDataset:
    """Load a dataset written by :func:`save_dataset` (or the CLI).

    The gold file is only used for validation: cluster membership is
    reconstructed from the ``cluster_id`` column, and a mismatch with the
    gold pairs raises (a corrupted download must not silently produce a
    wrong gold standard).
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header[:2] != ["record_id", "cluster_id"]:
            raise ValueError(
                f"{path}: expected 'record_id,cluster_id,...' header, got {header[:2]}"
            )
        attributes = tuple(header[2:])
        records: List[Dict[str, str]] = []
        labels: List[str] = []
        for row in reader:
            records.append(dict(zip(attributes, row[2:])))
            labels.append(row[1])
    label_ids = {label: index for index, label in enumerate(dict.fromkeys(labels))}
    dataset = BenchmarkDataset(
        name=name or path.stem,
        attributes=attributes,
        records=records,
        cluster_of=[label_ids[label] for label in labels],
    )
    gold_path = gold_path_for(path)
    if gold_path.exists():
        with gold_path.open(newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            next(reader)
            stored: Set[Tuple[int, int]] = {
                (int(left), int(right)) for left, right in reader
            }
        if stored != dataset.gold_pairs:
            raise ValueError(
                f"{gold_path}: gold pairs disagree with the cluster_id column "
                f"({len(stored)} stored vs {len(dataset.gold_pairs)} implied)"
            )
    return dataset
