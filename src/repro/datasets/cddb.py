"""Synthesizer of a CDDB-like audio CD dataset.

The CDDB dataset contains CD metadata (artist, title, category, genre ...).
Published characteristics (Table 3): 9,763 records, 7 attributes, 300
duplicate pairs, 9,508 clusters of which only 221 are non-singletons,
maximum cluster size 6, average 1.03 — an almost duplicate-free dataset
with a long singleton tail.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import BenchmarkDataset, assemble, expand_composition
from repro.pollute.corruptors import CorruptorSuite
from repro.votersim import names as name_pools

ATTRIBUTES = (
    "artist",
    "dtitle",
    "category",
    "genre",
    "year",
    "cdextra",
    "tracks",
)

#: Composition solving Table 3 exactly: 9,763 records, 300 pairs,
#: 9,508 clusters (221 non-singleton), max size 6.
COMPOSITION = {1: 9287, 2: 194, 3: 23, 4: 2, 5: 1, 6: 1}

_CATEGORIES = ("rock", "jazz", "classical", "blues", "country", "folk", "misc")
_GENRES = ("Rock", "Pop", "Jazz", "Classical", "Blues", "Country", "Alternative", "Metal")
_TITLE_WORDS = (
    "love", "night", "blue", "heart", "road", "fire", "river", "dream",
    "moon", "light", "dance", "soul", "rain", "summer", "gold", "shadow",
    "city", "train", "wild", "home", "stone", "silver", "sky", "star",
)


def _album(rng: random.Random) -> Dict[str, str]:
    artist_first = rng.choice(
        name_pools.MALE_FIRST_NAMES + name_pools.FEMALE_FIRST_NAMES
    ).title()
    artist_last = rng.choice(name_pools.LAST_NAMES).title()
    kind = rng.random()
    if kind < 0.4:
        artist = f"{artist_first} {artist_last}"
    elif kind < 0.7:
        artist = f"The {artist_last}s"
    else:
        artist = f"{artist_last} {rng.choice(('Band', 'Trio', 'Quartet', 'Project'))}"
    words = rng.sample(_TITLE_WORDS, rng.randrange(1, 4))
    title = " ".join(word.title() for word in words)
    return {
        "artist": artist,
        "dtitle": title,
        "category": rng.choice(_CATEGORIES),
        "genre": rng.choice(_GENRES),
        "year": str(rng.randrange(1960, 2005)) if rng.random() < 0.8 else "",
        "cdextra": "YES" if rng.random() < 0.1 else "",
        "tracks": str(rng.randrange(6, 22)),
    }


def synthesize_cddb(seed: int = 2021) -> BenchmarkDataset:
    """Build the CDDB-like dataset (deterministic given ``seed``)."""
    rng = random.Random(seed)
    suite = CorruptorSuite(
        {
            "typo": 3.0,
            "case": 2.0,
            "representation": 2.0,
            "missing": 1.0,
            "token_transposition": 1.0,
            "truncate": 0.5,
        }
    )
    clusters: List[List[Dict[str, str]]] = []
    for size in expand_composition(COMPOSITION):
        album = _album(rng)
        members = [dict(album)]
        for _ in range(size - 1):
            duplicate = suite.corrupt_record(
                album,
                rng,
                ("artist", "dtitle", "genre", "year", "tracks", "category"),
                errors_per_record=3.0,
            )
            members.append(duplicate)
        clusters.append(members)
    return assemble("CDDB", ATTRIBUTES, clusters, seed)
