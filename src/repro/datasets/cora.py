"""Synthesizer of a Cora-like bibliographic citation dataset.

Cora contains citations to computer-science papers, manually clustered by
the publication they cite.  The synthesizer reproduces the published
characteristics (Table 3): 1,879 records, 17 attributes, 64,578 duplicate
pairs, 182 clusters of which 118 are non-singletons, maximum cluster size
238, average 10.32.  Variation within a cluster mimics real citation styles:
author initials vs full names, abbreviated venues, differing page/volume
formats, missing fields, typos.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import BenchmarkDataset, assemble, expand_composition
from repro.pollute.corruptors import CorruptorSuite
from repro.votersim import names as name_pools

ATTRIBUTES = (
    "author",
    "title",
    "journal",
    "booktitle",
    "volume",
    "pages",
    "year",
    "month",
    "publisher",
    "address",
    "editor",
    "institution",
    "note",
    "tech",
    "type",
    "date",
    "reference_no",
)

#: Cluster-size composition matching Table 3 exactly (1,879 records,
#: 64,578 pairs, 182 clusters, 118 non-singletons, max 238).
COMPOSITION = {
    1: 64, 2: 79, 3: 1, 6: 1, 9: 1, 11: 1, 13: 3, 15: 1, 19: 1, 22: 1,
    23: 2, 24: 1, 25: 1, 28: 1, 29: 1, 31: 1, 32: 1, 33: 1, 34: 2, 37: 2,
    39: 1, 40: 1, 41: 1, 45: 1, 50: 1, 51: 1, 52: 1, 54: 2, 64: 1, 65: 1,
    73: 1, 78: 1, 90: 1, 109: 1, 238: 1,
}

_TITLE_WORDS = (
    "learning", "probabilistic", "networks", "inference", "reasoning",
    "bayesian", "markov", "models", "classification", "induction",
    "decision", "trees", "genetic", "algorithms", "neural", "reinforcement",
    "knowledge", "representation", "logic", "programs", "planning", "search",
    "boosting", "analysis", "estimation", "bounds", "sample", "complexity",
    "queries", "concept", "features", "selection", "clustering", "agents",
)

_VENUES = (
    ("Machine Learning", "Mach. Learn."),
    ("Artificial Intelligence", "Artif. Intell."),
    ("Journal of Artificial Intelligence Research", "JAIR"),
    ("Neural Computation", "Neural Comp."),
    ("Information and Computation", "Inf. Comput."),
)

_CONFERENCES = (
    (
        "Proceedings of the International Conference on Machine Learning",
        "Proc. ICML",
    ),
    (
        "Proceedings of the National Conference on Artificial Intelligence",
        "Proc. AAAI",
    ),
    (
        "Advances in Neural Information Processing Systems",
        "NIPS",
    ),
    (
        "Proceedings of the Conference on Computational Learning Theory",
        "Proc. COLT",
    ),
)

_PUBLISHERS = ("Morgan Kaufmann", "MIT Press", "Springer Verlag", "ACM Press")
_ADDRESSES = ("San Mateo, CA", "Cambridge, MA", "Berlin", "New York, NY")
_MONTHS = ("January", "March", "June", "July", "August", "November")


def _paper(rng: random.Random) -> Dict[str, str]:
    """The ground-truth publication a cluster of citations refers to."""
    author_count = rng.randrange(1, 4)
    authors = []
    for _ in range(author_count):
        first = rng.choice(name_pools.MALE_FIRST_NAMES + name_pools.FEMALE_FIRST_NAMES)
        last = rng.choice(name_pools.LAST_NAMES)
        authors.append((first.title(), last.title()))
    words = rng.sample(_TITLE_WORDS, rng.randrange(3, 7))
    title = " ".join(words).capitalize()
    is_journal = rng.random() < 0.5
    venue_full, venue_abbrev = rng.choice(_VENUES if is_journal else _CONFERENCES)
    first_page = rng.randrange(1, 400)
    return {
        "authors": authors,
        "title": title,
        "is_journal": is_journal,
        "venue_full": venue_full,
        "venue_abbrev": venue_abbrev,
        "volume": str(rng.randrange(1, 40)),
        "pages": (first_page, first_page + rng.randrange(5, 30)),
        "year": str(rng.randrange(1985, 2000)),
        "month": rng.choice(_MONTHS),
        "publisher": rng.choice(_PUBLISHERS),
        "address": rng.choice(_ADDRESSES),
    }


def _format_authors(authors, style: int) -> str:
    parts = []
    for first, last in authors:
        if style == 0:
            parts.append(f"{first} {last}")
        elif style == 1:
            parts.append(f"{first[0]}. {last}")
        else:
            parts.append(f"{last}, {first[0]}.")
    joiner = " and " if style < 2 else "; "
    return joiner.join(parts)


def _citation(paper: Dict, rng: random.Random) -> Dict[str, str]:
    """One citation of ``paper`` in a random style."""
    style = rng.randrange(3)
    first_page, last_page = paper["pages"]
    pages = (
        f"{first_page}-{last_page}"
        if rng.random() < 0.5
        else f"pages {first_page}--{last_page}"
    )
    record = {attribute: "" for attribute in ATTRIBUTES}
    record["author"] = _format_authors(paper["authors"], style)
    record["title"] = paper["title"] if rng.random() < 0.7 else paper["title"].lower()
    venue = paper["venue_full"] if rng.random() < 0.6 else paper["venue_abbrev"]
    if paper["is_journal"]:
        record["journal"] = venue
        record["volume"] = paper["volume"]
    else:
        record["booktitle"] = venue
        if rng.random() < 0.4:
            record["publisher"] = paper["publisher"]
        if rng.random() < 0.3:
            record["address"] = paper["address"]
    record["pages"] = pages if rng.random() < 0.85 else ""
    record["year"] = paper["year"]
    if rng.random() < 0.3:
        record["month"] = paper["month"]
    if rng.random() < 0.1:
        record["note"] = "to appear" if rng.random() < 0.5 else "in press"
    if rng.random() < 0.05:
        record["type"] = "article" if paper["is_journal"] else "inproceedings"
    return record


def synthesize_cora(seed: int = 2021) -> BenchmarkDataset:
    """Build the Cora-like dataset (deterministic given ``seed``)."""
    rng = random.Random(seed)
    suite = CorruptorSuite(
        {"typo": 4.0, "missing": 1.0, "abbreviate": 0.5, "representation": 1.5, "truncate": 0.5}
    )
    clusters: List[List[Dict[str, str]]] = []
    for size in expand_composition(COMPOSITION):
        paper = _paper(rng)
        members = []
        for _ in range(size):
            citation = _citation(paper, rng)
            if rng.random() < 0.45:
                citation = suite.corrupt_record(
                    citation, rng, ("author", "title", "journal", "booktitle", "pages")
                )
            members.append(citation)
        clusters.append(members)
    return assemble("Cora", ATTRIBUTES, clusters, seed)
