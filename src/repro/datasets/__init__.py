"""Synthesizers for the comparison datasets of Section 6.1.

The paper compares the NC test data against three manually labeled datasets
commonly used in the literature — Cora (bibliographic citations), Census
(person records) and CDDB (audio CD metadata).  Those files are not
redistributable here, so each module synthesizes a dataset matching the
published characteristics of Table 3 exactly (record / attribute / cluster /
duplicate-pair counts and the cluster-size distribution) and the error
profile of Table 4 approximately.
"""

from __future__ import annotations

from repro.datasets.base import BenchmarkDataset, DatasetCharacteristics
from repro.datasets.cddb import synthesize_cddb
from repro.datasets.census import synthesize_census
from repro.datasets.cora import synthesize_cora
from repro.datasets.io import load_dataset, save_dataset

__all__ = [
    "BenchmarkDataset",
    "DatasetCharacteristics",
    "synthesize_cora",
    "synthesize_census",
    "synthesize_cddb",
    "save_dataset",
    "load_dataset",
]
