"""Common dataset container and Table 3 characteristics."""

from __future__ import annotations

import dataclasses
import random
from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple


@dataclasses.dataclass
class BenchmarkDataset:
    """A labeled duplicate-detection test dataset.

    Record ids are positions in :attr:`records`; the gold standard is the
    set of duplicate record-id pairs ``(i, j)`` with ``i < j``.
    """

    name: str
    attributes: Tuple[str, ...]
    records: List[Dict[str, str]]
    cluster_of: List[int]

    def __post_init__(self) -> None:
        if len(self.records) != len(self.cluster_of):
            raise ValueError(
                f"records ({len(self.records)}) and cluster_of "
                f"({len(self.cluster_of)}) must have equal length"
            )

    @property
    def gold_pairs(self) -> Set[Tuple[int, int]]:
        """The duplicate record-id pairs implied by the cluster labels."""
        members: Dict[int, List[int]] = {}
        for record_id, cluster_id in enumerate(self.cluster_of):
            members.setdefault(cluster_id, []).append(record_id)
        pairs: Set[Tuple[int, int]] = set()
        for ids in members.values():
            for j in range(1, len(ids)):
                for i in range(j):
                    pairs.add((ids[i], ids[j]))
        return pairs

    def clusters(self) -> Dict[int, List[Dict[str, str]]]:
        """cluster id -> list of its records."""
        result: Dict[int, List[Dict[str, str]]] = {}
        for record, cluster_id in zip(self.records, self.cluster_of):
            result.setdefault(cluster_id, []).append(record)
        return result

    def characteristics(self) -> "DatasetCharacteristics":
        """The dataset's Table 3 row."""
        sizes = Counter(self.cluster_of)
        cluster_sizes = list(sizes.values())
        non_singletons = sum(1 for size in cluster_sizes if size > 1)
        return DatasetCharacteristics(
            name=self.name,
            records=len(self.records),
            attributes=len(self.attributes),
            duplicate_pairs=sum(size * (size - 1) // 2 for size in cluster_sizes),
            clusters=len(cluster_sizes),
            non_singletons=non_singletons,
            max_cluster_size=max(cluster_sizes) if cluster_sizes else 0,
            avg_cluster_size=(
                len(self.records) / len(cluster_sizes) if cluster_sizes else 0.0
            ),
        )


@dataclasses.dataclass
class DatasetCharacteristics:
    """One row of Table 3."""

    name: str
    records: int
    attributes: int
    duplicate_pairs: int
    clusters: int
    non_singletons: int
    max_cluster_size: int
    avg_cluster_size: float


def expand_composition(composition: Dict[int, int]) -> List[int]:
    """``{cluster_size: count}`` -> list of cluster sizes."""
    sizes: List[int] = []
    for size, count in sorted(composition.items()):
        if size < 1 or count < 0:
            raise ValueError(f"invalid composition entry {size}: {count}")
        sizes.extend([size] * count)
    return sizes


def composition_totals(composition: Dict[int, int]) -> Tuple[int, int, int]:
    """(records, clusters, duplicate pairs) implied by a composition."""
    records = sum(size * count for size, count in composition.items())
    clusters = sum(composition.values())
    pairs = sum(size * (size - 1) // 2 * count for size, count in composition.items())
    return records, clusters, pairs


def assemble(
    name: str,
    attributes: Sequence[str],
    clusters: Sequence[List[Dict[str, str]]],
    seed: int,
) -> BenchmarkDataset:
    """Shuffle cluster members into a flat dataset with gold labels."""
    rng = random.Random(seed)
    staged: List[Tuple[int, Dict[str, str]]] = []
    for cluster_id, members in enumerate(clusters):
        for record in members:
            staged.append((cluster_id, record))
    rng.shuffle(staged)
    return BenchmarkDataset(
        name=name,
        attributes=tuple(attributes),
        records=[record for _cluster_id, record in staged],
        cluster_of=[cluster_id for cluster_id, _record in staged],
    )
