"""Synthesizer of a Census-like person dataset.

The Census dataset (US Census Bureau / Winkler) contains person records
with six attributes.  Published characteristics (Table 3): 841 records,
6 attributes, 376 duplicate pairs, 483 clusters of which 345 are
non-singletons, maximum cluster size 4, average 1.74.  Its error profile
(Table 4) is dominated by typos in the last name (~65 % of duplicate
pairs), so duplicates here are corrupted aggressively.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.base import BenchmarkDataset, assemble, expand_composition
from repro.pollute.corruptors import CorruptorSuite
from repro.votersim import names as name_pools
from repro.votersim.errors import apply_typo
from repro.votersim.geography import STREET_NAMES

ATTRIBUTES = (
    "last_name",
    "first_name",
    "middle_initial",
    "zip_code",
    "house_number",
    "street",
)

#: Composition solving Table 3 exactly: 841 records, 376 pairs,
#: 483 clusters (345 non-singleton), max size 4.
COMPOSITION = {1: 138, 2: 337, 3: 3, 4: 5}

_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _person(rng: random.Random) -> Dict[str, str]:
    if rng.random() < 0.5:
        first = rng.choice(name_pools.FEMALE_FIRST_NAMES)
    else:
        first = rng.choice(name_pools.MALE_FIRST_NAMES)
    return {
        "last_name": rng.choice(name_pools.LAST_NAMES),
        "first_name": first,
        "middle_initial": rng.choice(_ALPHABET) if rng.random() < 0.7 else "",
        "zip_code": f"{rng.randrange(10000, 99999)}",
        "house_number": str(rng.randrange(1, 999)),
        "street": rng.choice(STREET_NAMES),
    }


def synthesize_census(seed: int = 2021) -> BenchmarkDataset:
    """Build the Census-like dataset (deterministic given ``seed``)."""
    rng = random.Random(seed)
    suite = CorruptorSuite(
        {"typo": 6.0, "phonetic": 1.0, "missing": 0.8, "abbreviate": 0.5, "truncate": 0.5}
    )
    clusters: List[List[Dict[str, str]]] = []
    for size in expand_composition(COMPOSITION):
        person = _person(rng)
        members = [dict(person)]
        for _ in range(size - 1):
            duplicate = dict(person)
            # ~65 % of Census duplicate pairs differ by a last-name typo.
            if rng.random() < 0.65:
                duplicate["last_name"] = apply_typo(duplicate["last_name"], rng)
            duplicate = suite.corrupt_record(
                duplicate,
                rng,
                ("first_name", "street", "house_number", "middle_initial", "zip_code"),
                errors_per_record=1.8,
            )
            members.append(duplicate)
        clusters.append(members)
    return assemble("Census", ATTRIBUTES, clusters, seed)
