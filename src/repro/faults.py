"""Deterministic fault injection for durable-storage code paths.

Every filesystem operation of the durability layer
(:mod:`repro.docstore.wal`, :mod:`repro.docstore.storage`) is routed
through a process-wide, swappable :class:`FileSystem` shim instead of
calling :func:`open` / :func:`os.fsync` / :func:`os.replace` directly.
Tests install a :class:`FaultyFileSystem` that counts those operations and
fails deterministically at the N-th one:

* ``mode="crash"`` — raise :class:`CrashError` *before* the operation takes
  effect, simulating a process killed at that exact point;
* ``mode="torn"`` — for writes, persist only a prefix of the data and then
  raise :class:`CrashError`, simulating a torn write; other operations
  crash as in ``"crash"`` mode;
* ``mode="error"`` — raise :class:`OSError` at that operation only and keep
  working afterwards, simulating a transient I/O failure;
* ``mode="eio"`` — like ``"error"`` but with ``errno.EIO``, the shape a
  failing disk or interconnect produces on reads and writes alike;
* ``mode="enospc"`` — a full disk: a write persists only a prefix of its
  data (the bytes that still fit) and then raises ``errno.ENOSPC``; other
  operations raise plain ``ENOSPC``.  The process keeps running, so the
  caller must leave the file in a recoverable shape
  (``WalWriter`` truncates back to the last good frame boundary);
* ``mode="partial_fsync"`` — data was written but never became durable: at
  the targeted fsync the file is rolled back to its last durably-synced
  size and the process "crashes".  This simulates losing the OS page cache
  at a power cut, the one failure ``"crash"`` mode (where every ``write``
  survives) cannot produce;
* ``mode="slow"`` — sleep for :attr:`FaultyFileSystem.delay` seconds at the
  targeted operation, then perform it normally.  Nothing fails; used to
  assert that latency alone never changes an outcome.

The harness is deterministic: the same workload performs the same sequence
of operations, so "fail at every N from 1 to total" enumerates every
injection point exactly once (see ``tests/docstore/test_faults.py``).

Usage::

    from repro import faults

    plan = faults.FaultyFileSystem(fail_at=17, mode="crash")
    with faults.inject(plan):
        run_workload()          # raises faults.CrashError at I/O op 17
    reloaded = Database.load(store)   # must equal a committed state

``count_ops(fn)`` runs ``fn`` under a counting-only shim and returns how
many injection points it exposes.
"""

from __future__ import annotations

import contextlib
import errno
import os
import time
from pathlib import Path
from typing import IO, Any, Callable, Iterator, Optional, Union

PathLike = Union[str, "os.PathLike[str]"]


class CrashError(RuntimeError):
    """A simulated process crash injected by :class:`FaultyFileSystem`.

    Raised instead of performing (or after partially performing) the
    targeted filesystem operation.  Production code must never catch it:
    the whole point is that the process "dies" there and the next run
    recovers from whatever reached the disk.
    """


class FileSystem:
    """The real filesystem: the default, passthrough shim.

    The durability layer only ever uses this narrow surface, so wrapping
    these eight methods covers every injection point — the seven mutating
    operations plus whole-file reads (``read``), which lets the harness
    inject ``EIO`` on the recovery/replay path too.
    """

    def open(self, path: PathLike, mode: str, buffering: int = -1) -> IO[bytes]:
        """Open ``path``; binary modes default to unbuffered writes."""
        return open(path, mode, buffering=buffering)

    def write(self, handle: IO[bytes], data: bytes) -> int:
        """Write ``data`` to an open handle; returns bytes written."""
        return handle.write(data)

    def fsync(self, handle: IO[Any]) -> None:
        """Flush ``handle`` and fsync its file descriptor."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source: PathLike, target: PathLike) -> None:
        """Atomically rename ``source`` over ``target``."""
        os.replace(source, target)

    def truncate(self, path: PathLike, size: int) -> None:
        """Truncate the file at ``path`` to ``size`` bytes."""
        os.truncate(path, size)

    def remove(self, path: PathLike) -> None:
        """Delete the file at ``path`` (missing files are a no-op)."""
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def fsync_dir(self, path: PathLike) -> None:
        """fsync a directory so renames inside it are durable."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_bytes(self, path: PathLike) -> bytes:
        """Read the whole file at ``path`` (missing files raise as usual)."""
        return Path(path).read_bytes()

    def read_text(self, path: PathLike, encoding: str = "utf-8") -> str:
        """UTF-8 text variant of :meth:`read_bytes` (one ``read`` op)."""
        return self.read_bytes(path).decode(encoding)


#: Operation names a :class:`FaultyFileSystem` can target.  ``read`` covers
#: both :meth:`FileSystem.read_bytes` and :meth:`FileSystem.read_text`.
FAULT_OPS = (
    "open", "write", "fsync", "replace", "truncate", "remove", "fsync_dir",
    "read",
)

#: Supported failure modes (see the module docstring).
FAULT_MODES = ("crash", "torn", "error", "eio", "enospc", "partial_fsync", "slow")


class FaultyFileSystem(FileSystem):
    """A :class:`FileSystem` that fails deterministically at one operation.

    Parameters
    ----------
    fail_at:
        1-based index of the operation to fail; ``None`` counts operations
        without ever failing (the counting shim behind :func:`count_ops`).
    mode:
        One of :data:`FAULT_MODES` (see module docstring).
    only:
        Optional subset of :data:`FAULT_OPS`; operations outside it are
        passed through *without counting*, which lets a test say "crash at
        the 3rd fsync" instead of "the 3rd operation of any kind".
    delay:
        Seconds slept at the targeted operation in ``"slow"`` mode.
    """

    def __init__(
        self,
        fail_at: Optional[int] = None,
        mode: str = "crash",
        only: Optional[tuple] = None,
        delay: float = 0.01,
    ) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {mode!r}")
        if only is not None:
            unknown = set(only) - set(FAULT_OPS)
            if unknown:
                raise ValueError(f"unknown fault ops: {sorted(unknown)}")
        self.fail_at = fail_at
        self.mode = mode
        self.only = tuple(only) if only is not None else None
        self.delay = delay
        #: Number of (targeted) operations seen so far.
        self.ops = 0
        #: Description of the operation that was failed, if any.
        self.failed_op: Optional[str] = None
        #: Last durably-fsynced size per file path (``partial_fsync`` mode):
        #: baselined at ``open``, advanced at every successful ``fsync``.
        self._durable: dict = {}

    # ------------------------------------------------------------- internals

    def _arm(self, op: str, path: PathLike) -> bool:
        """Count ``op``; return True when this call must fail."""
        if self.only is not None and op not in self.only:
            return False
        self.ops += 1
        if self.fail_at is None or self.ops != self.fail_at:
            return False
        self.failed_op = f"{op}({os.fspath(path)!r}) #{self.ops}"
        return True

    def _fail(self, op: str) -> None:
        if self.mode == "slow":
            time.sleep(self.delay)
            return
        if self.mode == "error":
            raise OSError(f"injected I/O error at {self.failed_op}")
        if self.mode == "eio":
            raise OSError(errno.EIO, f"injected EIO at {self.failed_op}")
        if self.mode == "enospc":
            raise OSError(errno.ENOSPC, f"injected ENOSPC at {self.failed_op}")
        raise CrashError(f"injected crash at {self.failed_op}")

    def _track_durable(self, handle: IO[Any]) -> None:
        """Record the current size of ``handle``'s file as durable."""
        name = getattr(handle, "name", None)
        if isinstance(name, (str, os.PathLike)) and os.path.exists(name):
            self._durable[os.fspath(name)] = os.path.getsize(name)

    # ------------------------------------------------------------ operations

    def open(self, path: PathLike, mode: str, buffering: int = -1) -> IO[bytes]:
        if self._arm("open", path):
            self._fail("open")
        handle = super().open(path, mode, buffering=buffering)
        if self.mode == "partial_fsync":
            # Baseline: everything on disk at open time is considered
            # durable (the previous run either fsynced it or already
            # recovered past it).
            self._track_durable(handle)
            name = getattr(handle, "name", None)
            if isinstance(name, (str, os.PathLike)):
                self._durable.setdefault(os.fspath(name), 0)
        return handle

    def write(self, handle: IO[bytes], data: bytes) -> int:
        if self._arm("write", getattr(handle, "name", "<handle>")):
            if self.mode in ("torn", "enospc") and len(data) > 1:
                # Persist a prefix: a torn write (crash) or the bytes that
                # still fit on the full disk (ENOSPC, process survives).
                super().write(handle, data[: len(data) // 2])
                handle.flush()
            self._fail("write")
        return super().write(handle, data)

    def fsync(self, handle: IO[Any]) -> None:
        if self._arm("fsync", getattr(handle, "name", "<handle>")):
            if self.mode == "partial_fsync":
                # The data reached the OS but never the platters: roll the
                # file back to its last durable size, then "lose power".
                handle.flush()
                name = getattr(handle, "name", None)
                if isinstance(name, (str, os.PathLike)):
                    durable = self._durable.get(os.fspath(name))
                    if durable is not None and os.path.exists(name):
                        if durable < os.path.getsize(name):
                            os.truncate(name, durable)
                raise CrashError(f"injected partial fsync at {self.failed_op}")
            self._fail("fsync")
        super().fsync(handle)
        if self.mode == "partial_fsync":
            self._track_durable(handle)

    def replace(self, source: PathLike, target: PathLike) -> None:
        if self._arm("replace", target):
            self._fail("replace")
        super().replace(source, target)
        if self.mode == "partial_fsync":
            # The renamed file's content was fsynced before the rename
            # (atomic-write protocol), so the target is fully durable.
            self._durable.pop(os.fspath(source), None)
            if os.path.exists(target):
                self._durable[os.fspath(target)] = os.path.getsize(target)

    def truncate(self, path: PathLike, size: int) -> None:
        if self._arm("truncate", path):
            self._fail("truncate")
        super().truncate(path, size)

    def remove(self, path: PathLike) -> None:
        if self._arm("remove", path):
            self._fail("remove")
        super().remove(path)

    def fsync_dir(self, path: PathLike) -> None:
        if self._arm("fsync_dir", path):
            self._fail("fsync_dir")
        super().fsync_dir(path)

    def read_bytes(self, path: PathLike) -> bytes:
        if self._arm("read", path):
            self._fail("read")
        return super().read_bytes(path)


_DEFAULT = FileSystem()
_current: FileSystem = _DEFAULT


def current_fs() -> FileSystem:
    """The active filesystem shim (the real one unless a test injected)."""
    return _current


@contextlib.contextmanager
def inject(fs: FileSystem) -> Iterator[FileSystem]:
    """Install ``fs`` as the process-wide shim for the ``with`` block."""
    global _current
    previous = _current
    _current = fs
    try:
        yield fs
    finally:
        _current = previous


def count_ops(fn: Callable[[], Any], only: Optional[tuple] = None) -> int:
    """Run ``fn`` under a counting shim; returns its injection-point count."""
    fs = FaultyFileSystem(fail_at=None, only=only)
    with inject(fs):
        fn()
    return fs.ops


def crash_points(total: int) -> Iterator[FaultyFileSystem]:
    """Yield a crash-mode shim for every injection point in ``1..total``."""
    for n in range(1, total + 1):
        yield FaultyFileSystem(fail_at=n, mode="crash")


def fault_points(
    total: int,
    mode: str = "crash",
    only: Optional[tuple] = None,
    delay: float = 0.01,
) -> Iterator[FaultyFileSystem]:
    """Yield a ``mode`` shim for every injection point in ``1..total``.

    The general form of :func:`crash_points`: sweeps any failure mode
    (``eio``, ``enospc``, ``partial_fsync``, ...) over every operation a
    workload performs.
    """
    for n in range(1, total + 1):
        yield FaultyFileSystem(fail_at=n, mode=mode, only=only, delay=delay)
