"""Versioning & reproducibility: reconstruct earlier dataset versions.

Demonstrates Section 5.1.2: the dataset grows monotonically with every
update, every record carries the version that introduced it plus the list
of snapshots containing it, and the precalculated similarity scores are
stored as version-keyed maps — so any earlier version (and its statistics)
can be reconstructed exactly, without recomputation.

Run with::

    python examples/reproducibility.py
"""

from pathlib import Path
import tempfile

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.plausibility import cluster_plausibility
from repro.core.versioning import UpdateProcess, similarity_at_version
from repro.docstore import Database
from repro.votersim import SimulationConfig, VoterRegisterSimulator


def main() -> None:
    config = SimulationConfig(initial_voters=400, years=6, seed=21)
    snapshots = list(VoterRegisterSimulator(config).run())

    # Publish three versions: initial load, then two incremental updates —
    # exactly the update process of Figure 2.
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    process = UpdateProcess(generator)
    third = len(snapshots) // 3
    process.run(snapshots[:third], note="initial load")
    process.run(snapshots[third : 2 * third], note="update 1")
    process.run(snapshots[2 * third :], note="update 2")

    versions = generator.database["versions"]
    print("published versions:")
    for doc in versions.find(sort=[("version", 1)]):
        print(
            f"  v{doc['version']}: {doc['records']} records, "
            f"{doc['clusters']} clusters, {doc['duplicate_pairs']} pairs "
            f"({doc['note']})"
        )

    # Reconstruct version 1 from the current store: filter on first_version.
    v1_records = sum(
        len(generator.records_at_version(cluster, 1))
        for cluster in generator.clusters()
    )
    recorded = versions.find_one({"version": 1})["records"]
    print(f"\nreconstructed v1 record count: {v1_records} "
          f"(recorded at publish time: {recorded})")
    assert v1_records == recorded

    # Historical statistics: plausibility of a cluster as of each version.
    grown = next(
        cluster
        for cluster in generator.clusters()
        if len({record["first_version"] for record in cluster["records"]}) > 1
    )
    print(f"\ncluster {grown['ncid']} grew across versions:")
    for version in range(1, generator.current_version + 1):
        count = len(generator.records_at_version(grown, version))
        plausibility = cluster_plausibility(grown, version=version)
        print(f"  as of v{version}: {count} records, plausibility {plausibility:.3f}")

    # The version-similarity maps behind that reconstruction:
    newest = grown["records"][-1]
    for version in range(1, generator.current_version + 1):
        merged = similarity_at_version(newest, "plausibility", version)
        print(f"  newest record's stored scores at v{version}: {merged}")

    # Snapshot-subset evaluation (Section 5.1.2): restrict to early snapshots.
    early = [s.date for s in snapshots[:third]]
    early_records = sum(
        len(generator.records_in_snapshots(cluster, early))
        for cluster in generator.clusters()
    )
    print(f"\nrecords contained in the first {third} snapshots: {early_records}")

    # Everything survives persistence.
    with tempfile.TemporaryDirectory() as tmp:
        generator.database.save(Path(tmp))
        loaded = Database.load(Path(tmp))
        assert loaded["versions"].count_documents() == generator.current_version
        print("persisted and reloaded the store: version history intact")


if __name__ == "__main__":
    main()
