"""Compare the historical approach against the baseline generator families.

Section 7 positions the paper against two families of automatic test-data
generators:

* **synthesization** (Febrl, DBGen): fast and scalable, but fictional
  values and no outdated values;
* **pollution** (GeCo, TDGen): realistic base values, but synthetic errors
  and still no outdated values.

This example generates a dataset with each family plus the historical
approach and compares (i) generation throughput and (ii) the error-type
mix each one produces — the historical data is the only one containing
outdated values (age drift, moves, name changes) for free.

Run with::

    python examples/baseline_generators.py
"""

import time

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.clusters import record_view
from repro.core.irregularities import IrregularityCensus
from repro.pollute import FebrlStyleSynthesizer, GeCoStylePolluter
from repro.pollute.synthesizer import SynthesizerConfig
from repro.votersim import SimulationConfig, VoterRegisterSimulator

ERROR_TYPES = ("typo", "phonetic", "prefix", "formatting", "value_confusion")


def census_of(records_by_cluster, attributes, name_pairs=()):
    census = IrregularityCensus(attributes, multi_attribute_pairs=name_pairs)
    for members in records_by_cluster:
        census.add_cluster(members)
    return census


def main() -> None:
    # --- Febrl-style synthesization -------------------------------------
    start = time.time()
    synthesized = FebrlStyleSynthesizer(
        SynthesizerConfig(originals=3000, duplicates=900, seed=1)
    ).generate()
    febrl_time = time.time() - start
    print(
        f"Febrl-style synthesizer: {synthesized.record_count} records in "
        f"{febrl_time:.2f}s ({synthesized.record_count / febrl_time:,.0f} rec/s)"
    )

    # --- GeCo-style pollution --------------------------------------------
    clean = synthesized.records[:3000]  # reuse originals as the clean input
    start = time.time()
    polluter = GeCoStylePolluter(tuple(clean[0]), seed=2)
    polluted = polluter.pollute(clean)
    geco_time = time.time() - start
    print(
        f"GeCo-style polluter:     {len(polluted.records)} records in "
        f"{geco_time:.2f}s ({len(polluted.records) / geco_time:,.0f} rec/s)"
    )

    # --- historical approach (this paper) --------------------------------
    start = time.time()
    config = SimulationConfig(initial_voters=700, years=6, seed=3)
    snapshots = list(VoterRegisterSimulator(config).run())
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(snapshots)
    historical_time = time.time() - start
    rows = sum(len(s) for s in snapshots)
    print(
        f"historical generation:   {generator.record_count} records "
        f"(from {rows} snapshot rows) in {historical_time:.2f}s "
        f"({rows / historical_time:,.0f} rows/s)"
    )

    # --- error-mix comparison --------------------------------------------
    name_pairs = (("first_name", "midl_name"), ("first_name", "last_name"))
    historical_census = census_of(
        (
            [record_view(r, ("person",)) for r in cluster["records"]]
            for cluster in generator.clusters()
        ),
        ("first_name", "midl_name", "last_name", "birth_place", "age"),
        name_pairs,
    )
    by_cluster = {}
    for record_id, cluster_id in enumerate(synthesized.cluster_of):
        by_cluster.setdefault(cluster_id, []).append(synthesized.records[record_id])
    febrl_census = census_of(
        by_cluster.values(), ("given_name", "surname", "address_1", "suburb")
    )

    print(f"\n{'error type':>18} {'historical %':>13} {'febrl %':>9}")
    for error_type in ERROR_TYPES:
        historical = historical_census.count(error_type).percentage
        febrl = febrl_census.count(error_type).percentage
        print(f"{error_type:>18} {historical:>12.1%} {febrl:>8.1%}")

    # Outdated values are the historical approach's unique strength: count
    # duplicate pairs whose age values differ by 2+ years (value drift) —
    # synthetic generators cannot produce these organically.
    drifted = 0
    pairs = 0
    for cluster in generator.clusters():
        records = [record_view(r, ("person",)) for r in cluster["records"]]
        for j in range(1, len(records)):
            for i in range(j):
                pairs += 1
                try:
                    drift = abs(int(records[i].get("age", 0)) - int(records[j].get("age", 0)))
                except ValueError:
                    continue
                if drift >= 2:
                    drifted += 1
    print(
        f"\noutdated values: {drifted}/{pairs} historical duplicate pairs "
        f"({drifted / pairs:.0%}) show multi-year value drift; "
        "the synthetic baselines produce none by construction"
    )


if __name__ == "__main__":
    main()
