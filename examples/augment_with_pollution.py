"""Augmentation: real outdated values + injected errors (DaPo future work).

Section 8's second future-work item combines the historical approach with
a scalable data pollution tool: keep the register's organic outdated
values and error patterns, but inject *additional* synthetic errors at
will to dial the dataset's difficulty.  This example:

1. generates the organic test dataset;
2. measures detection quality (best F1 and recall) on it;
3. augments it with synthetic duplicates at two pollution intensities,
   targeted at the identifying attributes;
4. re-measures, splitting recall into organic pairs vs pairs involving a
   synthetic record: under heavy pollution the synthetic pairs become the
   hardest part of the dataset, while the gold standard stays sound and
   the organic records remain exactly recoverable via provenance.

Run with::

    python examples/augment_with_pollution.py
"""

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.augment import AugmentationPlan, Augmenter, strip_synthetic
from repro.core.heterogeneity import HeterogeneityScorer
from repro.dedup import (
    RecordMatcher,
    best_f1,
    evaluate_thresholds,
    multipass_sorted_neighborhood,
    pick_blocking_keys,
    score_candidates,
)
from repro.textsim import MongeElkan
from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import PERSON_ATTRIBUTES

ATTRIBUTES = tuple(a for a in PERSON_ATTRIBUTES if a != "ncid")
#: Evaluate on the identifying attributes only (names, demographics) —
#: the attributes the pollution targets, as a real customised test set
#: restricted to person identity would.
EVAL_ATTRIBUTES = (
    "first_name", "midl_name", "last_name", "name_sufx",
    "sex", "birth_place", "res_city_desc", "zip_code",
)
THRESHOLDS = [t / 20 for t in range(6, 20)]


def detection_report(generator, scorer):
    """(best F1, recall on organic pairs, recall on synthetic pairs)."""
    from repro.core.clusters import record_view

    records = []
    cluster_of = []
    is_synthetic = []
    for cluster in generator.clusters():
        if len(cluster["records"]) < 2:
            continue
        for record in cluster["records"]:
            records.append(record_view(record, ("person",)))
            cluster_of.append(cluster["ncid"])
            is_synthetic.append(bool(record.get("synthetic")))
    gold, organic_gold, synthetic_gold = set(), set(), set()
    by_cluster = {}
    for record_id, ncid in enumerate(cluster_of):
        by_cluster.setdefault(ncid, []).append(record_id)
    for members in by_cluster.values():
        for j in range(1, len(members)):
            for i in range(j):
                pair = (members[i], members[j])
                gold.add(pair)
                if is_synthetic[pair[0]] or is_synthetic[pair[1]]:
                    synthetic_gold.add(pair)
                else:
                    organic_gold.add(pair)

    matcher = RecordMatcher.from_records(
        records, EVAL_ATTRIBUTES, MongeElkan(),
        name_attributes=("first_name", "midl_name", "last_name"),
    )
    keys = pick_blocking_keys(records, EVAL_ATTRIBUTES, 5)
    candidates = multipass_sorted_neighborhood(records, keys, 20)
    similarities = score_candidates(records, candidates, matcher)
    best = best_f1(evaluate_thresholds(similarities, gold, THRESHOLDS))
    predicted = {
        pair for pair, score in similarities.items() if score >= best.threshold
    }
    organic_recall = (
        len(predicted & organic_gold) / len(organic_gold) if organic_gold else 1.0
    )
    synthetic_recall = (
        len(predicted & synthetic_gold) / len(synthetic_gold)
        if synthetic_gold
        else float("nan")
    )
    return best, organic_recall, synthetic_recall


def main() -> None:
    config = SimulationConfig(initial_voters=400, years=5, seed=17)
    snapshots = list(VoterRegisterSimulator(config).run())
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(snapshots)
    organic_records = generator.record_count
    print(f"organic dataset: {organic_records} records in "
          f"{generator.cluster_count} clusters")

    scorer = HeterogeneityScorer.from_clusters(
        generator.clusters(), ("person",), ATTRIBUTES
    )
    best, organic_recall, _ = detection_report(generator, scorer)
    print(
        f"organic data: best F1 {best.f1:.3f} @ {best.threshold:.2f} "
        f"(recall {best.recall:.2f})"
    )

    for label, plan in (
        ("mild pollution", AugmentationPlan(
            share_of_clusters=0.4, duplicates_per_cluster=1,
            errors_per_duplicate=1.5, attributes=EVAL_ATTRIBUTES, seed=1)),
        ("heavy pollution", AugmentationPlan(
            share_of_clusters=0.9, duplicates_per_cluster=2,
            errors_per_duplicate=4.0, attributes=EVAL_ATTRIBUTES, seed=2)),
    ):
        stats = Augmenter(generator, plan).augment()
        best, organic_recall, synthetic_recall = detection_report(generator, scorer)
        print(
            f"\n{label}: +{stats.records_added} synthetic records into "
            f"{stats.clusters_touched} clusters "
            f"(total now {generator.record_count})"
        )
        print(
            f"  best F1 {best.f1:.3f} @ {best.threshold:.2f}; recall on "
            f"organic pairs {organic_recall:.2f}, on synthetic pairs "
            f"{synthetic_recall:.2f}"
        )

    # The organic records remain exactly recoverable via provenance.
    recovered = sum(
        len(strip_synthetic(cluster)) for cluster in generator.clusters()
    )
    print(
        f"\nstripping synthetic records recovers the organic dataset: "
        f"{recovered} == {organic_records}"
    )
    assert recovered == organic_records


if __name__ == "__main__":
    main()
