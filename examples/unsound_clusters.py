"""Reproduce Figure 3: erroneous vs unsound clusters and their scores.

The paper distinguishes two very different kinds of "suspicious" clusters:

* *erroneous* clusters (like DB175272) whose records disagree because of
  data errors — name values confused between attributes, a typo in the
  middle name — but really describe the same voter.  These are welcome:
  they challenge detection without corrupting the gold standard.
* *unsound* clusters (like DR19657) whose records describe different
  persons under the same NCID.  These corrupt the gold standard.

The plausibility score must separate the two; the simulator gives us the
ground truth (which NCIDs were actually reused) to verify it does.

Run with::

    python examples/unsound_clusters.py
"""

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.clusters import record_view
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.plausibility import cluster_plausibility, pair_plausibility
from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import PERSON_ATTRIBUTES


def show_cluster(cluster, plausibility, heterogeneity) -> None:
    print(
        f"\ncluster {cluster['ncid']}  "
        f"plausibility={plausibility:.2f}  heterogeneity={heterogeneity:.2f}"
    )
    print(f"  {'last_name':<14} {'first_name':<12} {'midl_name':<12} {'sex':<7} age")
    for record in cluster["records"]:
        person = record["person"]
        print(
            f"  {person.get('last_name', ''):<14} {person.get('first_name', ''):<12} "
            f"{person.get('midl_name', ''):<12} {person.get('sex', ''):<7} "
            f"{person.get('age', '')}"
        )


def main() -> None:
    # A register with aggressive NCID reuse so unsound clusters are common.
    config = SimulationConfig(
        initial_voters=600, years=6, seed=42, ncid_reuse_rate=0.5, removal_rate=0.05
    )
    simulator = VoterRegisterSimulator(config)
    snapshots = list(simulator.run())
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(snapshots)

    scorer = HeterogeneityScorer.from_clusters(
        generator.clusters(),
        ("person",),
        tuple(a for a in PERSON_ATTRIBUTES if a != "ncid"),
    )

    def heterogeneity(cluster):
        records = [record_view(r, ("person",)) for r in cluster["records"]]
        return scorer.cluster_heterogeneity(records)

    # Hand-built Figure 3 clusters for reference scoring:
    debra = {"first_name": "DEBRA", "midl_name": "OEHRIE", "last_name": "WILLIAMS",
             "sex_code": "F", "age": "45"}
    debra_confused = {"first_name": "OEHRLE", "midl_name": "DEBRA",
                      "last_name": "ANN", "sex_code": "F", "age": "49"}
    fields = {"first_name": "MARY", "midl_name": "ELIZABETH",
              "last_name": "FIELDS", "sex_code": "F", "age": "61"}
    bethea = {"first_name": "JOSHUA", "midl_name": "ELIZABETH",
              "last_name": "BETHEA", "sex_code": "M", "age": "93"}
    print("Figure 3 reference pairs:")
    print(f"  erroneous (DEBRA variants):   plausibility "
          f"{pair_plausibility(debra, debra_confused, '2012-01-01', '2016-01-01'):.2f}")
    print(f"  unsound (FIELDS vs BETHEA):   plausibility "
          f"{pair_plausibility(fields, bethea, '2012-01-01', '2012-01-01'):.2f}")

    # Now find the same patterns in the generated dataset.
    unsound_ncids = simulator.unsound_ncids
    scored = []
    for cluster in generator.clusters():
        if len(cluster["records"]) < 2:
            continue
        scored.append((cluster_plausibility(cluster), cluster))
    scored.sort(key=lambda item: item[0])

    print(f"\nground truth: {len(unsound_ncids)} NCIDs were reused")
    print("five least plausible clusters in the generated dataset:")
    hits = 0
    for plausibility, cluster in scored[:5]:
        show_cluster(cluster, plausibility, heterogeneity(cluster))
        truly_unsound = cluster["ncid"] in unsound_ncids
        print(f"  -> ground truth: {'UNSOUND (reused NCID)' if truly_unsound else 'sound'}")
        hits += truly_unsound
    print(f"\n{hits}/5 of the least plausible clusters are truly unsound")


if __name__ == "__main__":
    main()
