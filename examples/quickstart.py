"""Quickstart: simulate a register, generate a test dataset, inspect it.

Runs the full paper pipeline end to end at a small scale:

1. simulate a historical voter register (the paper's NC input data);
2. import every snapshot into the test-data generator, removing
   (near-)exact duplicates at the "trimming" level of Table 2;
3. compute plausibility / heterogeneity statistics and publish version 1;
4. inspect the resulting aggregate-oriented cluster store.

Run with::

    python examples/quickstart.py
"""

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.plausibility import cluster_plausibility
from repro.core.statistics import snapshot_year_stats
from repro.core.versioning import UpdateProcess
from repro.votersim import SimulationConfig, VoterRegisterSimulator


def main() -> None:
    # 1. Simulate the historical register: 500 voters, 5 years, 2 snapshots
    #    per year, with realistic manual-entry errors baked in.
    config = SimulationConfig(initial_voters=500, years=5, seed=7)
    simulator = VoterRegisterSimulator(config)
    snapshots = list(simulator.run())
    total_rows = sum(len(snapshot) for snapshot in snapshots)
    print(f"simulated {len(snapshots)} snapshots with {total_rows} rows total")

    # 2. + 3. Generate the test dataset (import -> statistics -> publish).
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    version = UpdateProcess(generator).run(snapshots, note="quickstart")
    print(
        f"published version {version}: {generator.record_count} records in "
        f"{generator.cluster_count} clusters "
        f"({generator.duplicate_pair_count} duplicate pairs)"
    )

    # Table 1 at quickstart scale: what did each year contribute?
    print("\nyear  snaps  rows   new-records  new-objects")
    for row in snapshot_year_stats(generator.import_stats):
        print(
            f"{row.year}  {row.snapshots:>5}  {row.total_records:>5}"
            f"  {row.new_records:>11}  {row.new_objects:>11}"
        )

    # 4. Inspect one multi-record cluster document from the store.
    clusters = generator.database["clusters"]
    example = clusters.find_one({"records.1": {"$exists": True}})
    print(f"\nexample cluster {example['ncid']} "
          f"({len(example['records'])} records, "
          f"plausibility {cluster_plausibility(example):.2f}):")
    for record in example["records"]:
        person = record["person"]
        print(
            f"  v{record['first_version']}  "
            f"{person.get('first_name', ''):<12} "
            f"{person.get('midl_name', ''):<12} "
            f"{person.get('last_name', ''):<14} "
            f"age={person.get('age', '?'):<4} "
            f"snapshots={len(record['snapshots'])}"
        )

    # The store supports MongoDB-style aggregation for customisation:
    largest = clusters.aggregate(
        [
            {"$addFields": {"size": {"$size": "$records"}}},
            {"$sort": {"size": -1}},
            {"$limit": 3},
            {"$project": {"ncid": 1, "size": 1, "_id": 0}},
        ]
    )
    print(f"\nlargest clusters: {largest}")


if __name__ == "__main__":
    main()
