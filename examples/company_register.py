"""Domain generalisation: the pipeline on a historical company register.

The paper's future work (Section 8) proposes applying the generation
procedure to historical corpora from other domains.  This example runs the
*unchanged* core pipeline on a simulated company register — a different
schema (company/address/officers/meta), a different stable id (``reg_id``)
and a domain-specific plausibility scorer — and shows that every paper
property carries over: snapshot overlap compression, sound gold standard,
unsound-cluster detection, heterogeneity-bounded customisation.

Run with::

    python examples/company_register.py
"""

import statistics

from repro.core import RemovalLevel, TestDataGenerator, customize
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.versioning import UpdateProcess
from repro.histcorpus import (
    COMPANY_PROFILE,
    CompanyRegisterConfig,
    CompanyRegisterSimulator,
    score_company_cluster,
)
from repro.histcorpus.plausibility import company_cluster_plausibility


def main() -> None:
    config = CompanyRegisterConfig(
        initial_companies=400,
        years=8,
        seed=13,
        id_reuse_rate=0.3,
        dissolution_rate=0.05,
    )
    simulator = CompanyRegisterSimulator(config)
    snapshots = list(simulator.run())
    raw_rows = sum(len(s) for s in snapshots)
    print(f"simulated {len(snapshots)} register snapshots, {raw_rows} rows")

    # The identical generator, parameterised only by the schema profile
    # and the domain's plausibility scorer.
    generator = TestDataGenerator(
        removal=RemovalLevel.TRIMMED, profile=COMPANY_PROFILE
    )
    UpdateProcess(generator, plausibility_fn=score_company_cluster).run(
        snapshots, note="company register, initial load"
    )
    print(
        f"generated {generator.record_count} records in "
        f"{generator.cluster_count} clusters "
        f"({1 - generator.record_count / raw_rows:.0%} of rows were "
        f"near-exact duplicates)"
    )

    # Unsound clusters (reused registration ids) score low, as for voters.
    sound, unsound = [], []
    for cluster in generator.clusters():
        if len(cluster["records"]) < 2:
            continue
        score = company_cluster_plausibility(cluster)
        if cluster["ncid"] in simulator.unsound_ids:
            unsound.append(score)
        else:
            sound.append(score)
    print(
        f"plausibility: sound clusters avg {statistics.mean(sound):.2f}, "
        f"reused-id clusters avg {statistics.mean(unsound):.2f} "
        f"({len(unsound)} of them)"
    )

    # Heterogeneity-bounded customisation works unchanged too.
    attributes = tuple(
        a for a in COMPANY_PROFILE.primary_attributes() if a != "reg_id"
    )
    scorer = HeterogeneityScorer.from_clusters(
        generator.clusters(), ("company",), attributes
    )
    for name, (low, high) in (("clean", (0.0, 0.15)), ("dirty", (0.25, 1.0))):
        dataset = customize(
            generator, low, high, target_clusters=40,
            groups=("company",), scorer=scorer, name=name,
        )
        avg_het, max_het = dataset.heterogeneity_stats(scorer)
        print(
            f"customised '{name}' [{low}, {high}]: {dataset.record_count} "
            f"records, avg heterogeneity {avg_het:.2f}, max {max_het:.2f}"
        )

    # One grown cluster, showing outdated values (rename + move).
    example = max(generator.clusters(), key=lambda c: len(c["records"]))
    print(f"\nlargest cluster {example['ncid']} ({len(example['records'])} records):")
    for record in example["records"]:
        company = record["company"]
        address = record.get("address", {})
        print(
            f"  v{record['first_version']}  "
            f"{company.get('company_name', ''):<24} "
            f"{company.get('legal_form', ''):<5} "
            f"{address.get('city', ''):<15} "
            f"CEO {record.get('officers', {}).get('ceo_name', '')}"
        )


if __name__ == "__main__":
    main()
