"""Customise NC1/NC2/NC3-style test datasets and evaluate detectors on them.

Reproduces the workflow of Section 6.5 at example scale:

1. generate the full test dataset from a simulated register;
2. derive three customised datasets with increasing heterogeneity
   (the paper's NC1 [0.06, 0.2], NC2 [0.2, 0.4] and NC3 [0.4, 1.0]);
3. run three duplicate-detection algorithms (Monge-Elkan/Damerau-
   Levenshtein, Jaro-Winkler, trigram Jaccard) with Sorted Neighborhood
   blocking on each dataset;
4. report the best F1 per measure and dataset — quality should fall from
   NC1 to NC3, exactly as in the paper's Figure 5.

Run with::

    python examples/customize_and_evaluate.py
"""

from repro.core import RemovalLevel, TestDataGenerator, customize
from repro.core.heterogeneity import HeterogeneityScorer
from repro.dedup import (
    RecordMatcher,
    best_f1,
    evaluate_thresholds,
    multipass_sorted_neighborhood,
    pick_blocking_keys,
    score_candidates,
)
from repro.textsim import JaroWinkler, MongeElkan, QgramJaccard
from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import PERSON_ATTRIBUTES

RANGES = {"NC1": (0.06, 0.2), "NC2": (0.2, 0.4), "NC3": (0.4, 1.0)}
MEASURES = {
    "ME/Lev": MongeElkan(),
    "JaroWinkler": JaroWinkler(),
    "Jaccard-3grams": QgramJaccard(q=3),
}
THRESHOLDS = [t / 20 for t in range(4, 20)]


def main() -> None:
    config = SimulationConfig(initial_voters=800, years=6, seed=11)
    snapshots = VoterRegisterSimulator(config).run()
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(snapshots)
    print(f"generated {generator.record_count} records in "
          f"{generator.cluster_count} clusters")

    attributes = tuple(a for a in PERSON_ATTRIBUTES if a != "ncid")
    scorer = HeterogeneityScorer.from_clusters(
        generator.clusters(), ("person",), attributes
    )

    for name, (low, high) in RANGES.items():
        dataset = customize(
            generator, low, high, target_clusters=80, scorer=scorer, name=name
        )
        avg_het, max_het = dataset.heterogeneity_stats(scorer)
        print(
            f"\n{name} (heterogeneity [{low}, {high}]): "
            f"{dataset.record_count} records, {dataset.cluster_count} clusters, "
            f"avg het {avg_het:.2f}, max het {max_het:.2f}"
        )

        keys = pick_blocking_keys(dataset.records, attributes, 5)
        candidates = multipass_sorted_neighborhood(dataset.records, keys, window=20)
        lost = dataset.gold_pairs - candidates
        print(f"  blocking: {len(candidates)} candidates, "
              f"{len(lost)} true duplicates lost")

        for label, measure in MEASURES.items():
            matcher = RecordMatcher.from_records(
                dataset.records, attributes, measure,
                name_attributes=("first_name", "midl_name", "last_name"),
            )
            similarities = score_candidates(dataset.records, candidates, matcher)
            points = evaluate_thresholds(similarities, dataset.gold_pairs, THRESHOLDS)
            best = best_f1(points)
            print(
                f"  {label:<15} best F1 {best.f1:.3f} at threshold "
                f"{best.threshold:.2f} (P={best.precision:.2f}, R={best.recall:.2f})"
            )


if __name__ == "__main__":
    main()
