.PHONY: install test lint lint-concurrency typecheck bench bench-scoring bench-docstore bench-durability bench-dedup bench-lsh bench-shards bench-hotpath bench-robustness test-faults test-chaos examples validate-docs clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

lint:
	python -m repro.analysis.lint src tests

# Concurrency & determinism analyzer (R100-R106): effect inference over
# the call graph of src/, race/nondeterminism diagnostics on the parallel
# and durable paths.  Writes the machine-readable report to RCODES.json.
lint-concurrency:
	PYTHONPATH=src python -m repro.cli check --concurrency src --json RCODES.json

typecheck:
	mypy src/repro

bench:
	pytest benchmarks/ --benchmark-only

# Quick scoring benchmark: fast kernels + batching vs the naive reference.
# Writes machine-readable timings/speedups to BENCH_scoring.json and fails
# if the sequential fast path is less than 3x the naive reference.
bench-scoring:
	PYTHONPATH=src python benchmarks/scoring_bench.py --quick --out BENCH_scoring.json

# Quick docstore benchmark: planned reads (index lookups/ranges, index
# order, pipeline pushdown) vs forced full scans.  Writes timings/speedups
# to BENCH_docstore.json and fails if indexed range finds or pushdown
# aggregates are less than 5x the full-scan reference.
bench-docstore:
	PYTHONPATH=src python benchmarks/docstore_bench.py --quick --out BENCH_docstore.json

# Quick durability benchmark: WAL append throughput across fsync-batch
# settings, commit cost and recovery (WAL replay vs snapshot load).
# Writes machine-readable timings to BENCH_durability.json.
bench-durability:
	PYTHONPATH=src python benchmarks/durability_bench.py --quick --out BENCH_durability.json

# Quick duplicate-detection benchmark: the streaming/parallel pipeline
# (packed pair keys, prepared record vectors, sharded scoring) vs the
# naive tuple-set + per-pair framework.  Writes timings/speedups and the
# candidate-set memory comparison to BENCH_dedup.json and fails if the
# best parallel run is less than 5x the naive reference or any path is
# not bit-identical.
bench-dedup:
	PYTHONPATH=src python benchmarks/dedup_bench.py --quick --out BENCH_dedup.json

# Quick LSH blocking benchmark: MinHash-LSH + TF-IDF cosine prefilter vs
# multi-pass Sorted Neighborhood on a typo-heavy labeled workload at three
# register sizes.  Writes candidate counts, recall, wall times and log-log
# growth exponents to BENCH_lsh.json; fails if LSH candidates grow
# quadratically (exponent >= 2), recall drops below 0.90x SNM at the
# largest size, the pair budget exceeds 0.5x SNM, or any
# (workers, shards) configuration is not bit-identical.
bench-lsh:
	PYTHONPATH=src python benchmarks/lsh_bench.py --quick --out BENCH_lsh.json

# Quick sharding benchmark: single-shard routing vs scatter-gather vs the
# unsharded baseline, plus concurrent snapshot readers against a
# committing writer.  Writes timings to BENCH_shards.json; fails if point
# routing misses parity with unsharded (≥1.0x after timer noise),
# scatter-gather misses its gate (>1.5x on 2+ CPUs, parity on one CPU),
# or readers stall/tear.
bench-shards:
	PYTHONPATH=src python benchmarks/shards_bench.py --quick --out BENCH_shards.json

# Quick hot-path benchmark: warm vs cold plan cache on repeated point
# reads, lazy vs eager result materialization on scan-heavy reads, and
# batched vs per-op durable inserts under fsync-every-record.  Writes
# timings (with p50/p95 latencies) to BENCH_hotpath.json; fails if the
# warm plan cache is <3x cold, lazy is <2x eager, batched insert_many is
# <5x per-op, or any path is not bit-identical / nondeterministic.
bench-hotpath:
	PYTHONPATH=src python benchmarks/hotpath_bench.py --quick --out BENCH_hotpath.json

# Quick robustness benchmark: the full fault-model sweep (crash, torn,
# EIO, ENOSPC, partial fsync at every I/O op — zero silent corruption
# allowed), offline scrub throughput over a checkpointed register, and
# the WAL-compaction replay-time payoff.  Writes BENCH_robustness.json;
# fails on any silently-wrong recovery or a compaction reduction < 3x.
bench-robustness:
	PYTHONPATH=src python benchmarks/robustness_bench.py --quick --out BENCH_robustness.json

# The crash-consistency suite: fault-injection sweeps over every I/O
# operation plus the fault-tolerant parallel scoring tests.
test-faults:
	pytest tests/docstore/test_faults.py tests/docstore/test_wal.py tests/core/test_fault_tolerance.py tests/docstore/test_sharding.py

# The chaos suite: everything test-faults runs plus the scrubber,
# quarantine/degraded-read and repair tests.
test-chaos:
	pytest tests/docstore/test_faults.py tests/docstore/test_wal.py tests/docstore/test_scrub.py tests/docstore/test_storage.py tests/core/test_fault_tolerance.py

# Run every example end to end (a few minutes total).
examples:
	python examples/quickstart.py
	python examples/customize_and_evaluate.py
	python examples/unsound_clusters.py
	python examples/reproducibility.py
	python examples/baseline_generators.py
	python examples/company_register.py
	python examples/augment_with_pollution.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
