"""Table 4: the irregularity census over NC, Cora and Census."""

from repro.core.clusters import record_view
from repro.core.irregularities import IrregularityCensus

from bench_utils import write_result

NC_ATTRIBUTES = (
    "first_name", "midl_name", "last_name", "name_sufx", "age",
    "birth_place", "phone_num", "street_name", "res_city_desc", "mail_addr1",
    "race_desc", "ethnic_desc",  # multi-token values: token transpositions
)


def census_for_nc(generator):
    census = IrregularityCensus(NC_ATTRIBUTES)
    for cluster in generator.clusters():
        records = [record_view(r, ("person",)) for r in cluster["records"]]
        census.add_cluster(records)
    return census


def census_for_dataset(dataset, multi_pairs=()):
    census = IrregularityCensus(dataset.attributes, multi_attribute_pairs=multi_pairs)
    for members in dataset.clusters().values():
        census.add_cluster(members)
    return census


def test_table4_irregularity_census(
    benchmark, bench_generator, comparison_datasets, results_dir
):
    nc_census = benchmark.pedantic(
        census_for_nc, args=(bench_generator,), rounds=1, iterations=1
    )
    cora_census = census_for_dataset(comparison_datasets["Cora"])
    census_census = census_for_dataset(
        comparison_datasets["Census"],
        multi_pairs=(("first_name", "last_name"), ("first_name", "middle_initial")),
    )

    lines = [
        f"{'error type':>20} {'NC total':>9} {'NC %':>7} {'NC attr':>12} "
        f"{'Cora %':>8} {'Census %':>9}"
    ]
    for row in nc_census.counts():
        cora_row = cora_census.count(row.error_type)
        census_row = census_census.count(row.error_type)
        lines.append(
            f"{row.error_type:>20} {row.total:>9} {row.percentage:>6.1%} "
            f"{row.most_common_attribute:>12} {cora_row.percentage:>7.1%} "
            f"{census_row.percentage:>8.1%}"
        )
    lines.append(
        f"normalisers: NC {nc_census.records_seen} records / "
        f"{nc_census.pairs_seen} pairs; Cora {cora_census.pairs_seen} pairs; "
        f"Census {census_census.pairs_seen} pairs"
    )
    write_result(results_dir, "table4_irregularities", lines)

    # Shape checks from the paper's discussion:
    # (i) the NC data contains every irregularity family;
    for error_type in ("missing", "abbreviation", "typo", "phonetic", "prefix"):
        assert nc_census.count(error_type).total > 0, error_type
    # (ii) NC percentages are small but absolute counts dominate Cora/Census;
    typo = nc_census.count("typo")
    assert typo.percentage < 0.2
    assert typo.total > cora_census.count("typo").total or typo.total > 50
    # (iii) Census's typo share is far above NC's (paper: 65 % last_name);
    assert census_census.count("typo").percentage > nc_census.count("typo").percentage
    # (iv) names dominate the NC single-attribute irregularities.
    assert nc_census.count("abbreviation").most_common_attribute == "midl_name"
