"""Table 3: characteristics of Cora / Census / CDDB / NC1 / NC2 / NC3."""

from repro.core.heterogeneity import HeterogeneityScorer

from bench_utils import write_result


def characteristics_rows(comparison_datasets, nc_datasets, bench_scorer):
    rows = []
    for name, dataset in comparison_datasets.items():
        ch = dataset.characteristics()
        representatives = [members[0] for members in dataset.clusters().values()]
        scorer = HeterogeneityScorer.from_records(representatives, dataset.attributes)
        scores = []
        for members in dataset.clusters().values():
            if len(members) > 1:
                scores.extend(scorer.pair_heterogeneities(members))
        rows.append(
            (
                name, ch.records, ch.attributes, ch.duplicate_pairs, ch.clusters,
                ch.non_singletons, ch.max_cluster_size, ch.avg_cluster_size,
                max(scores) if scores else 0.0,
                sum(scores) / len(scores) if scores else 0.0,
            )
        )
    for name, dataset in nc_datasets.items():
        avg_het, max_het = dataset.heterogeneity_stats(bench_scorer)
        sizes = dataset.cluster_sizes()
        non_singletons = sum(1 for size in sizes.values() if size > 1)
        pairs = sum(size * (size - 1) // 2 for size in sizes.values())
        rows.append(
            (
                name, dataset.record_count, 27, pairs, dataset.cluster_count,
                non_singletons, dataset.max_cluster_size,
                dataset.avg_cluster_size, max_het, avg_het,
            )
        )
    return rows


def test_table3_dataset_characteristics(
    benchmark, comparison_datasets, nc_datasets, bench_scorer, results_dir
):
    rows = benchmark.pedantic(
        characteristics_rows,
        args=(comparison_datasets, nc_datasets, bench_scorer),
        rounds=1,
        iterations=1,
    )

    header = (
        f"{'dataset':>8} {'#recs':>7} {'#attrs':>6} {'#pairs':>7} {'#clust':>7} "
        f"{'#nonsing':>8} {'max':>5} {'avg':>6} {'max het':>8} {'avg het':>8}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row[0]:>8} {row[1]:>7} {row[2]:>6} {row[3]:>7} {row[4]:>7} "
            f"{row[5]:>8} {row[6]:>5} {row[7]:>6.2f} {row[8]:>8.2f} {row[9]:>8.3f}"
        )
    write_result(results_dir, "table3_characteristics", lines)

    by_name = {row[0]: row for row in rows}
    # Comparison datasets match their published counts exactly.
    assert by_name["Cora"][1:8] == (1879, 17, 64578, 182, 118, 238, by_name["Cora"][7])
    assert by_name["Census"][1] == 841 and by_name["Census"][3] == 376
    assert by_name["CDDB"][1] == 9763 and by_name["CDDB"][3] == 300
    # NC1 < NC2 < NC3 in average heterogeneity (the paper's design goal).
    assert by_name["NC1"][9] < by_name["NC2"][9] < by_name["NC3"][9]
    # All NC subsets are fully non-singleton (step 3 keeps the largest).
    for name in ("NC1", "NC2", "NC3"):
        assert by_name[name][4] == by_name[name][5]
