"""Figure 2: the update process (import -> statistics -> publish).

Benchmarks a full end-to-end update cycle and a statistics-only update,
and verifies the versioning invariants the process guarantees.
"""

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.versioning import UpdateProcess

from bench_utils import write_result


def test_fig2_full_update_cycle(benchmark, bench_snapshots, results_dir):
    half = len(bench_snapshots) // 2

    def run_update():
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        process = UpdateProcess(generator)
        process.run(bench_snapshots[:half], note="initial load")
        process.run(bench_snapshots[half:], note="incremental load")
        return generator

    generator = benchmark.pedantic(run_update, rounds=1, iterations=1)

    lines = [
        f"records:   {generator.record_count}",
        f"clusters:  {generator.cluster_count}",
        f"versions:  {generator.current_version}",
        f"update cycle time: {benchmark.stats['mean']:.2f} s "
        f"({generator.record_count / benchmark.stats['mean']:,.0f} records/s scored)",
    ]
    write_result(results_dir, "fig2_update_process", lines)

    assert generator.current_version == 2
    versions = generator.database["versions"]
    assert versions.count_documents() == 2
    first = versions.find_one({"_id": 1})
    second = versions.find_one({"_id": 2})
    assert second["records"] > first["records"]  # monotone growth
    # every stored record carries its introducing version
    for cluster in generator.database["clusters"].find(limit=20):
        for record in cluster["records"]:
            assert record["first_version"] in (1, 2)


def test_fig2_statistics_only_update(benchmark, bench_snapshots):
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(bench_snapshots[:4])
    process = UpdateProcess(generator)

    def statistics_update():
        process.update_statistics()

    benchmark.pedantic(statistics_update, rounds=1, iterations=1)
    version = generator.publish("statistics update")
    assert version == 1
