"""Ablation: Sorted Neighborhood window size and number of passes.

The paper uses five passes (one per highly unique attribute) with window
w = 20 and reports that no true duplicate was lost.  This bench sweeps
both knobs and reports candidate counts (cost) against lost gold pairs
(quality) — the trade-off that justifies the paper's setting.
"""

import pytest

from repro.core import customize
from repro.dedup import multipass_sorted_neighborhood, pick_blocking_keys
from repro.votersim.schema import PERSON_ATTRIBUTES

from bench_utils import write_result

WINDOWS = (5, 10, 20, 40)
PASS_COUNTS = (1, 3, 5)


@pytest.fixture(scope="module")
def blocking_dataset(bench_generator, bench_scorer):
    return customize(
        bench_generator, 0.0, 1.0, target_clusters=150,
        scorer=bench_scorer, name="blocking-ablation",
    )


def sweep(records, gold_pairs, attributes):
    results = {}
    for passes in PASS_COUNTS:
        keys = pick_blocking_keys(records, attributes, passes)
        for window in WINDOWS:
            candidates = multipass_sorted_neighborhood(records, keys, window)
            lost = len(gold_pairs - candidates)
            results[(passes, window)] = (len(candidates), lost)
    return results


def test_ablation_snm_window_and_passes(benchmark, blocking_dataset, results_dir):
    attributes = [a for a in PERSON_ATTRIBUTES if a != "ncid"]
    records = blocking_dataset.records
    gold = blocking_dataset.gold_pairs

    results = benchmark.pedantic(
        sweep, args=(records, gold, attributes), rounds=1, iterations=1
    )

    lines = [
        f"records: {len(records)}, gold pairs: {len(gold)}",
        f"{'passes':>7} {'window':>7} {'candidates':>11} {'lost gold':>10}",
    ]
    for (passes, window), (candidates, lost) in sorted(results.items()):
        lines.append(f"{passes:>7} {window:>7} {candidates:>11} {lost:>10}")
    write_result(results_dir, "ablation_snm", lines)

    # More passes / larger windows never lose more duplicates.
    for window in WINDOWS:
        losses = [results[(passes, window)][1] for passes in PASS_COUNTS]
        assert losses == sorted(losses, reverse=True)
    for passes in PASS_COUNTS:
        losses = [results[(passes, window)][1] for window in WINDOWS]
        assert losses == sorted(losses, reverse=True)
    # The paper's setting (5 passes, w=20) loses (almost) nothing — the
    # paper reports zero loss; our simulated register is slightly noisier,
    # so allow a few percent...
    paper_candidates, paper_lost = results[(5, 20)]
    assert paper_lost <= 0.03 * len(gold)
    # ...while scanning far fewer pairs than the quadratic baseline.
    quadratic = len(records) * (len(records) - 1) // 2
    assert paper_candidates < 0.7 * quadratic
