"""Baseline comparison: generator family throughput (Section 7).

The related-work discussion ranks the generator families by scalability
(synthesization fastest, pollution fast, manual labeling infeasible) and
realism (historical data the only source of organic outdated values).
This bench measures generation throughput of all three implemented
families and checks the ordering argument.
"""

from repro.core import RemovalLevel, TestDataGenerator
from repro.pollute import FebrlStyleSynthesizer, GeCoStylePolluter
from repro.pollute.synthesizer import SynthesizerConfig
from repro.votersim import SimulationConfig, VoterRegisterSimulator

from bench_utils import write_result


def test_febrl_style_synthesis_throughput(benchmark, results_dir):
    config = SynthesizerConfig(originals=4000, duplicates=1000, seed=5)

    dataset = benchmark(lambda: FebrlStyleSynthesizer(config).generate())

    rate = dataset.record_count / benchmark.stats["mean"]
    write_result(
        results_dir,
        "baseline_febrl_throughput",
        [f"records: {dataset.record_count}", f"throughput: {rate:,.0f} records/s"],
    )
    assert rate > 10_000


def test_geco_style_pollution_throughput(benchmark, results_dir):
    clean = FebrlStyleSynthesizer(
        SynthesizerConfig(originals=4000, duplicates=0, seed=6)
    ).generate().records

    polluter_attrs = tuple(clean[0])

    def pollute():
        return GeCoStylePolluter(polluter_attrs, seed=7).pollute(clean)

    result = benchmark(pollute)
    rate = len(result.records) / benchmark.stats["mean"]
    write_result(
        results_dir,
        "baseline_geco_throughput",
        [f"records: {len(result.records)}", f"throughput: {rate:,.0f} records/s"],
    )
    assert rate > 10_000


def test_historical_generation_throughput(benchmark, bench_snapshots, results_dir):
    total_rows = sum(len(s) for s in bench_snapshots)

    def generate():
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        generator.import_snapshots(bench_snapshots)
        return generator

    generator = benchmark(generate)
    rate = total_rows / benchmark.stats["mean"]
    write_result(
        results_dir,
        "baseline_historical_throughput",
        [
            f"snapshot rows: {total_rows}",
            f"dataset records: {generator.record_count}",
            f"import throughput: {rate:,.0f} rows/s",
        ],
    )
    # The import path is streaming and must stay in the tens of thousands
    # of rows per second — the property that makes 500 M rows feasible.
    assert rate > 10_000
