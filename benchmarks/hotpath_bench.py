"""Hot-path benchmark: plan cache, lazy materialization, batched commits.

Measures the three layers of the docstore's hot-path engine (see
``docs/performance.md``, "Layer 6") against their own escape hatches, so
every speedup is an apples-to-apples comparison on identical data:

* ``plan_cache``      — repeated shard-key point ``find``\\ s with the
  per-collection plan cache on (warm: bound-plan replay) vs off (cold:
  route + compile + price every query).  Gate: warm ≥3x cold.
* ``materialization`` — a scan-heavy range ``find`` under the default
  ``copy_mode="lazy"`` (copy-on-read ``DocumentView`` results) vs
  ``copy_mode="eager"`` (a full deep copy per returned document).
  Gate: lazy ≥2x eager.
* ``batched_commit``  — loading a :class:`repro.docstore.DurableDatabase`
  under ``fsync_batch=1`` (the strictest durability setting) via bulk
  ``insert_many`` (one group-commit WAL append + fsync per batch) vs one
  ``insert_one`` per document (one append + fsync per op).
  Gate: batched ≥5x per-op.

Every read workload is verified bit-identical against the
``docstore/_reference.py`` full-scan oracles and across its own two
configurations — the benchmark aborts on any mismatch.  The durable
stores are re-opened (WAL replay) and compared document-for-document.
A :func:`repro.sanitizers.determinism_check` sweep over (workers, shards)
= (1,1)/(2,4)/(4,8) guards the read results against layout-dependent
output.  Per-query p50/p95 latencies accompany each timing.

Usage::

    PYTHONPATH=src python benchmarks/hotpath_bench.py --quick --out BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.docstore import Collection, DurableDatabase
from repro.docstore._reference import find_full_scan
from repro.sanitizers import DEFAULT_CONFIGS, determinism_check

CITIES = ["asheville", "boone", "cary", "durham", "elkin", "fuquay", "garner"]


def make_documents(count: int, seed: int = 20210323) -> List[dict]:
    """Deterministic clusters-like documents (nested metadata included)."""
    rng = random.Random(seed)
    return [
        {
            "ncid": f"NC{n:07d}",
            "city": rng.choice(CITIES),
            "meta": {
                "first_version": rng.randint(1, 40),
                "size": rng.randint(1, 12),
                "sources": [rng.randint(1, 9) for _ in range(3)],
            },
        }
        for n in range(count)
    ]


def build_collection(documents: List[dict], shards: int = 4) -> Collection:
    collection = Collection("clusters", shards=shards)
    collection.create_index("ncid", "hash")
    collection.create_index("meta.first_version", "sorted")
    collection.insert_many(dict(document) for document in documents)
    return collection


def _percentiles(samples: List[float]) -> Dict[str, float]:
    """p50/p95 of per-query latencies (nearest-rank, seconds)."""
    ordered = sorted(samples)
    rank = lambda q: ordered[min(len(ordered) - 1, int(q * len(ordered)))]
    return {"p50_seconds": rank(0.50), "p95_seconds": rank(0.95)}


def _timed_best(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time with the cyclic GC parked."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def _latencies(queries: List[Callable[[], object]]) -> List[float]:
    """One wall-time sample per query (for percentiles, not for gates)."""
    samples = []
    for query in queries:
        start = time.perf_counter()
        query()
        samples.append(time.perf_counter() - start)
    return samples


# ------------------------------------------------------------- plan cache


def bench_plan_cache(
    documents: List[dict], hot_keys: int, passes: int, repeats: int
) -> Dict:
    """Cold vs warm planning on a repeated hot-key point-read working set."""
    collection = build_collection(documents)
    rng = random.Random(97)
    keys = [f"NC{rng.randrange(len(documents)):07d}" for _ in range(hot_keys)]
    filters = [{"ncid": key} for key in keys]

    def run() -> List[List[dict]]:
        return [collection.find(f) for _ in range(passes) for f in filters]

    # Oracle check once per hot key, against the routed+planned read.
    for filter_doc in filters:
        if collection.find(filter_doc) != find_full_scan(collection, filter_doc):
            raise SystemExit(f"FATAL: plan_cache results diverge for {filter_doc}")

    collection.plan_cache_enabled = False
    cold_result = run()
    cold_seconds = _timed_best(run, repeats)
    cold_latency = _latencies([lambda f=f: collection.find(f) for f in filters])

    collection.plan_cache_enabled = True
    warm_result = run()  # priming pass fills route/template/plan memos
    if warm_result != cold_result:
        raise SystemExit("FATAL: warm plan-cache results diverge from cold")
    warm_seconds = _timed_best(run, repeats)
    warm_latency = _latencies([lambda f=f: collection.find(f) for f in filters])

    stats = collection.explain(filters[0])["plan_cache"]
    return {
        "queries_per_run": len(filters) * passes,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "cold_latency": _percentiles(cold_latency),
        "warm_latency": _percentiles(warm_latency),
        "plan_cache": stats,
    }


# -------------------------------------------------------- materialization


def bench_materialization(documents: List[dict], passes: int, repeats: int) -> Dict:
    """Eager deep copies vs lazy views on a scan-heavy range read."""
    collection = build_collection(documents)
    filter_doc = {"meta.first_version": {"$lte": 20}}

    def run() -> List[List[dict]]:
        return [collection.find(filter_doc) for _ in range(passes)]

    oracle = find_full_scan(collection, filter_doc)
    collection.copy_mode = "eager"
    if collection.find(filter_doc) != oracle:
        raise SystemExit("FATAL: eager materialization diverges from oracle")
    eager_seconds = _timed_best(run, repeats)
    eager_latency = _latencies([lambda: collection.find(filter_doc)] * passes)

    collection.copy_mode = "lazy"
    if collection.find(filter_doc) != oracle:
        raise SystemExit("FATAL: lazy materialization diverges from oracle")
    lazy_seconds = _timed_best(run, repeats)
    lazy_latency = _latencies([lambda: collection.find(filter_doc)] * passes)

    return {
        "documents_matched": len(oracle),
        "scans_per_run": passes,
        "eager_seconds": eager_seconds,
        "lazy_seconds": lazy_seconds,
        "speedup": eager_seconds / lazy_seconds if lazy_seconds else None,
        "eager_latency": _percentiles(eager_latency),
        "lazy_latency": _percentiles(lazy_latency),
    }


# -------------------------------------------------------- batched commit


def bench_batched_commit(documents: List[dict], directory: Path) -> Dict:
    """Per-op inserts vs one bulk ``insert_many`` under fsync-every-record."""

    def load(target: Path, batched: bool) -> Tuple[float, List[float]]:
        database = DurableDatabase(target, fsync_batch=1)
        collection = database.create_collection("clusters", shards=4)
        latencies: List[float] = []
        start = time.perf_counter()
        if batched:
            collection.insert_many(dict(document) for document in documents)
        else:
            for document in documents:
                op_start = time.perf_counter()
                collection.insert_one(dict(document))
                latencies.append(time.perf_counter() - op_start)
        database.commit()
        elapsed = time.perf_counter() - start
        database.close()
        return elapsed, latencies

    perop_seconds, perop_latencies = load(directory / "per-op", batched=False)
    batched_seconds, _ = load(directory / "batched", batched=True)

    # Crash-recovery equivalence: replaying either WAL must rebuild the
    # same documents, and both loads must agree with each other.
    contents = {}
    for mode in ("per-op", "batched"):
        replayed = DurableDatabase(directory / mode)
        contents[mode] = sorted(
            replayed.get_collection("clusters").all(), key=lambda d: d["ncid"]
        )
        replayed.close()
    if contents["per-op"] != contents["batched"]:
        raise SystemExit("FATAL: batched WAL replay diverges from per-op replay")
    if len(contents["batched"]) != len(documents):
        raise SystemExit("FATAL: WAL replay lost documents")

    return {
        "documents": len(documents),
        "fsync_batch": 1,
        "per_op_seconds": perop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": perop_seconds / batched_seconds if batched_seconds else None,
        "per_op_latency": _percentiles(perop_latencies),
        "replay_verified": True,
    }


# ----------------------------------------------------------- determinism


def check_determinism(documents: List[dict]) -> Dict:
    """Reads must not depend on shard layout or worker count."""

    def compute(max_workers: int, shards: int) -> List:
        collection = build_collection(documents, shards=shards)
        collection.read_workers = max_workers
        return [
            collection.find({"meta.first_version": {"$lte": 20}}),
            collection.find({"ncid": documents[0]["ncid"]}),
            collection.aggregate(
                [{"$group": {"_id": "$city", "n": {"$sum": 1}}}]
            ),
        ]

    report = determinism_check(compute, label="hotpath reads")
    return {
        "configs": [list(config) for config in report.configs],
        "consistent": report.consistent,
    }


# ------------------------------------------------------------------ main


def run_benchmark(documents_count: int, passes: int, repeats: int) -> Dict:
    documents = make_documents(documents_count)
    directory = Path(tempfile.mkdtemp(prefix="hotpath-bench-"))
    try:
        plan_cache = bench_plan_cache(
            documents, hot_keys=50, passes=passes, repeats=repeats
        )
        materialization = bench_materialization(
            documents, passes=max(passes // 4, 3), repeats=repeats
        )
        batched = bench_batched_commit(
            documents[: min(len(documents), 2000)], directory
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    determinism = check_determinism(documents[: min(len(documents), 1000)])

    return {
        "benchmark": "docstore_hotpath",
        "verified_bit_identical": True,
        "workload": {
            "documents": documents_count,
            "shards": 4,
            "indexes": [["ncid", "hash"], ["meta.first_version", "sorted"]],
        },
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "timings": {
            "plan_cache": plan_cache,
            "materialization": materialization,
            "batched_commit": batched,
        },
        "determinism": determinism,
    }


GATES = {"plan_cache": 3.0, "materialization": 2.0, "batched_commit": 5.0}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument("--documents", type=int, default=None)
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of-N timing rounds"
    )
    parser.add_argument("--out", default="BENCH_hotpath.json")
    args = parser.parse_args(argv)

    documents = args.documents or (5000 if args.quick else 20000)
    passes = 8 if args.quick else 12
    report = run_benchmark(documents, passes=passes, repeats=args.repeats)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    for name, row in report["timings"].items():
        print(f"{name:>16}: {row['speedup']:.2f}x (gate ≥{GATES[name]:.0f}x)")
    print(
        "   determinism: "
        + ("consistent" if report["determinism"]["consistent"] else "DIVERGED")
        + f" across {DEFAULT_CONFIGS}"
    )
    print(f"wrote {args.out}")

    failed = False
    for name, floor in GATES.items():
        speedup = report["timings"][name]["speedup"]
        if speedup is None or speedup < floor:
            print(f"WARNING: {name} speedup {speedup:.2f}x below the {floor:.0f}x gate")
            failed = True
    if not report["determinism"]["consistent"]:
        print("WARNING: reads diverged across (workers, shards) configs")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
