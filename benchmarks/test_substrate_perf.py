"""Substrate micro-benchmarks: similarity measures and the document store.

Not paper experiments — these keep the two performance-critical substrates
honest.  The heterogeneity computation calls the similarity measures
millions of times at full scale, and every customisation query goes
through the document store.
"""

import random
import string

import pytest

from repro.docstore import Database
from repro.textsim import (
    damerau_levenshtein_similarity,
    generalized_jaccard,
    jaccard_qgrams,
    jaro_winkler,
    symmetric_monge_elkan,
)


def _word(rng, length=8):
    return "".join(rng.choice(string.ascii_uppercase) for _ in range(length))


@pytest.fixture(scope="module")
def word_pairs():
    rng = random.Random(4)
    return [(_word(rng), _word(rng)) for _ in range(200)]


class TestSimilarityThroughput:
    def test_damerau_levenshtein(self, benchmark, word_pairs):
        result = benchmark(
            lambda: [damerau_levenshtein_similarity(a, b) for a, b in word_pairs]
        )
        assert len(result) == 200

    def test_jaro_winkler(self, benchmark, word_pairs):
        result = benchmark(lambda: [jaro_winkler(a, b) for a, b in word_pairs])
        assert len(result) == 200

    def test_trigram_jaccard(self, benchmark, word_pairs):
        result = benchmark(lambda: [jaccard_qgrams(a, b) for a, b in word_pairs])
        assert len(result) == 200

    def test_monge_elkan(self, benchmark, word_pairs):
        pairs = [(f"{a} {b}", f"{b} {a}") for a, b in word_pairs[:50]]
        result = benchmark(
            lambda: [symmetric_monge_elkan(a, b) for a, b in pairs]
        )
        assert len(result) == 50

    def test_generalized_jaccard(self, benchmark, word_pairs):
        pairs = [(f"{a} {b}", f"{b} {a}") for a, b in word_pairs[:50]]
        result = benchmark(lambda: [generalized_jaccard(a, b) for a, b in pairs])
        assert len(result) == 50


def _build_collection(documents):
    database = Database("perf")
    collection = database["docs"]
    collection.insert_many(documents)
    return collection


@pytest.fixture(scope="module")
def store_documents():
    rng = random.Random(9)
    return [
        {
            "ncid": f"AA{i:06d}",
            "records": [
                {"person": {"last_name": _word(rng), "age": str(rng.randrange(18, 99))}}
                for _ in range(rng.randrange(1, 5))
            ],
        }
        for i in range(2000)
    ]


class TestDocStoreThroughput:
    def test_insert(self, benchmark, store_documents):
        collection = benchmark(_build_collection, store_documents)
        assert len(collection) == 2000

    def test_indexed_point_query(self, benchmark, store_documents):
        collection = _build_collection(store_documents)
        collection.create_index("ncid")

        def lookup():
            return [
                collection.find({"ncid": f"AA{i:06d}"}) for i in range(0, 2000, 40)
            ]

        results = benchmark(lookup)
        assert all(len(r) == 1 for r in results)

    def test_aggregation_pipeline(self, benchmark, store_documents):
        collection = _build_collection(store_documents)

        def aggregate():
            return collection.aggregate(
                [
                    {"$addFields": {"size": {"$size": "$records"}}},
                    {"$group": {"_id": "$size", "n": {"$sum": 1}}},
                    {"$sort": {"_id": 1}},
                ]
            )

        result = benchmark(aggregate)
        assert sum(row["n"] for row in result) == 2000
