"""Sharded docstore benchmark: routing, scatter-gather, concurrent readers.

Builds the same clusters-like store twice — unsharded and hash-partitioned
on ``ncid`` — and measures the three properties the partitioned layout is
for:

* ``point_routing``     — shard-key point ``find``: the planner routes to a
  single partition and (warm) replays a cached bound plan, so the cost
  must reach parity with the unsharded indexed lookup (gate: ≥1.0x minus
  a small timer-noise allowance — the two warm paths execute the same
  instructions, so any real regression shows up as a clear gap);
* ``scatter_gather``    — non-shard-key range ``find`` and a partial-group
  ``aggregate`` fan out over every partition and k-way merge.  On 2+
  effective CPUs the threaded fan-out should beat the unsharded scan; on a
  single CPU the GIL serializes pure-Python scans, so the gate is *parity*
  (within ``--parity-tolerance`` of unsharded) and the report records
  ``single_cpu_parity: true``;
* ``concurrent_readers`` — 1/2/4 snapshot readers against a committing
  writer: copy-on-write epochs mean readers never block and never observe
  a torn commit (every read sees a whole batch with one version stamp).

Every measured read is verified bit-identical against the unsharded
baseline — the benchmark aborts otherwise.  Results are written as
machine-readable JSON for CI artifact upload and regression tracking.

Usage::

    PYTHONPATH=src python benchmarks/shards_bench.py --quick --out BENCH_shards.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.parallel import effective_worker_count
from repro.docstore import Collection, Database

CITIES = ["asheville", "boone", "cary", "durham", "elkin", "fuquay", "garner"]

#: Routed and unsharded point reads execute the same warm instructions
#: (plan-cache hit, cached candidate ids, lazy materialization), so the
#: gate is parity; this is the wall-clock jitter allowance below 1.0x at
#: which a measured ratio stops being explainable by timer noise.
POINT_NOISE_TOLERANCE = 0.05


def build_collection(documents: int, shards: int, seed: int = 20210323) -> Collection:
    """A clusters-like collection, optionally hash-partitioned on ncid."""
    rng = random.Random(seed)
    collection = Collection("clusters", shards=shards)
    collection.create_index("ncid", "hash")
    collection.create_index("meta.first_version", "sorted")
    collection.insert_many(
        {
            "ncid": f"NC{n:07d}",
            "city": rng.choice(CITIES),
            "meta": {
                "first_version": rng.randint(1, 40),
                "size": rng.randint(1, 12),
            },
        }
        for n in range(documents)
    )
    return collection


def _timed_once(fn: Callable[[], object]) -> float:
    """One wall-time sample with the cyclic GC parked.

    A fresh ``gc.collect()`` plus ``gc.disable()`` keeps generation-0
    collections from landing inside one side of a paired measurement —
    at a few microseconds per query they are the dominant noise source.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


def _timed_pair(
    sharded_fn: Callable[[], object],
    baseline_fn: Callable[[], object],
    repeats: int,
) -> Tuple[float, float, object, object]:
    """Interleaved best-of-``repeats`` wall times for both sides of a workload.

    The first (untimed) call of each side warms caches — plan cache, hash
    buckets, allocator arenas — and supplies the results for bit-identical
    verification.  Timed rounds then alternate sharded/unsharded so slow
    scheduler windows hit both sides alike, and each side's minimum is the
    reported time (the standard best-of-N noise floor).
    """
    sharded_result = sharded_fn()
    baseline_result = baseline_fn()
    sharded_best = float("inf")
    baseline_best = float("inf")
    for _ in range(repeats):
        sharded_best = min(sharded_best, _timed_once(sharded_fn))
        baseline_best = min(baseline_best, _timed_once(baseline_fn))
    return sharded_best, baseline_best, sharded_result, baseline_result


def _concurrent_readers(
    documents: int, shards: int, reader_counts: Sequence[int], batches: int
) -> Dict:
    """Snapshot-reader throughput while a writer commits batch after batch.

    Returns per-reader-count reads completed, reads that overlapped writer
    activity, and the torn-read count (must be 0: every snapshot read must
    see whole batches, all carrying one version stamp).
    """
    batch = 50
    results: Dict[str, Dict] = {}
    for readers in reader_counts:
        database = Database("db", shards=shards)
        collection = database.create_collection("clusters")
        for i in range(documents):
            collection.insert_one(
                {"_id": i, "ncid": f"NC{i:07d}", "v": 0}
            )
        database.commit()

        stop = threading.Event()
        writer_active = threading.Event()
        counts = [0] * readers
        overlapped = [0] * readers
        torn: list = []

        def read_loop(slot: int) -> None:
            while not stop.is_set():
                snap = collection.snapshot()
                docs = list(snap.all())
                extra = len(docs) - documents
                versions = {doc["v"] for doc in docs}
                if extra % batch or len(versions) != 1:
                    torn.append((len(docs), sorted(versions)[:3]))
                    return
                counts[slot] += 1
                if writer_active.is_set():
                    overlapped[slot] += 1

        threads = [
            threading.Thread(target=read_loop, args=(slot,))
            for slot in range(readers)
        ]
        for thread in threads:
            thread.start()
        start = time.perf_counter()
        writer_active.set()
        for version in range(1, batches + 1):
            base = documents + (version - 1) * batch
            for i in range(batch):
                collection.insert_one(
                    {"_id": base + i, "ncid": f"XX{base + i:07d}", "v": version}
                )
            collection.update_many({}, {"$set": {"v": version}})
            database.commit()
        writer_active.clear()
        writer_seconds = time.perf_counter() - start
        stop.set()
        for thread in threads:
            thread.join()

        if torn:
            raise SystemExit(
                f"FATAL: torn snapshot reads with {readers} reader(s): {torn[:3]}"
            )
        results[str(readers)] = {
            "reads_completed": sum(counts),
            "reads_during_commits": sum(overlapped),
            "writer_seconds": writer_seconds,
            "torn_reads": 0,
        }
    return results


def run_benchmark(
    documents: int, queries: int, shards: int, repeats: int, parity_tolerance: float
) -> Dict:
    unsharded = build_collection(documents, shards=1)
    sharded = build_collection(documents, shards=shards)
    effective = effective_worker_count(shards, warn=False)
    sharded.read_workers = effective

    rng = random.Random(97)
    point_ids = [f"NC{rng.randrange(documents):07d}" for _ in range(queries)]
    range_bounds = [
        (low, low + 2) for low in (rng.randint(1, 36) for _ in range(queries))
    ]
    group_pipeline = [
        {"$group": {"_id": "$city", "n": {"$sum": 1}, "hi": {"$max": "$meta.size"}}}
    ]

    # Warm point reads cost single-digit microseconds, so one pass over the
    # query list is far below timer resolution; loop it until each sample is
    # a few milliseconds, and give the parity gate a deeper best-of-N floor.
    point_passes = max(1, 4000 // max(queries, 1))
    point_repeats = max(repeats, 10)

    workloads: Dict[str, Tuple[Callable[[], object], Callable[[], object]]] = {
        "point_find": (
            lambda: [
                sharded.find({"ncid": ncid})
                for _ in range(point_passes)
                for ncid in point_ids
            ],
            lambda: [
                unsharded.find({"ncid": ncid})
                for _ in range(point_passes)
                for ncid in point_ids
            ],
        ),
        "scatter_range_find": (
            lambda: [
                sharded.find({"meta.first_version": {"$gte": lo, "$lte": hi}})
                for lo, hi in range_bounds
            ],
            lambda: [
                unsharded.find({"meta.first_version": {"$gte": lo, "$lte": hi}})
                for lo, hi in range_bounds
            ],
        ),
        "partial_group_aggregate": (
            lambda: [sharded.aggregate(group_pipeline) for _ in range(queries)],
            lambda: [unsharded.aggregate(group_pipeline) for _ in range(queries)],
        ),
    }

    timings: Dict[str, Dict] = {}
    for name, (sharded_fn, baseline_fn) in workloads.items():
        rounds = point_repeats if name == "point_find" else repeats
        sharded_seconds, baseline_seconds, sharded_result, baseline_result = (
            _timed_pair(sharded_fn, baseline_fn, rounds)
        )
        if sharded_result != baseline_result:
            raise SystemExit(f"FATAL: {name} sharded results differ from unsharded")
        timings[name] = {
            "sharded_seconds": sharded_seconds,
            "unsharded_seconds": baseline_seconds,
            "speedup": baseline_seconds / sharded_seconds if sharded_seconds else None,
        }
    timings["point_find"]["passes"] = point_passes
    timings["point_find"]["repeats"] = point_repeats

    point_explained = sharded.explain({"ncid": point_ids[0]})
    timings["point_find"]["routing"] = point_explained["routing"]
    timings["point_find"]["shards_touched"] = point_explained["shards_touched"]
    scatter_explained = sharded.explain(
        {"meta.first_version": {"$gte": 1, "$lte": 3}}
    )
    timings["scatter_range_find"]["routing"] = scatter_explained["routing"]
    timings["scatter_range_find"]["shards_touched"] = scatter_explained[
        "shards_touched"
    ]

    reader_counts = (1, 2, 4)
    concurrent = _concurrent_readers(
        documents=min(documents, 500),
        shards=shards,
        reader_counts=reader_counts,
        batches=10,
    )

    single_cpu = effective < 2
    return {
        "benchmark": "docstore_shards",
        "verified_bit_identical": True,
        "single_cpu_parity": single_cpu,
        "parity_tolerance": parity_tolerance,
        "workload": {
            "documents": documents,
            "queries_per_workload": queries,
            "shards": shards,
            "shard_key": sharded.shard_key,
            "indexes": sharded.index_specs(),
        },
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "requested_read_workers": shards,
            "effective_workers": effective,
        },
        "timings": timings,
        "concurrent_readers": concurrent,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke test)"
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_shards.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="partition count for the sharded store"
    )
    parser.add_argument(
        "--parity-tolerance",
        type=float,
        default=0.5,
        help="single-CPU gate: scatter-gather may be at most this fraction "
        "slower than unsharded (0.5 = within 1.5x)",
    )
    args = parser.parse_args(argv)

    documents = 2000 if args.quick else 10000
    queries = 25 if args.quick else 50
    report = run_benchmark(
        documents, queries, args.shards, args.repeats, args.parity_tolerance
    )

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    environment = report["environment"]
    print(
        f"workload: {report['workload']['documents']} documents, "
        f"{report['workload']['shards']} shards, "
        f"effective workers {environment['effective_workers']} "
        f"(requested {environment['requested_read_workers']}, "
        f"{environment['cpu_count']} CPU(s))"
    )
    for name, row in report["timings"].items():
        extra = f", routing={row['routing']}" if "routing" in row else ""
        print(
            f"{name:>24}: sharded {row['sharded_seconds']:.3f}s vs "
            f"unsharded {row['unsharded_seconds']:.3f}s  "
            f"({row['speedup']:.2f}x{extra})"
        )
    for readers, row in report["concurrent_readers"].items():
        print(
            f"  {readers} reader(s): {row['reads_completed']} reads "
            f"({row['reads_during_commits']} during commits), "
            f"0 torn, writer {row['writer_seconds']:.3f}s"
        )
    print(f"wrote {args.out}")

    failed = False
    point = report["timings"]["point_find"]
    if point["routing"] != "single":
        print("WARNING: point find did not route to a single shard")
        failed = True
    point_floor = 1.0 - POINT_NOISE_TOLERANCE
    if point["speedup"] is not None and point["speedup"] < point_floor:
        print(
            f"WARNING: routed point find reached only {point['speedup']:.2f}x "
            f"of unsharded (gate: parity, ≥{point_floor:.2f}x after timer noise)"
        )
        failed = True
    floor = 1.5 if not report["single_cpu_parity"] else 1.0 - args.parity_tolerance
    for gated in ("scatter_range_find", "partial_group_aggregate"):
        speedup = report["timings"][gated]["speedup"]
        if speedup is not None and speedup < floor:
            print(
                f"WARNING: {gated} speedup {speedup:.2f}x is below the "
                f"{floor:.2f}x gate "
                f"({'single-CPU parity' if report['single_cpu_parity'] else '2+ CPUs'})"
            )
            failed = True
    for readers, row in report["concurrent_readers"].items():
        if row["reads_during_commits"] < 1:
            print(
                f"WARNING: {readers} reader(s) made no progress during commits"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
