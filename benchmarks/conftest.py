"""Shared benchmark fixtures: a bench-scale simulated register.

Benchmarks run at a larger scale than the unit tests (tens of thousands of
raw snapshot rows).  Each bench regenerates one table or figure of the
paper; the regenerated rows are printed and written to
``benchmarks/results/<experiment>.txt`` so they can be diffed against the
paper's numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import sys

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.votersim import SimulationConfig, VoterRegisterSimulator

sys.path.insert(0, str(Path(__file__).parent))  # make bench_utils importable

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_CONFIG = SimulationConfig(
    initial_voters=800,
    years=8,
    snapshots_per_year=2,
    seed=20210323,
    ncid_reuse_rate=0.02,
    removal_rate=0.03,
)


@pytest.fixture(scope="session")
def bench_simulator():
    sim = VoterRegisterSimulator(BENCH_CONFIG)
    sim._snapshots = list(sim.run())
    return sim


@pytest.fixture(scope="session")
def bench_snapshots(bench_simulator):
    return bench_simulator._snapshots


@pytest.fixture(scope="session")
def bench_generator(bench_snapshots):
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(bench_snapshots)
    return generator


@pytest.fixture(scope="session")
def bench_scorer(bench_generator):
    from repro.core.heterogeneity import HeterogeneityScorer
    from repro.votersim.schema import PERSON_ATTRIBUTES

    return HeterogeneityScorer.from_clusters(
        bench_generator.clusters(),
        ("person",),
        tuple(a for a in PERSON_ATTRIBUTES if a != "ncid"),
    )


#: The paper's three heterogeneity ranges (Section 6.5).
NC_RANGES = {"NC1": (0.06, 0.2), "NC2": (0.2, 0.4), "NC3": (0.4, 1.0)}


@pytest.fixture(scope="session")
def nc_datasets(bench_generator, bench_scorer):
    from repro.core import customize

    return {
        name: customize(
            bench_generator,
            low,
            high,
            target_clusters=120,
            scorer=bench_scorer,
            name=name,
        )
        for name, (low, high) in NC_RANGES.items()
    }


@pytest.fixture(scope="session")
def comparison_datasets():
    from repro.datasets import synthesize_cddb, synthesize_census, synthesize_cora

    return {
        "Cora": synthesize_cora(),
        "Census": synthesize_census(),
        "CDDB": synthesize_cddb(),
    }


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
