"""Ablation: the record-hash attribute exclusion set (Section 4).

The paper excludes the four date attributes and the age from the MD5
record hash because they change without the person changing.  This bench
quantifies what happens without the exclusion: nearly every snapshot row
survives dedup, inflating the dataset with near-exact duplicates.
"""

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.hashing import record_hash
from repro.votersim.schema import ALL_ATTRIBUTES, HASH_EXCLUDED_ATTRIBUTES

from bench_utils import write_result


def dedup_with_attributes(snapshots, attributes):
    """Count surviving records when hashing over ``attributes``."""
    seen_per_cluster = {}
    survivors = 0
    for snapshot in snapshots:
        for record in snapshot.records:
            ncid = record["ncid"].strip()
            digest = record_hash(record, attributes, trim=True)
            hashes = seen_per_cluster.setdefault(ncid, set())
            if digest not in hashes:
                hashes.add(digest)
                survivors += 1
    return survivors


def test_ablation_hash_exclusion(benchmark, bench_snapshots, results_dir):
    with_exclusion = tuple(
        a for a in ALL_ATTRIBUTES if a not in HASH_EXCLUDED_ATTRIBUTES
    )
    without_exclusion = ALL_ATTRIBUTES
    only_age_kept = tuple(
        a for a in ALL_ATTRIBUTES
        if a not in HASH_EXCLUDED_ATTRIBUTES or a == "age"
    )

    survivors_with = benchmark(dedup_with_attributes, bench_snapshots, with_exclusion)
    survivors_without = dedup_with_attributes(bench_snapshots, without_exclusion)
    survivors_age = dedup_with_attributes(bench_snapshots, only_age_kept)
    total = sum(len(s) for s in bench_snapshots)

    lines = [
        f"raw snapshot rows:                     {total}",
        f"survivors, paper's exclusion set:      {survivors_with} "
        f"({survivors_with / total:.1%})",
        f"survivors, age also hashed:            {survivors_age} "
        f"({survivors_age / total:.1%})",
        f"survivors, nothing excluded:           {survivors_without} "
        f"({survivors_without / total:.1%})",
    ]
    write_result(results_dir, "ablation_hash_exclusion", lines)

    # Hashing the dates keeps (almost) every row: dedup collapses.
    assert survivors_without > 0.95 * total
    # Hashing the age alone already splits clusters at year boundaries.
    assert survivors_age > 1.2 * survivors_with
    # The paper's exclusion set removes the majority of rows.
    assert survivors_with < 0.5 * total
