"""Duplicate-detection benchmark: naive framework vs streaming vs parallel.

Simulates a register, imports it, flattens a labeled dataset, then runs
the paper's Section 6.5 detection three ways:

* ``naive``     — the historical path preserved in
  :mod:`repro.dedup._reference`: eager tuple-set candidate union, the
  per-pair record matcher re-deriving everything per call, and the
  uncached naive Monge-Elkan kernel;
* ``streaming`` — :mod:`repro.dedup.pipeline` in one process: packed
  64-bit candidate keys, prepared record vectors, batched scoring through
  the fast kernels and the shared LRU;
* ``parallel``  — the same pipeline with pair scoring sharded over a
  process pool, at each requested worker count.

All paths must produce bit-identical similarity maps, threshold sweeps
and best-F1 thresholds — the benchmark aborts otherwise.  Besides wall
times it reports candidate-generation and scoring throughput and the
peak candidate-set memory (eager tuple set vs packed int set).  Results
are written as machine-readable JSON for CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/dedup_bench.py --quick --out BENCH_dedup.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core import RemovalLevel, TestDataGenerator, customize
from repro.core.parallel import effective_worker_count
from repro.dedup import (
    DetectionPipeline,
    RecordMatcher,
    best_f1,
    evaluate_thresholds,
    pack_pairs,
    pick_blocking_keys,
)
from repro.dedup import _reference as dedupref
from repro.textsim import MongeElkan, fast
from repro.textsim import _reference as textref
from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import PERSON_ATTRIBUTES

QUICK_CONFIG = SimulationConfig(
    initial_voters=220,
    years=5,
    snapshots_per_year=2,
    seed=20210323,
    ncid_reuse_rate=0.02,
    removal_rate=0.03,
)

FULL_CONFIG = SimulationConfig(
    initial_voters=700,
    years=8,
    snapshots_per_year=2,
    seed=20210323,
    ncid_reuse_rate=0.02,
    removal_rate=0.03,
)

THRESHOLDS = tuple(t / 20 for t in range(4, 20))
NAME_ATTRIBUTES = ("first_name", "midl_name", "last_name")


def _build_dataset(config: SimulationConfig, target_clusters: int):
    simulator = VoterRegisterSimulator(config)
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(list(simulator.run()))
    return customize(
        generator, 0.0, 1.0, target_clusters=target_clusters, name="bench"
    )


def _timed(fn, repeats: int = 1) -> tuple:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _tuple_set_bytes(pairs: Set[Tuple[int, int]]) -> int:
    """Deep size of the eager candidate set: set + tuples + their ints."""
    total = sys.getsizeof(pairs)
    for pair in pairs:
        total += sys.getsizeof(pair)
        total += sys.getsizeof(pair[0]) + sys.getsizeof(pair[1])
    return total


def _packed_set_bytes(keys: Set[int]) -> int:
    """Deep size of the packed candidate set: set + its ints."""
    return sys.getsizeof(keys) + sum(sys.getsizeof(key) for key in keys)


def run_benchmark(
    config: SimulationConfig,
    target_clusters: int,
    worker_counts: Sequence[int],
    repeats: int,
) -> Dict:
    dataset = _build_dataset(config, target_clusters)
    records, gold = dataset.records, dataset.gold_pairs
    attributes = [a for a in PERSON_ATTRIBUTES if a != "ncid"]
    keys = pick_blocking_keys(records, attributes, 5)
    window = 20
    matcher = RecordMatcher.from_records(
        records, attributes, MongeElkan(), NAME_ATTRIBUTES
    )

    # -- naive: eager tuple sets + per-pair historical matcher -------------
    def naive():
        pairs = dedupref.multipass_pairs_reference(records, keys, window)
        scores = dedupref.score_candidates_reference(
            records,
            pairs,
            textref.symmetric_monge_elkan,
            matcher.weights,
            NAME_ATTRIBUTES,
        )
        points = evaluate_thresholds(scores, gold, THRESHOLDS)
        return pairs, scores, points

    naive_candidates_seconds, naive_pairs = _timed(
        lambda: dedupref.multipass_pairs_reference(records, keys, window),
        repeats,
    )
    naive_seconds, (naive_pairs, naive_scores, naive_points) = _timed(
        naive, repeats
    )

    # -- streaming: packed keys + prepared vectors, one process ------------
    def streaming(workers: int = 0):
        def run():
            fast.clear_caches()
            pipeline = DetectionPipeline(
                window=window,
                key_attributes=keys,
                thresholds=THRESHOLDS,
                workers=workers,
                shards=max(workers, 1),
            )
            return pipeline.detect(records, attributes, matcher, gold)

        return run

    pipeline_candidates = DetectionPipeline(window=window, key_attributes=keys)
    streaming_candidates_seconds, (packed, _stats) = _timed(
        lambda: pipeline_candidates.candidates(records, attributes), repeats
    )
    streaming_seconds, streaming_result = _timed(streaming(0), repeats)

    def check(label: str, result) -> None:
        if result.candidate_keys != pack_pairs(naive_pairs, len(records)):
            raise SystemExit(f"FATAL: {label} candidate set differs from naive")
        if result.similarities != naive_scores:
            raise SystemExit(f"FATAL: {label} similarities differ from naive")
        if result.points != naive_points:
            raise SystemExit(f"FATAL: {label} threshold sweep differs from naive")
        if result.best != best_f1(naive_points):
            raise SystemExit(f"FATAL: {label} best-F1 point differs from naive")

    check("streaming", streaming_result)

    pair_count = len(naive_pairs)
    timings: Dict[str, Dict] = {
        "naive": {
            "seconds": naive_seconds,
            "speedup": 1.0,
            "candidate_seconds": naive_candidates_seconds,
            "candidate_pairs_per_second": (
                pair_count / naive_candidates_seconds
                if naive_candidates_seconds
                else None
            ),
            "scoring_pairs_per_second": (
                pair_count / (naive_seconds - naive_candidates_seconds)
                if naive_seconds > naive_candidates_seconds
                else None
            ),
        },
        "streaming": {
            "seconds": streaming_seconds,
            "speedup": naive_seconds / streaming_seconds
            if streaming_seconds
            else None,
            "candidate_seconds": streaming_candidates_seconds,
            "candidate_pairs_per_second": (
                pair_count / streaming_candidates_seconds
                if streaming_candidates_seconds
                else None
            ),
            "scoring_pairs_per_second": (
                pair_count / (streaming_seconds - streaming_candidates_seconds)
                if streaming_seconds > streaming_candidates_seconds
                else None
            ),
        },
    }

    for workers in worker_counts:
        label = f"parallel_workers_{workers}"
        seconds, result = _timed(streaming(workers), repeats)
        check(label, result)
        timings[label] = {
            "seconds": seconds,
            "speedup": naive_seconds / seconds if seconds else None,
            "scoring_pairs_per_second": (
                pair_count / (seconds - streaming_candidates_seconds)
                if seconds > streaming_candidates_seconds
                else None
            ),
        }

    best = best_f1(naive_points)
    return {
        "benchmark": "duplicate_detection",
        "verified_bit_identical": True,
        "workload": {
            "initial_voters": config.initial_voters,
            "years": config.years,
            "snapshots_per_year": config.snapshots_per_year,
            "records": len(records),
            "gold_pairs": len(gold),
            "candidate_pairs": pair_count,
            "window": window,
            "passes": len(keys),
            "best_f1": best.f1,
            "best_threshold": best.threshold,
        },
        "memory": {
            "tuple_set_bytes": _tuple_set_bytes(naive_pairs),
            "packed_set_bytes": _packed_set_bytes(packed),
        },
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            # Requested worker counts clamp to the CPU budget; the clamped
            # values are what the parallel runs actually used.
            "effective_workers": {
                str(workers): effective_worker_count(workers, warn=False)
                for workers in worker_counts
            },
        },
        "timings": timings,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke test)"
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_dedup.json", help="output JSON path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[2, 4],
        help="process-pool worker counts to benchmark",
    )
    parser.add_argument(
        "--clusters", type=int, default=None, help="target cluster count"
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing repeats"
    )
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    clusters = args.clusters or (90 if args.quick else 260)
    report = run_benchmark(config, clusters, args.workers, args.repeats)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    workload = report["workload"]
    print(
        f"workload: {workload['records']} records, "
        f"{workload['candidate_pairs']} candidate pairs, "
        f"{workload['gold_pairs']} gold pairs"
    )
    memory = report["memory"]
    print(
        f"candidate-set memory: tuple set {memory['tuple_set_bytes']} B, "
        f"packed set {memory['packed_set_bytes']} B "
        f"({memory['tuple_set_bytes'] / memory['packed_set_bytes']:.1f}x smaller)"
    )
    for name, row in report["timings"].items():
        print(f"{name:>22}: {row['seconds']:.3f}s  ({row['speedup']:.2f}x)")
    print(f"wrote {args.out}")

    best_parallel = max(
        row["speedup"]
        for name, row in report["timings"].items()
        if name.startswith("parallel_") and row["speedup"] is not None
    )
    if best_parallel < 5.0:
        print(f"WARNING: best parallel speedup {best_parallel:.2f}x is below 5x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
