"""Scoring benchmark: naive reference vs fast sequential vs parallel.

Simulates a register, imports it, then scores every cluster three ways:

* ``naive``    — the uncached oracle in :mod:`repro.core._reference`
  (per-pair recomputation through the naive string kernels);
* ``fast``     — the batched pair-dedup paths (``score_clusters`` +
  ``HeterogeneityScorer.score_clusters``) run sequentially in-process;
* ``parallel`` — :func:`repro.core.parallel.score_clusters_parallel`
  with a process pool, at each requested worker count.

All three must produce bit-identical score maps — the benchmark aborts
otherwise.  Results are written as machine-readable JSON (timings in
seconds, speedups vs the naive reference, environment info) for CI
artifact upload and regression tracking.

Usage::

    PYTHONPATH=src python benchmarks/scoring_bench.py --quick --out BENCH_scoring.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.core import RemovalLevel, TestDataGenerator
from repro.core import _reference as coreref
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.parallel import score_clusters_parallel
from repro.core.plausibility import score_clusters
from repro.textsim import fast
from repro.votersim import SimulationConfig, VoterRegisterSimulator

QUICK_CONFIG = SimulationConfig(
    initial_voters=250,
    years=5,
    snapshots_per_year=2,
    seed=20210323,
    ncid_reuse_rate=0.3,
    removal_rate=0.04,
)

FULL_CONFIG = SimulationConfig(
    initial_voters=800,
    years=8,
    snapshots_per_year=2,
    seed=20210323,
    ncid_reuse_rate=0.3,
    removal_rate=0.04,
)


def _build_clusters(config: SimulationConfig) -> List[dict]:
    simulator = VoterRegisterSimulator(config)
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(list(simulator.run()))
    return list(generator.clusters())


def _timed(fn, repeats: int = 1) -> tuple:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(
    config: SimulationConfig, worker_counts: Sequence[int], repeats: int
) -> Dict:
    clusters = _build_clusters(config)
    scorer = HeterogeneityScorer.from_clusters(clusters, ("person",))
    pair_count = sum(
        len(c["records"]) * (len(c["records"]) - 1) // 2 for c in clusters
    )

    naive_seconds, naive_result = _timed(
        lambda: (
            coreref.score_plausibility_reference(clusters),
            coreref.score_heterogeneity_reference(
                scorer.weights, clusters, ("person",)
            ),
        ),
        repeats,
    )

    def fast_sequential():
        fast.clear_caches()
        return (
            score_clusters(clusters),
            scorer.score_clusters(clusters, ("person",)),
        )

    fast_seconds, fast_result = _timed(fast_sequential, repeats)

    if fast_result != naive_result:
        raise SystemExit("FATAL: fast batch scores differ from naive reference")

    timings: Dict[str, Dict] = {
        "naive_reference": {"seconds": naive_seconds, "speedup": 1.0},
        "fast_sequential": {
            "seconds": fast_seconds,
            "speedup": naive_seconds / fast_seconds if fast_seconds else None,
        },
    }

    for workers in worker_counts:
        label = f"parallel_workers_{workers}"
        seconds, result = _timed(
            lambda workers=workers: score_clusters_parallel(
                clusters,
                heterogeneity_all=scorer,
                shards=max(workers, 1),
                max_workers=workers,
            ),
            repeats,
        )
        expected_plausibility, expected_heterogeneity = naive_result
        for cluster in clusters:
            maps = result[cluster["ncid"]]
            if maps["plausibility"] != expected_plausibility[cluster["ncid"]]:
                raise SystemExit(f"FATAL: {label} plausibility differs from naive")
            if maps["heterogeneity"] != expected_heterogeneity[cluster["ncid"]]:
                raise SystemExit(f"FATAL: {label} heterogeneity differs from naive")
        timings[label] = {
            "seconds": seconds,
            "speedup": naive_seconds / seconds if seconds else None,
        }

    return {
        "benchmark": "cluster_scoring",
        "verified_bit_identical": True,
        "workload": {
            "initial_voters": config.initial_voters,
            "years": config.years,
            "snapshots_per_year": config.snapshots_per_year,
            "clusters": len(clusters),
            "record_pairs": pair_count,
        },
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "timings": timings,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke test)"
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_scoring.json", help="output JSON path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[1, 2],
        help="process-pool worker counts to benchmark",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing repeats"
    )
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run_benchmark(config, args.workers, args.repeats)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"workload: {report['workload']['clusters']} clusters, "
          f"{report['workload']['record_pairs']} record pairs")
    for name, row in report["timings"].items():
        print(f"{name:>22}: {row['seconds']:.3f}s  ({row['speedup']:.2f}x)")
    print(f"wrote {args.out}")

    fast_speedup = report["timings"]["fast_sequential"]["speedup"]
    if fast_speedup is not None and fast_speedup < 3.0:
        print(f"WARNING: fast sequential speedup {fast_speedup:.2f}x is below 3x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
