"""Docstore benchmark: planned reads vs forced full scans.

Builds a synthetic cluster store, creates the indexes the generator would
create, then runs four read workloads two ways:

* ``planned``   — through :class:`repro.docstore.Collection`, whose reads
  go through the query planner (:mod:`repro.docstore.planner`);
* ``full_scan`` — through the naive oracles in
  :mod:`repro.docstore._reference`, which ignore every index and deep-copy
  every match.

Workloads: indexed point ``find`` (hash lookup), indexed range ``find``
(sorted-index range), sorted window ``find`` (index-ordered streaming with
a lazily-copied window) and a pushdown ``aggregate`` (leading
``$match``/``$sort``/``$limit`` absorbed into the planner).

Every workload's planned results must be bit-identical to the full-scan
results — the benchmark aborts otherwise.  Results are written as
machine-readable JSON (timings in seconds, speedups vs full scan,
environment info) for CI artifact upload and regression tracking.

Usage::

    PYTHONPATH=src python benchmarks/docstore_bench.py --quick --out BENCH_docstore.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.docstore import Collection
from repro.docstore._reference import aggregate_full_scan, find_full_scan

CITIES = ["asheville", "boone", "cary", "durham", "elkin", "fuquay", "garner"]


def build_collection(documents: int, seed: int = 20210323) -> Collection:
    """A clusters-like collection with the generator's index layout."""
    rng = random.Random(seed)
    collection = Collection("clusters")
    collection.create_index("ncid", "hash")
    collection.create_index("meta.first_version", "sorted")
    collection.create_index("meta.size", "sorted")
    collection.insert_many(
        {
            "ncid": f"NC{n:07d}",
            "city": rng.choice(CITIES),
            "meta": {
                "first_version": rng.randint(1, 40),
                "size": rng.randint(1, 12),
            },
        }
        for n in range(documents)
    )
    return collection


def _timed(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(documents: int, queries: int, repeats: int) -> Dict:
    collection = build_collection(documents)
    rng = random.Random(97)
    point_ids = [f"NC{rng.randrange(documents):07d}" for _ in range(queries)]
    range_bounds = [
        (low, low + 1) for low in (rng.randint(1, 38) for _ in range(queries))
    ]
    pipeline = [
        {"$match": {"meta.first_version": {"$lte": 3}}},
        {"$sort": {"meta.size": -1}},
        {"$limit": 25},
        {"$group": {"_id": "$city", "n": {"$sum": 1}}},
    ]

    workloads: Dict[str, Tuple[Callable[[], object], Callable[[], object]]] = {
        "point_find": (
            lambda: [collection.find({"ncid": ncid}) for ncid in point_ids],
            lambda: [find_full_scan(collection, {"ncid": ncid}) for ncid in point_ids],
        ),
        "range_find": (
            lambda: [
                collection.find({"meta.first_version": {"$gte": lo, "$lte": hi}})
                for lo, hi in range_bounds
            ],
            lambda: [
                find_full_scan(
                    collection, {"meta.first_version": {"$gte": lo, "$lte": hi}}
                )
                for lo, hi in range_bounds
            ],
        ),
        "sorted_window": (
            lambda: [
                collection.find(sort=[("meta.size", 1)], skip=lo * 10, limit=20)
                for lo, _ in range_bounds
            ],
            lambda: [
                find_full_scan(
                    collection, sort=[("meta.size", 1)], skip=lo * 10, limit=20
                )
                for lo, _ in range_bounds
            ],
        ),
        "pushdown_aggregate": (
            lambda: [collection.aggregate(pipeline) for _ in range(queries)],
            lambda: [aggregate_full_scan(collection, pipeline) for _ in range(queries)],
        ),
    }

    timings: Dict[str, Dict] = {}
    for name, (planned_fn, naive_fn) in workloads.items():
        planned_seconds, planned_result = _timed(planned_fn, repeats)
        naive_seconds, naive_result = _timed(naive_fn, repeats)
        if planned_result != naive_result:
            raise SystemExit(f"FATAL: {name} planned results differ from full scan")
        timings[name] = {
            "planned_seconds": planned_seconds,
            "full_scan_seconds": naive_seconds,
            "speedup": naive_seconds / planned_seconds if planned_seconds else None,
            "plan": collection.explain(
                pipeline=pipeline
            )["plan"]
            if name == "pushdown_aggregate"
            else None,
        }

    timings["point_find"]["plan"] = collection.explain({"ncid": "NC0000000"})["plan"]
    timings["range_find"]["plan"] = collection.explain(
        {"meta.first_version": {"$gte": 1, "$lte": 3}}
    )["plan"]
    timings["sorted_window"]["plan"] = collection.explain(
        sort=[("meta.size", 1)]
    )["plan"]

    return {
        "benchmark": "docstore_planner",
        "verified_bit_identical": True,
        "workload": {
            "documents": documents,
            "queries_per_workload": queries,
            "indexes": collection.index_specs(),
        },
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "timings": timings,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke test)"
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_docstore.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of-N timing repeats"
    )
    args = parser.parse_args(argv)

    documents = 2000 if args.quick else 10000
    queries = 25 if args.quick else 50
    report = run_benchmark(documents, queries, args.repeats)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"workload: {report['workload']['documents']} documents, "
        f"{report['workload']['queries_per_workload']} queries per workload"
    )
    for name, row in report["timings"].items():
        print(
            f"{name:>20}: planned {row['planned_seconds']:.3f}s vs "
            f"full scan {row['full_scan_seconds']:.3f}s  "
            f"({row['speedup']:.1f}x, plan={row['plan']})"
        )
    print(f"wrote {args.out}")

    failed = False
    for gated in ("range_find", "pushdown_aggregate"):
        speedup = report["timings"][gated]["speedup"]
        if speedup is not None and speedup < 5.0:
            print(f"WARNING: {gated} speedup {speedup:.2f}x is below 5x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
