"""Ablation: the four-way value comparison of the heterogeneity score.

Section 6.3 compares every value pair four ways ({Damerau-Levenshtein,
Monge-Elkan} x {cased, lowercased}) so that case differences and token
confusions weigh less than genuine replacements.  The ablation scores the
same benign variations (case flip, token swap) and a genuine replacement
under the four-way scheme and under each single measure alone.
"""

from repro.core.heterogeneity import four_way_similarity
from repro.textsim import damerau_levenshtein_similarity, symmetric_monge_elkan

from bench_utils import write_result

PAIRS = {
    "identical": ("MARY ANN", "MARY ANN"),
    "case flip": ("MARY ANN", "Mary Ann"),
    "token swap": ("MARY ANN", "ANN MARY"),
    "typo": ("WILLIAMS", "WILLAMS"),
    "replacement": ("WILLIAMS", "GUTIERREZ"),
}


def score_all(measure):
    return {name: 1.0 - measure(left, right) for name, (left, right) in PAIRS.items()}


def test_ablation_four_way_comparison(benchmark, results_dir):
    four_way = benchmark(score_all, four_way_similarity)
    dl_only = score_all(damerau_levenshtein_similarity)
    me_only = score_all(symmetric_monge_elkan)

    lines = [f"{'variation':>12} {'four-way':>9} {'DL only':>9} {'ME only':>9}"]
    for name in PAIRS:
        lines.append(
            f"{name:>12} {four_way[name]:>9.3f} {dl_only[name]:>9.3f} "
            f"{me_only[name]:>9.3f}"
        )
    write_result(results_dir, "ablation_heterogeneity_fourway", lines)

    # The design goal: benign variations rank strictly below replacements.
    assert four_way["identical"] == 0.0
    assert four_way["case flip"] < four_way["replacement"]
    assert four_way["token swap"] < four_way["replacement"]
    assert four_way["typo"] < four_way["replacement"]
    # The four-way average softens both benign variations relative to the
    # single measure that punishes them hardest:
    assert four_way["case flip"] < dl_only["case flip"]
    assert four_way["case flip"] < me_only["case flip"]
    assert four_way["token swap"] < dl_only["token swap"]
    # Single measures fail in opposite directions: DL alone punishes token
    # swaps almost like replacements, ME alone cannot see them at all.
    assert dl_only["token swap"] > 0.5
    assert me_only["token swap"] == 0.0
    # Case-only variation still costs something (exact duplicates were
    # already removed, so it is a real difference) but far less than a
    # replacement.
    assert 0.0 < four_way["case flip"] < 0.5 * four_way["replacement"]
