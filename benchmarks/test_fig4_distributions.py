"""Figure 4: plausibility and heterogeneity distributions.

(a) cluster/pair plausibility of the NC dataset;
(b) cluster/pair heterogeneity of the NC dataset (person attributes);
(c) pair heterogeneity of Cora / Census / CDDB.
"""

import statistics

from repro.core.clusters import record_view
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.plausibility import cluster_plausibility, pair_plausibilities

from bench_utils import distribution_lines, write_result


def test_fig4a_plausibility_distribution(benchmark, bench_generator, results_dir):
    def compute():
        cluster_scores = []
        pair_scores = []
        for cluster in bench_generator.clusters():
            if len(cluster["records"]) < 2:
                continue
            pairs = pair_plausibilities(cluster)
            pair_scores.extend(pairs)
            cluster_scores.append(min(pairs))
        return cluster_scores, pair_scores

    cluster_scores, pair_scores = benchmark.pedantic(compute, rounds=1, iterations=1)

    at_one = sum(1 for s in cluster_scores if s >= 0.999) / len(cluster_scores)
    lines = [
        f"clusters scored:      {len(cluster_scores)}",
        f"avg cluster plaus.:   {statistics.mean(cluster_scores):.3f}",
        f"min cluster plaus.:   {min(cluster_scores):.3f}",
        f"share at 1.0:         {at_one:.1%}",
        "-- cluster plausibility distribution --",
    ]
    lines += distribution_lines(cluster_scores)
    lines.append("-- pair plausibility distribution --")
    lines += distribution_lines(pair_scores)
    write_result(results_dir, "fig4a_plausibility", lines)

    # Paper: avg 0.99, 92.8 % of clusters at 1.0, min 0.06.
    assert statistics.mean(cluster_scores) > 0.9
    assert at_one > 0.5
    assert min(cluster_scores) < 0.7  # the unsound tail exists


def test_fig4b_nc_heterogeneity_distribution(
    benchmark, bench_generator, bench_scorer, results_dir
):
    def compute():
        cluster_scores = []
        pair_scores = []
        for cluster in bench_generator.clusters():
            records = [record_view(r, ("person",)) for r in cluster["records"]]
            if len(records) < 2:
                continue
            pair_scores.extend(bench_scorer.pair_heterogeneities(records))
            cluster_scores.append(bench_scorer.cluster_heterogeneity(records))
        return cluster_scores, pair_scores

    cluster_scores, pair_scores = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [
        f"avg cluster heterogeneity: {statistics.mean(cluster_scores):.3f}",
        f"max cluster heterogeneity: {max(cluster_scores):.3f}",
        f"avg pair heterogeneity:    {statistics.mean(pair_scores):.3f}",
        f"max pair heterogeneity:    {max(pair_scores):.3f}",
        "-- cluster heterogeneity distribution --",
    ]
    lines += distribution_lines(cluster_scores)
    write_result(results_dir, "fig4b_nc_heterogeneity", lines)

    # Paper: the dataset is overall clean (avg cluster 0.09, pair 0.16),
    # almost no cluster is fully homogeneous, max well below 1.
    assert statistics.mean(cluster_scores) < 0.3
    assert max(cluster_scores) < 0.9
    assert statistics.mean(pair_scores) >= statistics.mean(cluster_scores) - 0.05


def test_fig4c_comparison_heterogeneity(
    benchmark, comparison_datasets, results_dir
):
    def compute():
        results = {}
        for name, dataset in comparison_datasets.items():
            representatives = [m[0] for m in dataset.clusters().values()]
            scorer = HeterogeneityScorer.from_records(representatives, dataset.attributes)
            scores = []
            for members in dataset.clusters().values():
                if len(members) > 1:
                    scores.extend(scorer.pair_heterogeneities(members))
            results[name] = scores
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = []
    for name, scores in results.items():
        lines.append(
            f"{name}: pairs={len(scores)} avg={statistics.mean(scores):.3f} "
            f"max={max(scores):.3f}"
        )
        lines += distribution_lines(scores)
        lines.append("")
    write_result(results_dir, "fig4c_comparison_heterogeneity", lines)

    # Paper's qualitative shape: every comparison set is dirtier than zero,
    # none is anywhere near fully heterogeneous, Census is the cleanest.
    averages = {name: statistics.mean(scores) for name, scores in results.items()}
    assert all(0.02 < avg < 0.4 for avg in averages.values())
    assert averages["Census"] < averages["CDDB"]
