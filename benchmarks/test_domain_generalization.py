"""Extension bench: the pipeline on the company-register domain.

Checks that the paper's headline properties transfer to a second domain
(Section 8 future work): heavy snapshot-overlap compression, a plausibility
score that separates reused-id clusters, and heterogeneity-bounded
customisation.
"""

import statistics

from repro.core import RemovalLevel, TestDataGenerator, customize
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.versioning import UpdateProcess
from repro.histcorpus import (
    COMPANY_PROFILE,
    CompanyRegisterConfig,
    CompanyRegisterSimulator,
    score_company_cluster,
)
from repro.histcorpus.plausibility import company_cluster_plausibility

from bench_utils import write_result


def run_company_pipeline():
    config = CompanyRegisterConfig(
        initial_companies=400,
        years=8,
        seed=13,
        id_reuse_rate=0.3,
        dissolution_rate=0.05,
    )
    simulator = CompanyRegisterSimulator(config)
    snapshots = list(simulator.run())
    generator = TestDataGenerator(
        removal=RemovalLevel.TRIMMED, profile=COMPANY_PROFILE
    )
    UpdateProcess(generator, plausibility_fn=score_company_cluster).run(snapshots)
    return simulator, snapshots, generator


def test_company_register_pipeline(benchmark, results_dir):
    simulator, snapshots, generator = benchmark.pedantic(
        run_company_pipeline, rounds=1, iterations=1
    )
    raw_rows = sum(len(s) for s in snapshots)

    sound, unsound = [], []
    for cluster in generator.clusters():
        if len(cluster["records"]) < 2:
            continue
        score = company_cluster_plausibility(cluster)
        (unsound if cluster["ncid"] in simulator.unsound_ids else sound).append(score)

    attributes = tuple(
        a for a in COMPANY_PROFILE.primary_attributes() if a != "reg_id"
    )
    scorer = HeterogeneityScorer.from_clusters(
        generator.clusters(), ("company",), attributes
    )
    clean = customize(generator, 0.0, 0.15, target_clusters=40,
                      groups=("company",), scorer=scorer, name="clean")
    dirty = customize(generator, 0.25, 1.0, target_clusters=40,
                      groups=("company",), scorer=scorer, name="dirty")
    clean_het, _ = clean.heterogeneity_stats(scorer)
    dirty_het, _ = dirty.heterogeneity_stats(scorer)

    lines = [
        f"raw snapshot rows:      {raw_rows}",
        f"dataset records:        {generator.record_count} "
        f"({1 - generator.record_count / raw_rows:.0%} compressed away)",
        f"clusters:               {generator.cluster_count}",
        f"sound plausibility:     {statistics.mean(sound):.3f}",
        f"unsound plausibility:   {statistics.mean(unsound):.3f} "
        f"({len(unsound)} reused-id clusters)",
        f"customised clean het:   {clean_het:.3f} ({clean.record_count} records)",
        f"customised dirty het:   {dirty_het:.3f} ({dirty.record_count} records)",
    ]
    write_result(results_dir, "domain_generalization_companies", lines)

    # The voter-register properties transfer to the company domain:
    assert generator.record_count < 0.5 * raw_rows
    assert statistics.mean(sound) - statistics.mean(unsound) > 0.25
    assert dirty_het > clean_het
