"""LSH blocking benchmark: sub-quadratic candidates vs Sorted Neighborhood.

Builds a *typo-heavy* labeled workload at two or three register sizes —
one snapshot (no temporal duplicates), then half of all clusters get one
synthetic duplicate with ~1.5 typo/OCR/phonetic corruptions via the
pollution Augmenter — and runs candidate generation both ways:

* ``snm`` — the paper's multi-pass Sorted Neighborhood (5 entropy-ranked
  keys, window 20), the Section 6.5 baseline;
* ``lsh`` — the MinHash–LSH pass (:mod:`repro.dedup.lsh`) with the
  TF-IDF cosine prefilter (:mod:`repro.dedup.embeddings`) thinning
  background band collisions.

For every size the report records candidate-pair counts, gold-pair
recall and wall-clock; across sizes it fits log–log growth exponents.
Three gates (exit code 1 when any fails):

* **sub-quadratic**: the LSH candidate-pair exponent between the
  smallest and largest register stays below 2.0 (SNM's window union is
  ~linear but recall-blind; naive all-pairs is the quadratic ceiling);
* **recall at budget**: at the largest size LSH reaches at least 0.90 of
  SNM's gold-pair recall while emitting at most 0.5x SNM's candidates;
* **determinism**: ``repro.sanitizers.determinism_check`` passes for the
  full LSH pass at (workers, shards) = (1,1)/(2,4)/(4,8).

Usage::

    PYTHONPATH=src python benchmarks/lsh_bench.py --quick --out BENCH_lsh.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Set

from repro.core import RemovalLevel, TestDataGenerator, customize
from repro.core.augment import AugmentationPlan, Augmenter
from repro.dedup import (
    lsh_candidates,
    pick_blocking_keys,
    sorted_neighborhood_candidates,
)
from repro.sanitizers import determinism_check
from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import PERSON_ATTRIBUTES

SEED = 20210323

#: Initial register sizes (voters simulated; records come out smaller
#: after trimming, larger after augmentation).
QUICK_SIZES = (300, 600, 1200)
FULL_SIZES = (600, 1200, 2400)

#: SNM baseline: the Section 6.5 configuration.
SNM_PASSES = 5
SNM_WINDOW = 20

#: LSH configuration under test (the library defaults plus the cosine
#: prefilter; see docs/performance.md Layer 7 for the tuning table).
LSH_BANDS = 16
LSH_ROWS = 4
LSH_NGRAM = 3
COSINE_FLOOR = 0.35

#: Gates.
MAX_GROWTH_EXPONENT = 2.0
MIN_RECALL_RATIO = 0.90
MAX_PAIR_BUDGET = 0.5


def _build_dataset(initial_voters: int):
    """One-snapshot register + typo-heavy synthetic duplicates, labeled."""
    config = SimulationConfig(
        initial_voters=initial_voters,
        years=1,
        snapshots_per_year=1,
        seed=SEED,
    )
    simulator = VoterRegisterSimulator(config)
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(list(simulator.run()))
    plan = AugmentationPlan(
        share_of_clusters=0.5,
        duplicates_per_cluster=1,
        errors_per_duplicate=1.5,
        corruptor_weights={"typo": 4.0, "ocr": 1.0, "phonetic": 1.0},
        seed=SEED,
    )
    Augmenter(generator, plan).augment()
    return customize(
        generator, 0.0, 1.0, target_clusters=10**9, name="lshbench"
    )


def _timed(fn, repeats: int = 1) -> tuple:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _recall(keys: Set[int], gold, record_count: int) -> float:
    if not gold:
        return 1.0
    found = sum(
        1
        for left, right in gold
        if left * record_count + right in keys
    )
    return found / len(gold)


def _growth_exponent(sizes: List[Dict], field: str) -> Optional[float]:
    """Log–log slope of ``field`` between the smallest and largest size."""
    first, last = sizes[0], sizes[-1]
    if first["records"] == last["records"]:
        return None
    if not first[field] or not last[field]:
        return None
    return math.log(last[field] / first[field]) / math.log(
        last["records"] / first["records"]
    )


def run_benchmark(initial_sizes: Sequence[int], repeats: int) -> Dict:
    attributes = [a for a in PERSON_ATTRIBUTES if a != "ncid"]
    sizes: List[Dict] = []
    for initial_voters in initial_sizes:
        dataset = _build_dataset(initial_voters)
        records, gold = dataset.records, dataset.gold_pairs
        record_count = len(records)
        snm_keys = pick_blocking_keys(records, attributes, SNM_PASSES)

        snm_seconds, (snm_pairs, _snm_stats) = _timed(
            lambda r=records, k=snm_keys: sorted_neighborhood_candidates(
                r, k, SNM_WINDOW
            ),
            repeats,
        )
        lsh_seconds, (lsh_pairs, lsh_stats) = _timed(
            lambda r=records: lsh_candidates(
                r,
                attributes,
                bands=LSH_BANDS,
                rows=LSH_ROWS,
                ngram=LSH_NGRAM,
                cosine_floor=COSINE_FLOOR,
            ),
            repeats,
        )
        buckets = lsh_stats.passes[0].buckets
        sizes.append(
            {
                "initial_voters": initial_voters,
                "records": record_count,
                "gold_pairs": len(gold),
                "snm": {
                    "candidate_pairs": len(snm_pairs),
                    "recall": _recall(snm_pairs, gold, record_count),
                    "seconds": snm_seconds,
                },
                "lsh": {
                    "candidate_pairs": len(lsh_pairs),
                    "recall": _recall(lsh_pairs, gold, record_count),
                    "seconds": lsh_seconds,
                    "pairs_emitted": lsh_stats.passes[0].pairs_emitted,
                    "pairs_filtered": buckets.pairs_filtered,
                    "buckets_total": buckets.buckets_total,
                    "buckets_skipped": buckets.buckets_skipped,
                    "pairs_dropped": buckets.pairs_dropped,
                    "max_bucket": buckets.max_bucket,
                },
                "pair_budget_ratio": (
                    len(lsh_pairs) / len(snm_pairs) if snm_pairs else None
                ),
            }
        )

    # flatten for the exponent fit
    flat = [
        {
            "records": row["records"],
            "snm_pairs": row["snm"]["candidate_pairs"],
            "lsh_pairs": row["lsh"]["candidate_pairs"],
            "lsh_seconds": row["lsh"]["seconds"],
        }
        for row in sizes
    ]
    exponents = {
        "snm_candidate_pairs": _growth_exponent(flat, "snm_pairs"),
        "lsh_candidate_pairs": _growth_exponent(flat, "lsh_pairs"),
        "lsh_seconds": _growth_exponent(flat, "lsh_seconds"),
    }

    # determinism gate on the smallest register (cheapest full check)
    check_dataset = _build_dataset(initial_sizes[0])
    report = determinism_check(
        lambda workers, shards: sorted(
            lsh_candidates(
                check_dataset.records,
                attributes,
                bands=LSH_BANDS,
                rows=LSH_ROWS,
                ngram=LSH_NGRAM,
                cosine_floor=COSINE_FLOOR,
                shards=shards,
                max_workers=workers,
            )[0]
        ),
        label="lsh candidates",
        raise_on_divergence=False,
    )

    largest = sizes[-1]
    gates = {
        "subquadratic_candidates": {
            "exponent": exponents["lsh_candidate_pairs"],
            "limit": MAX_GROWTH_EXPONENT,
            "passed": (
                exponents["lsh_candidate_pairs"] is not None
                and exponents["lsh_candidate_pairs"] < MAX_GROWTH_EXPONENT
            ),
        },
        "recall_at_budget": {
            "recall_ratio": (
                largest["lsh"]["recall"] / largest["snm"]["recall"]
                if largest["snm"]["recall"]
                else None
            ),
            "min_recall_ratio": MIN_RECALL_RATIO,
            "pair_budget_ratio": largest["pair_budget_ratio"],
            "max_pair_budget": MAX_PAIR_BUDGET,
            "passed": (
                largest["snm"]["recall"] > 0
                and largest["lsh"]["recall"] / largest["snm"]["recall"]
                >= MIN_RECALL_RATIO
                and largest["pair_budget_ratio"] is not None
                and largest["pair_budget_ratio"] <= MAX_PAIR_BUDGET
            ),
        },
        "determinism": {
            "configs": [list(pair) for pair in report.configs],
            "divergences": list(report.divergences),
            "passed": report.consistent,
        },
    }

    return {
        "benchmark": "lsh_blocking",
        "workload": {
            "kind": "typo_heavy",
            "seed": SEED,
            "initial_voters": list(initial_sizes),
            "augmentation": {
                "share_of_clusters": 0.5,
                "duplicates_per_cluster": 1,
                "errors_per_duplicate": 1.5,
                "corruptors": ["typo", "ocr", "phonetic"],
            },
            "snm": {"passes": SNM_PASSES, "window": SNM_WINDOW},
            "lsh": {
                "bands": LSH_BANDS,
                "rows": LSH_ROWS,
                "ngram": LSH_NGRAM,
                "cosine_floor": COSINE_FLOOR,
            },
        },
        "sizes": sizes,
        "growth_exponents": exponents,
        "gates": gates,
        "environment": {
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke test)"
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_lsh.json", help="output JSON path"
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing repeats"
    )
    args = parser.parse_args(argv)

    initial_sizes = QUICK_SIZES if args.quick else FULL_SIZES
    report = run_benchmark(initial_sizes, args.repeats)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    for row in report["sizes"]:
        print(
            f"n={row['records']:>5}  "
            f"snm {row['snm']['candidate_pairs']:>7} pairs "
            f"R={row['snm']['recall']:.3f} {row['snm']['seconds']:.3f}s | "
            f"lsh {row['lsh']['candidate_pairs']:>7} pairs "
            f"R={row['lsh']['recall']:.3f} {row['lsh']['seconds']:.3f}s | "
            f"budget {row['pair_budget_ratio']:.2f}x"
        )
    exponents = report["growth_exponents"]
    print(
        f"growth exponents: snm {exponents['snm_candidate_pairs']:.2f}, "
        f"lsh {exponents['lsh_candidate_pairs']:.2f} "
        f"(wall {exponents['lsh_seconds']:.2f})"
    )
    print(f"wrote {args.out}")

    failed = [
        name for name, gate in report["gates"].items() if not gate["passed"]
    ]
    for name in failed:
        print(f"GATE FAILED: {name}: {report['gates'][name]}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
