"""Figure 1: cluster-size distributions.

(a) records per cluster within a single snapshot;
(b) clusters per cluster size over the full union (all attributes vs
    person attributes only).
"""

import collections

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.statistics import cluster_size_histogram, size_histogram_of_sizes

from bench_utils import histogram_lines, write_result


def test_fig1a_single_snapshot_sizes(benchmark, bench_snapshots, results_dir):
    last = bench_snapshots[-1]

    def single_snapshot_histogram():
        counts = collections.Counter(
            record["ncid"].strip() for record in last.records
        )
        return size_histogram_of_sizes(counts.values())

    histogram = benchmark(single_snapshot_histogram)
    lines = histogram_lines(histogram, "cluster size")
    total_records = sum(size * count for size, count in histogram.items())
    average = total_records / sum(histogram.values())
    lines.append(f"avg records per object: {average:.2f}")
    write_result(results_dir, "fig1a_single_snapshot_sizes", lines)

    # Paper: a single snapshot has small clusters (avg 1.18); ours likewise.
    assert histogram[1] > sum(histogram.values()) / 2
    assert average < 2.0


def test_fig1b_union_cluster_sizes(benchmark, bench_snapshots, bench_generator, results_dir):
    all_attrs_histogram = benchmark(cluster_size_histogram, bench_generator)

    person = TestDataGenerator(removal=RemovalLevel.PERSON)
    person.import_snapshots(bench_snapshots)
    person_histogram = cluster_size_histogram(person)

    lines = ["-- all attributes (trimming level) --"]
    lines += histogram_lines(all_attrs_histogram, "cluster size")
    lines.append("-- person attributes only --")
    lines += histogram_lines(person_histogram, "cluster size")
    write_result(results_dir, "fig1b_union_cluster_sizes", lines)

    # Paper: person-level removal shifts the distribution toward smaller
    # clusters, but the union remains far above single-snapshot sizes.
    avg_all = bench_generator.record_count / bench_generator.cluster_count
    avg_person = person.record_count / person.cluster_count
    assert avg_all > avg_person > 1.0
    assert max(all_attrs_histogram) >= max(person_histogram)
