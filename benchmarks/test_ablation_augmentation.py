"""Ablation: pollution augmentation intensity (Section 8 future work).

Sweeps the augmentation plan's error intensity and measures how the
synthetic duplicate pairs' difficulty (average heterogeneity and similarity
to their source record) scales — the knob the DaPo combination adds on top
of the organic data.
"""

import statistics

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.augment import AugmentationPlan, Augmenter, strip_synthetic
from repro.core.clusters import record_view
from repro.core.heterogeneity import HeterogeneityScorer
from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import PERSON_ATTRIBUTES

from bench_utils import write_result

INTENSITIES = (0.5, 1.5, 3.0, 6.0)


def build_generator():
    config = SimulationConfig(initial_voters=400, years=4, seed=23)
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(VoterRegisterSimulator(config).run())
    return generator


def synthetic_difficulty(generator, scorer):
    """Average heterogeneity between synthetic records and their sources."""
    scores = []
    for cluster in generator.clusters():
        for record in cluster["records"]:
            if not record.get("synthetic"):
                continue
            source = cluster["records"][record["augmented_from"]]
            scores.append(
                scorer.pair_heterogeneity(
                    record_view(source, ("person",)),
                    record_view(record, ("person",)),
                )
            )
    return statistics.mean(scores) if scores else 0.0


def test_ablation_augmentation_intensity(benchmark, results_dir):
    attributes = tuple(a for a in PERSON_ATTRIBUTES if a != "ncid")

    def run_sweep():
        results = {}
        for intensity in INTENSITIES:
            generator = build_generator()
            scorer = HeterogeneityScorer.from_clusters(
                generator.clusters(), ("person",), attributes
            )
            organic = generator.record_count
            plan = AugmentationPlan(
                share_of_clusters=1.0,
                duplicates_per_cluster=1,
                errors_per_duplicate=intensity,
                seed=int(intensity * 10),
            )
            stats = Augmenter(generator, plan).augment()
            results[intensity] = (
                stats.records_added,
                synthetic_difficulty(generator, scorer),
                sum(len(strip_synthetic(c)) for c in generator.clusters()) == organic,
            )
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [f"{'errors/dup':>10} {'added':>7} {'syn difficulty':>15} {'reversible':>11}"]
    for intensity in INTENSITIES:
        added, difficulty, reversible = results[intensity]
        lines.append(
            f"{intensity:>10.1f} {added:>7} {difficulty:>15.3f} {str(reversible):>11}"
        )
    write_result(results_dir, "ablation_augmentation", lines)

    # Difficulty scales monotonically with the injected error intensity...
    difficulties = [results[i][1] for i in INTENSITIES]
    assert difficulties == sorted(difficulties)
    assert difficulties[-1] > 2 * difficulties[0]
    # ...and the augmentation is always reversible via provenance.
    assert all(results[i][2] for i in INTENSITIES)
