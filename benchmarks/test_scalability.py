"""Scalability: import throughput across register sizes.

The paper's core claim is that the historical approach scales where
manual labeling and pollution tools do not (Sections 1 and 7).  The
pipeline here is streaming with O(cluster) state, so throughput must stay
flat (and total time linear) as the register grows — this bench measures
rows/s at three scales and asserts near-linear scaling.
"""

import time

from repro.core import RemovalLevel, TestDataGenerator
from repro.votersim import SimulationConfig, VoterRegisterSimulator

from bench_utils import write_result

SCALES = (300, 900, 2700)


def run_scale(voters: int):
    config = SimulationConfig(initial_voters=voters, years=5, seed=31)
    snapshots = list(VoterRegisterSimulator(config).run())
    rows = sum(len(s) for s in snapshots)
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    start = time.perf_counter()
    generator.import_snapshots(snapshots)
    elapsed = time.perf_counter() - start
    return rows, elapsed, generator.record_count


def test_import_scales_linearly(benchmark, results_dir):
    def sweep():
        return {voters: run_scale(voters) for voters in SCALES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'voters':>8} {'rows':>8} {'seconds':>9} {'rows/s':>10} {'records':>8}"]
    throughputs = []
    for voters in SCALES:
        rows, elapsed, records = results[voters]
        rate = rows / elapsed
        throughputs.append(rate)
        lines.append(
            f"{voters:>8} {rows:>8} {elapsed:>9.2f} {rate:>10,.0f} {records:>8}"
        )
    write_result(results_dir, "scalability_import", lines)

    # Throughput at 9x scale stays within 3x of the smallest scale —
    # a loose bound that still rules out quadratic behaviour (which would
    # cost ~9x throughput here).
    assert min(throughputs) > max(throughputs) / 3.0
    # And absolute throughput stays in the tens of thousands of rows/s.
    assert min(throughputs) > 10_000
