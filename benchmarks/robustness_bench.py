"""Robustness benchmark: fault sweeps, scrub throughput, compaction payoff.

Exercises the storage robustness layer (``repro.faults``,
``repro.docstore.scrub``, WAL rotation — see ``docs/durability.md``):

* ``fault_sweep`` — every failure mode of the fault model (``crash``,
  ``torn``, ``eio``, ``enospc``, ``partial_fsync``) injected at every
  filesystem operation of a sharded generate→commit→checkpoint workload.
  Each point must leave the store *recovered or quarantined, never
  silently wrong*: the reopened (possibly degraded) state has to equal
  the healthy-shard projection of a committed state.  Any other outcome
  aborts the benchmark.
* ``scrub`` — offline :func:`repro.docstore.scrub_database` throughput
  (documents and bytes per second) over a checkpointed register of
  ``--documents`` voter-shaped documents.
* ``compaction`` — replay time of an update-heavy WAL before and after
  a checkpoint rotates it away.  The reduction must be at least 3x (the
  whole point of folding N historical operations into one snapshot row).

Results are written as machine-readable JSON for CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/robustness_bench.py --quick --out BENCH_robustness.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import faults
from repro.docstore import (
    DegradedReadWarning,
    DurableDatabase,
    scrub_database,
    shard_key_shard,
)

FAULT_MODES = ("crash", "torn", "eio", "enospc", "partial_fsync")

#: Shard-key values covering every shard of the 3-way sweep workload.
_SWEEP_IDS = ("AA1", "AA2", "AA7", "AA3", "AA5", "AA9")


def _document(n: int) -> dict:
    return {
        "_id": f"NC{n:07d}",
        "ncid": f"NC{n:07d}",
        "records": [
            {"person": {"last_name": f"NAME{n % 97}", "first_name": "JO"},
             "first_version": 1}
        ],
    }


# ------------------------------------------------------------- fault sweep


def _sweep_workload(directory: Path, mark=None) -> None:
    database = DurableDatabase(directory, shards=3)
    docs = database["docs"]
    for index, ncid in enumerate(_SWEEP_IDS):
        docs.insert_one({"_id": ncid, "ncid": ncid, "n": index})
    database.commit()
    if mark:
        mark(database)
    docs.update_one({"_id": "AA1"}, {"$set": {"n": 100}})
    database.checkpoint()
    if mark:
        mark(database)
    docs.delete_many({"_id": "AA2"})
    docs.insert_one({"_id": "BA1", "ncid": "BA1", "n": 7})
    database.commit()
    if mark:
        mark(database)
    database.close()


def _doc_state(database) -> Dict[str, List[str]]:
    state = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedReadWarning)
        for name in database.collection_names():
            state[name] = sorted(
                json.dumps(doc, sort_keys=True)
                for doc in database[name].all(allow_degraded=True)
            )
    return state


def _projection(state, quarantined, shards=3):
    projected = {}
    for name, blobs in state.items():
        dark = quarantined.get(name, set())
        projected[name] = [
            blob for blob in blobs
            if shard_key_shard(str(json.loads(blob).get("ncid")), shards)
            not in dark
        ]
    return projected


def bench_fault_sweep(directory: Path) -> Dict:
    states: List[dict] = [{}]
    _sweep_workload(
        directory / "reference", mark=lambda db: states.append(_doc_state(db))
    )
    total = faults.count_ops(lambda: _sweep_workload(directory / "count"))
    rows = []
    start_all = time.perf_counter()
    for mode in FAULT_MODES:
        survived = 0
        quarantined_points = 0
        start = time.perf_counter()
        for plan in faults.fault_points(total, mode=mode):
            target = directory / f"{mode}-{plan.fail_at}"
            with faults.inject(plan):
                try:
                    _sweep_workload(target)
                except (faults.CrashError, OSError):
                    pass
            reopened = DurableDatabase(target, shards=3)
            quarantined = {
                name: set(reopened[name].quarantined_shards)
                for name in reopened.collection_names()
                if reopened[name].quarantined_shards
            }
            actual = _doc_state(reopened)
            reopened.close(commit=False)
            shutil.rmtree(target)
            if any(actual == _projection(s, quarantined) for s in states):
                survived += 1
                quarantined_points += bool(quarantined)
            else:
                raise SystemExit(
                    f"FATAL: silent corruption at {mode} point "
                    f"{plan.fail_at} ({plan.failed_op})"
                )
        rows.append({
            "mode": mode,
            "points": total,
            "survived": survived,
            "quarantined_points": quarantined_points,
            "seconds": time.perf_counter() - start,
        })
    return {
        "points_per_mode": total,
        "total_points": total * len(FAULT_MODES),
        "silent_failures": 0,
        "seconds": time.perf_counter() - start_all,
        "modes": rows,
    }


# ------------------------------------------------------------------- scrub


def bench_scrub(directory: Path, documents: int) -> Dict:
    store = directory / "scrub-register"
    database = DurableDatabase(store, shards=4)
    collection = database.get_collection("clusters")
    for n in range(documents):
        collection.insert_one(_document(n))
    database.checkpoint()
    database.close()

    start = time.perf_counter()
    report = scrub_database(store)
    seconds = time.perf_counter() - start
    if not report.ok:
        raise SystemExit("FATAL: scrub found problems in a pristine register")
    shutil.rmtree(store)
    return {
        "documents": documents,
        "files_checked": report.files_checked,
        "bytes_checked": report.bytes_checked,
        "seconds": seconds,
        "documents_per_second": documents / seconds if seconds else None,
        "mb_per_second": (
            report.bytes_checked / seconds / 1e6 if seconds else None
        ),
    }


# -------------------------------------------------------------- compaction


def bench_compaction(directory: Path, documents: int, updates: int) -> Dict:
    """Replay an update-heavy WAL, checkpoint it away, replay again."""
    store = directory / "compaction"
    database = DurableDatabase(store)
    collection = database.get_collection("clusters")
    for n in range(documents):
        collection.insert_one(_document(n))
    for round_index in range(updates):
        for n in range(documents):
            collection.update_one(
                {"_id": f"NC{n:07d}"}, {"$set": {"round": round_index}}
            )
        database.commit()
    database.close()

    start = time.perf_counter()
    replayed = DurableDatabase(store)
    replay_seconds = time.perf_counter() - start
    count_before = replayed["clusters"].count_documents()
    replayed.checkpoint()  # fold (1 + updates) ops/doc into one snapshot row
    replayed.close()

    start = time.perf_counter()
    compacted = DurableDatabase(store)
    compacted_seconds = time.perf_counter() - start
    count_after = compacted["clusters"].count_documents()
    compacted.close(commit=False)
    if count_before != documents or count_after != documents:
        raise SystemExit(
            f"FATAL: compaction changed contents "
            f"(before={count_before}, after={count_after}, want={documents})"
        )
    shutil.rmtree(store)
    return {
        "documents": documents,
        "updates_per_document": updates,
        "replay_seconds_before": replay_seconds,
        "replay_seconds_after": compacted_seconds,
        "reduction": (
            replay_seconds / compacted_seconds if compacted_seconds else None
        ),
    }


def run_benchmark(documents: int, updates: int) -> Dict:
    scratch = Path(tempfile.mkdtemp(prefix="robustness-bench-"))
    try:
        report = {
            "benchmark": "docstore_robustness",
            "workload": {
                "scrub_documents": documents,
                "compaction_documents": max(documents // 20, 200),
                "updates_per_document": updates,
                "fault_modes": list(FAULT_MODES),
            },
            "environment": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count(),
            },
            "timings": {
                "fault_sweep": bench_fault_sweep(scratch / "sweep"),
                "scrub": bench_scrub(scratch, documents),
                "compaction": bench_compaction(
                    scratch, max(documents // 20, 200), updates
                ),
            },
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke test)"
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_robustness.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    documents = 20000 if args.quick else 100000
    updates = 9
    report = run_benchmark(documents, updates)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    sweep = report["timings"]["fault_sweep"]
    print(
        f"fault sweep: {sweep['total_points']} injection points "
        f"({sweep['points_per_mode']} x {len(FAULT_MODES)} modes), "
        f"0 silent failures, {sweep['seconds']:.1f}s"
    )
    for row in sweep["modes"]:
        print(
            f"{row['mode']:>22}: {row['survived']}/{row['points']} recovered "
            f"({row['quarantined_points']} via quarantine)"
        )
    scrub = report["timings"]["scrub"]
    print(
        f"{'scrub':>22}: {scrub['documents']:,} docs in {scrub['seconds']:.2f}s "
        f"({scrub['documents_per_second']:,.0f} docs/s, "
        f"{scrub['mb_per_second']:.1f} MB/s)"
    )
    compaction = report["timings"]["compaction"]
    print(
        f"{'compaction':>22}: replay {compaction['replay_seconds_before']:.3f}s "
        f"-> {compaction['replay_seconds_after']:.3f}s "
        f"({compaction['reduction']:.1f}x less replay work)"
    )
    if compaction["reduction"] is not None and compaction["reduction"] < 3.0:
        print(
            f"FAIL: compaction replay reduction {compaction['reduction']:.2f}x "
            f"< 3x gate"
        )
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
