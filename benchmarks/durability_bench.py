"""Durability benchmark: WAL append throughput, fsync batching, recovery time.

Measures the three costs of the write-ahead-logged store
(:class:`repro.docstore.DurableDatabase`, see ``docs/durability.md``):

* ``wal_append`` — staged-operation throughput for a sweep of
  ``fsync_batch`` settings (0 = fsync only at commits, 1 = every record,
  N = every N records), plus the plain in-memory insert rate as the
  no-durability baseline;
* ``commit`` — cost of sealing an epoch (marker fsync + atomic rewrite of
  the ``COMMITTED`` file);
* ``recovery`` — time to reopen a store whose state lives entirely in the
  WAL (replay) versus one that was checkpointed (snapshot load), for the
  same logical contents.

Results are written as machine-readable JSON (timings in seconds, rates in
operations/second, environment info) for CI artifact upload and regression
tracking.

Usage::

    PYTHONPATH=src python benchmarks/durability_bench.py --quick --out BENCH_durability.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.docstore import Database, DurableDatabase


def _document(n: int) -> dict:
    return {
        "_id": f"NC{n:07d}",
        "ncid": f"NC{n:07d}",
        "records": [
            {"person": {"last_name": f"NAME{n % 97}", "first_name": "JO"},
             "first_version": 1}
        ],
    }


def bench_appends(directory: Path, documents: int, fsync_batch: int) -> Dict:
    """Insert ``documents`` staged operations; one commit at the end."""
    target = directory / f"batch-{fsync_batch}"
    database = DurableDatabase(target, fsync_batch=fsync_batch)
    collection = database.get_collection("clusters")
    start = time.perf_counter()
    for n in range(documents):
        collection.insert_one(_document(n))
    append_seconds = time.perf_counter() - start
    start = time.perf_counter()
    database.commit()
    commit_seconds = time.perf_counter() - start
    database.close()
    wal_bytes = (target / "clusters.wal").stat().st_size
    shutil.rmtree(target)
    return {
        "fsync_batch": fsync_batch,
        "append_seconds": append_seconds,
        "appends_per_second": documents / append_seconds if append_seconds else None,
        "commit_seconds": commit_seconds,
        "wal_bytes": wal_bytes,
    }


def bench_in_memory(documents: int) -> Dict:
    """The no-durability baseline: plain in-memory inserts."""
    database = Database("bench")
    collection = database.get_collection("clusters")
    start = time.perf_counter()
    for n in range(documents):
        collection.insert_one(_document(n))
    seconds = time.perf_counter() - start
    return {
        "append_seconds": seconds,
        "appends_per_second": documents / seconds if seconds else None,
    }


def bench_recovery(directory: Path, documents: int) -> Dict:
    """Reopen time: WAL replay vs checkpointed snapshot, same contents."""
    wal_store = directory / "recover-wal"
    database = DurableDatabase(wal_store)
    collection = database.get_collection("clusters")
    for n in range(documents):
        collection.insert_one(_document(n))
    database.commit()
    database.close()

    snap_store = directory / "recover-snap"
    database = DurableDatabase(snap_store)
    collection = database.get_collection("clusters")
    for n in range(documents):
        collection.insert_one(_document(n))
    database.checkpoint()
    database.close()

    start = time.perf_counter()
    replayed = DurableDatabase(wal_store)
    replay_seconds = time.perf_counter() - start
    replay_count = replayed["clusters"].count_documents()
    replayed.close(commit=False)

    start = time.perf_counter()
    snapshotted = DurableDatabase(snap_store)
    snapshot_seconds = time.perf_counter() - start
    snapshot_count = snapshotted["clusters"].count_documents()
    snapshotted.close(commit=False)

    if replay_count != documents or snapshot_count != documents:
        raise SystemExit(
            f"FATAL: recovery lost documents "
            f"(wal={replay_count}, snapshot={snapshot_count}, want={documents})"
        )
    shutil.rmtree(wal_store)
    shutil.rmtree(snap_store)
    return {
        "documents": documents,
        "wal_replay_seconds": replay_seconds,
        "snapshot_load_seconds": snapshot_seconds,
        "documents_per_second_replay": (
            documents / replay_seconds if replay_seconds else None
        ),
    }


def run_benchmark(documents: int, fsync_batches: Sequence[int]) -> Dict:
    scratch = Path(tempfile.mkdtemp(prefix="durability-bench-"))
    try:
        appends = [bench_appends(scratch, documents, batch) for batch in fsync_batches]
        report = {
            "benchmark": "docstore_durability",
            "workload": {
                "documents": documents,
                "fsync_batches": list(fsync_batches),
            },
            "environment": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count(),
            },
            "timings": {
                "in_memory_baseline": bench_in_memory(documents),
                "wal_append": appends,
                "recovery": bench_recovery(scratch, documents),
            },
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke test)"
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_durability.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    documents = 2000 if args.quick else 20000
    fsync_batches = (0, 1, 8, 64)
    report = run_benchmark(documents, fsync_batches)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    baseline = report["timings"]["in_memory_baseline"]["appends_per_second"]
    print(f"workload: {documents} documents per store")
    print(f"{'in-memory baseline':>22}: {baseline:,.0f} inserts/s")
    for row in report["timings"]["wal_append"]:
        print(
            f"{'fsync_batch=' + str(row['fsync_batch']):>22}: "
            f"{row['appends_per_second']:,.0f} appends/s, "
            f"commit {row['commit_seconds'] * 1000:.1f}ms, "
            f"wal {row['wal_bytes'] / 1024:.0f}KiB"
        )
    recovery = report["timings"]["recovery"]
    print(
        f"{'recovery':>22}: WAL replay {recovery['wal_replay_seconds']:.3f}s vs "
        f"snapshot load {recovery['snapshot_load_seconds']:.3f}s"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
