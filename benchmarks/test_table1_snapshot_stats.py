"""Table 1: per-year snapshot statistics (new records / new objects).

Regenerates the paper's Table 1 on the simulated register and benchmarks
the snapshot import throughput that produces it.
"""

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.statistics import snapshot_year_stats

from bench_utils import write_result


def import_all(snapshots):
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(snapshots)
    return generator


def test_table1_snapshot_year_stats(benchmark, bench_snapshots, results_dir):
    generator = benchmark(import_all, bench_snapshots)

    rows = snapshot_year_stats(generator.import_stats)
    lines = [
        f"{'year':>5} {'#snaps':>6} {'total':>8} {'new rec':>8} "
        f"{'new obj':>8} {'rec rate':>9} {'obj rate':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.year:>5} {row.snapshots:>6} {row.total_records:>8} "
            f"{row.new_records:>8} {row.new_objects:>8} "
            f"{row.new_record_rate:>8.1%} {row.new_object_rate:>8.1%}"
        )
    total_rows = sum(row.total_records for row in rows)
    total_new = sum(row.new_records for row in rows)
    total_objects = sum(row.new_objects for row in rows)
    lines.append(
        f"{'total':>5} {sum(r.snapshots for r in rows):>6} {total_rows:>8} "
        f"{total_new:>8} {total_objects:>8} {total_new / total_rows:>8.1%} "
        f"{total_objects / total_new:>8.1%}"
    )
    records_per_second = total_rows / benchmark.stats["mean"]
    lines.append(f"import throughput: {records_per_second:,.0f} rows/s")
    write_result(results_dir, "table1_snapshot_stats", lines)

    # Shape checks mirroring the paper's observations (Section 4):
    first = rows[0]
    assert first.new_record_rate > 0.5  # first year dominates
    assert all(row.new_records > 0 for row in rows)  # every year contributes
    # format-drift years spike the new-record rate (paper: 2012/2018)
    later_rates = [row.new_record_rate for row in rows[1:]]
    assert max(later_rates) > 2 * min(later_rates)
