"""Figure 5: F1 vs similarity threshold for three measures on six datasets.

Measures (Section 6.5): Monge-Elkan/Damerau-Levenshtein (hybrid),
Jaro-Winkler (sequential) and trigram Jaccard (token-based).  Datasets:
NC1/NC2/NC3 (customised) and Cora/Census/CDDB (comparison).  Blocking is a
multi-pass Sorted Neighborhood over the five most unique attributes with
window 20, weights are entropies over all records.
"""

import pytest

from repro.dedup import (
    RecordMatcher,
    best_f1,
    evaluate_thresholds,
    multipass_sorted_neighborhood,
    pick_blocking_keys,
    score_candidates,
)
from repro.textsim import JaroWinkler, MongeElkan, QgramJaccard
from repro.votersim.schema import PERSON_ATTRIBUTES

from bench_utils import write_result

MEASURES = {
    "ME/Lev": MongeElkan,
    "JaroWinkler": JaroWinkler,
    "Jaccard3": QgramJaccard,
}

THRESHOLDS = [t / 20 for t in range(4, 20)]  # 0.20 .. 0.95

NC_NAME_ATTRIBUTES = ("first_name", "midl_name", "last_name")


def run_detection(records, gold_pairs, attributes, name_attributes):
    """All three measures on one dataset -> {measure: [EvaluationPoint]}."""
    keys = pick_blocking_keys(records, attributes, 5)
    candidates = multipass_sorted_neighborhood(records, keys, window=20)
    curves = {}
    for label, measure_cls in MEASURES.items():
        matcher = RecordMatcher.from_records(
            records, attributes, measure_cls(), name_attributes
        )
        similarities = score_candidates(records, candidates, matcher)
        curves[label] = evaluate_thresholds(similarities, gold_pairs, THRESHOLDS)
    return curves


def curve_lines(name, curves):
    lines = [f"-- {name} --", f"{'threshold':>9} " + " ".join(f"{m:>12}" for m in curves)]
    for index, threshold in enumerate(THRESHOLDS):
        row = f"{threshold:>9.2f} "
        row += " ".join(f"{points[index].f1:>12.3f}" for points in curves.values())
        lines.append(row)
    best = {m: best_f1(points) for m, points in curves.items()}
    lines.append(
        "best F1:  " + "  ".join(f"{m}={p.f1:.3f}@{p.threshold:.2f}" for m, p in best.items())
    )
    return lines, best


def test_fig5abc_nc_datasets(benchmark, nc_datasets, results_dir):
    attributes = [a for a in PERSON_ATTRIBUTES if a != "ncid"]

    def run_all():
        return {
            name: run_detection(ds.records, ds.gold_pairs, attributes, NC_NAME_ATTRIBUTES)
            for name, ds in nc_datasets.items()
        }

    all_curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    best_by_dataset = {}
    spread_by_dataset = {}
    for name, curves in all_curves.items():
        chunk, best = curve_lines(name, curves)
        lines += chunk + [""]
        best_scores = [point.f1 for point in best.values()]
        best_by_dataset[name] = max(best_scores)
        spread_by_dataset[name] = max(best_scores) - min(best_scores)
    write_result(results_dir, "fig5abc_nc_f1_curves", lines)

    # Paper's headline: quality degrades with heterogeneity NC1 -> NC3
    # (NC1 and NC2 may both saturate near 1.0 at bench scale, so the
    # ordering is non-strict at the top), NC1 near-perfect, NC3 clearly
    # harder, and the spread between measures grows with dirtiness
    # ("the selection of this measure was much more important").
    assert best_by_dataset["NC1"] >= best_by_dataset["NC2"] >= best_by_dataset["NC3"]
    assert best_by_dataset["NC1"] > 0.9
    assert best_by_dataset["NC3"] < best_by_dataset["NC1"] - 0.05
    assert spread_by_dataset["NC3"] > spread_by_dataset["NC1"]


def test_fig5def_comparison_datasets(benchmark, comparison_datasets, results_dir):
    def run_all():
        results = {}
        for name, dataset in comparison_datasets.items():
            if name == "Cora":
                # evaluate on a cluster-sample: the 238-record cluster alone
                # produces tens of thousands of candidate pairs
                results[name] = run_detection(
                    dataset.records, dataset.gold_pairs,
                    ("author", "title", "journal", "booktitle", "year", "pages"),
                    (),
                )
            elif name == "Census":
                results[name] = run_detection(
                    dataset.records, dataset.gold_pairs, dataset.attributes,
                    ("first_name", "last_name"),
                )
            else:
                results[name] = run_detection(
                    dataset.records, dataset.gold_pairs, dataset.attributes, ()
                )
        return results

    all_curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    best_by_dataset = {}
    for name, curves in all_curves.items():
        chunk, best = curve_lines(name, curves)
        lines += chunk + [""]
        best_by_dataset[name] = max(point.f1 for point in best.values())
    write_result(results_dir, "fig5def_comparison_f1_curves", lines)

    # Paper: the comparison datasets pattern like NC2 — solid but imperfect
    # maximal F1 scores, well above the NC3 regime.
    for name, best in best_by_dataset.items():
        assert 0.4 < best <= 1.0, (name, best)
