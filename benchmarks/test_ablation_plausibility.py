"""Ablation: plausibility design choices (Section 6.2).

Two choices are ablated against the simulator's ground truth (which NCIDs
were actually reused and therefore unsound):

* the attribute weighting — the paper's name-heavy weights (0.5/0.15/...)
  vs uniform weights;
* the extended Damerau-Levenshtein token similarity — missing/prefix
  compensation on vs off.

Quality metric: separation between sound and unsound multi-record
clusters, measured as the difference of mean cluster plausibilities.
"""

import statistics

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core import plausibility as plaus
from repro.votersim import SimulationConfig, VoterRegisterSimulator

from bench_utils import write_result

ABLATION_CONFIG = SimulationConfig(
    initial_voters=500,
    years=6,
    seed=9,
    ncid_reuse_rate=0.5,
    removal_rate=0.05,
)


@pytest.fixture(scope="module")
def labeled_clusters():
    simulator = VoterRegisterSimulator(ABLATION_CONFIG)
    snapshots = list(simulator.run())
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshots(snapshots)
    clusters = [c for c in generator.clusters() if len(c["records"]) > 1]
    return clusters, simulator.unsound_ncids


def separation(clusters, unsound_ncids, weights):
    original = dict(plaus.WEIGHTS)
    plaus.WEIGHTS.update(weights)
    try:
        sound, unsound = [], []
        for cluster in clusters:
            score = plaus.cluster_plausibility(
                {**cluster, "records": [
                    {**record, "plausibility": {}} for record in cluster["records"]
                ]}
            )
            (unsound if cluster["ncid"] in unsound_ncids else sound).append(score)
        if not unsound:
            return 0.0, 0.0, 0.0
        return (
            statistics.mean(sound) - statistics.mean(unsound),
            statistics.mean(sound),
            statistics.mean(unsound),
        )
    finally:
        plaus.WEIGHTS.clear()
        plaus.WEIGHTS.update(original)


def test_ablation_plausibility_weights(benchmark, labeled_clusters, results_dir):
    clusters, unsound_ncids = labeled_clusters

    paper_gap, paper_sound, paper_unsound = benchmark.pedantic(
        separation,
        args=(clusters, unsound_ncids, {"name": 0.5, "sex": 0.15, "yob": 0.15, "birth_place": 0.15}),
        rounds=1,
        iterations=1,
    )
    uniform_gap, uniform_sound, uniform_unsound = separation(
        clusters, unsound_ncids,
        {"name": 0.25, "sex": 0.25, "yob": 0.25, "birth_place": 0.25},
    )
    name_only_gap, _, _ = separation(
        clusters, unsound_ncids, {"name": 1.0, "sex": 0.0, "yob": 0.0, "birth_place": 0.0}
    )

    lines = [
        f"clusters: {len(clusters)} ({len(unsound_ncids)} reused NCIDs)",
        f"paper weights (0.5/0.15x3): sound={paper_sound:.3f} "
        f"unsound={paper_unsound:.3f} gap={paper_gap:.3f}",
        f"uniform weights:            sound={uniform_sound:.3f} "
        f"unsound={uniform_unsound:.3f} gap={uniform_gap:.3f}",
        f"name-only weights:          gap={name_only_gap:.3f}",
    ]
    write_result(results_dir, "ablation_plausibility_weights", lines)

    # Both weightings separate, and the name signal carries most of it.
    assert paper_gap > 0.2
    assert uniform_gap > 0.1
    assert name_only_gap > 0.2
