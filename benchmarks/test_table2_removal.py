"""Table 2: duplicate-removal levels (none / exact / trimming / person).

Regenerates the paper's Table 2 statistics and benchmarks the full
generation (hashing + dedup) across all four levels.
"""

from repro.core import RemovalLevel
from repro.core.statistics import removal_stats

from bench_utils import write_result


def test_table2_removal_levels(benchmark, bench_snapshots, results_dir):
    stats = benchmark(removal_stats, bench_snapshots)

    lines = [
        f"{'removal':>9} {'#records':>9} {'#pairs':>10} {'avg size':>9} "
        f"{'max':>5} {'rec rem.':>9} {'pair rem.':>9}"
    ]
    for row in stats:
        lines.append(
            f"{row.level.value:>9} {row.records:>9} {row.duplicate_pairs:>10} "
            f"{row.avg_cluster_size:>9.2f} {row.max_cluster_size:>5} "
            f"{row.removed_record_share:>8.1%} {row.removed_pair_share:>8.1%}"
        )
    write_result(results_dir, "table2_removal", lines)

    by_level = {row.level: row for row in stats}
    none, exact = by_level[RemovalLevel.NONE], by_level[RemovalLevel.EXACT]
    trimmed, person = by_level[RemovalLevel.TRIMMED], by_level[RemovalLevel.PERSON]

    # Paper's shape: strictly decreasing record counts and cluster sizes,
    # the naive union dominated by (near-)exact duplicates, and pair
    # removal rates far above record removal rates.
    assert none.records > exact.records > trimmed.records > person.records
    assert none.avg_cluster_size > exact.avg_cluster_size > trimmed.avg_cluster_size
    assert exact.removed_record_share > 0.4          # paper: 67.3 %
    assert trimmed.removed_record_share > exact.removed_record_share
    assert person.removed_record_share > 0.8          # paper: 88.5 %
    assert person.removed_pair_share > 0.95           # paper: 98.8 %
    assert len({row.clusters for row in stats}) == 1  # cluster count invariant
