"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable


def write_result(results_dir: Path, name: str, lines: Iterable[str]) -> None:
    """Print a regenerated table and persist it under ``results/``."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def histogram_lines(histogram: dict, label: str) -> list:
    """Render a ``value -> count`` histogram as aligned text lines."""
    lines = [f"{label:>12} {'count':>8}"]
    for key in sorted(histogram):
        lines.append(f"{key:>12} {histogram[key]:>8}")
    return lines


def distribution_lines(scores, bins: int = 20, low: float = 0.0, high: float = 1.0) -> list:
    """Bucket a score list into a textual distribution (paper's histograms)."""
    counts = [0] * bins
    width = (high - low) / bins
    for score in scores:
        index = min(bins - 1, max(0, int((score - low) / width)))
        counts[index] += 1
    total = len(scores) or 1
    lines = [f"{'bucket':>14} {'count':>8} {'share':>8}"]
    for index, count in enumerate(counts):
        lo = low + index * width
        hi = lo + width
        lines.append(f"[{lo:5.2f},{hi:5.2f}) {count:>8} {count / total:>7.1%}")
    return lines
